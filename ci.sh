#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
