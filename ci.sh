#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Correctness tooling (crates/simcheck): the line-level determinism lint,
# the interprocedural analyzer (determinism taint, readonly purity, wait
# annotation coverage — zero findings required; also refreshes the
# proven-pure report consumed via DsoConfig::pure_methods), then the DSO
# cluster smoke workload under 25 perturbed schedules with linearizability
# checked on each (see DESIGN.md, "Correctness tooling" / "Static
# analysis").
cargo run --release -q -p simcheck --bin simlint
cargo run --release -q -p simcheck --bin simanalyze -- --readonly-report results/pure_methods.txt
cargo run --release -q -p simcheck --bin simexplore -- --seeds 25

# Traced smoke run: export a Chrome trace from the π workload and
# schema-validate it (well-formed JSON, ts/dur present, span parents
# resolve). Guards the observability exports end to end.
cargo run --release -q -p bench --bin experiments trace-pi
cargo run --release -q -p simcheck --bin tracecheck -- results/trace-pi.chrome.json

# Elastic control-plane smoke: the 3x-ramp experiment self-asserts >=1
# scale-out, >=1 drain, >=90% peak tracking, and shed events, then
# exports its trace (reconcile/scale/drain spans, shed instants) for the
# same schema validation.
cargo run --release -q -p bench --bin experiments elastic
cargo run --release -q -p simcheck --bin tracecheck -- results/trace-elastic.chrome.json

# Kernel speed baseline: raw wheel churn, empty-cycle timers, the message
# ring, and the DSO smoke, each reported as events/sec in
# BENCH_kernel.json. benchcheck validates the file and holds every
# section above a sanity floor (~1/10 of typical release numbers), so an
# order-of-magnitude kernel regression fails here. On failure a second,
# --json run leaves a machine-readable violation list for trend tooling.
cargo run --release -q -p bench --bin experiments kernel-bench
cargo run --release -q -p simcheck --bin benchcheck -- BENCH_kernel.json \
    || { cargo run --release -q -p simcheck --bin benchcheck -- --json BENCH_kernel.json \
           > results/benchcheck_violations.json || true; exit 1; }

# Cold-start tier smoke: classic vs snapshot-restore elastic runs plus the
# fork fan-out microbench. The run self-asserts the tier mechanics (the
# snapshot run restores and buys no provisioned floors, the classic run
# does the opposite) and writes BENCH_coldstart.json; benchcheck holds the
# documented latency claims — a restore collapses the classic cold start
# >= 4x, a warm-parent fork undercuts the restore >= 2x.
cargo run --release -q -p bench --bin experiments coldstart
cargo run --release -q -p simcheck --bin benchcheck -- BENCH_coldstart.json \
    || { cargo run --release -q -p simcheck --bin benchcheck -- --json BENCH_coldstart.json \
           > results/benchcheck_violations.json || true; exit 1; }

# Consistency-spectrum ablation: the mode x cache matrix on the hot rf=3
# read workload under client churn, reported in BENCH_consistency.json.
# benchcheck holds the relational claims the docs make — replica reads
# beat primary-only reads, and the host-shared node cache beats the
# per-client cache once clients churn like FaaS containers do.
cargo run --release -q -p bench --bin experiments consistency-ablate
cargo run --release -q -p simcheck --bin benchcheck -- BENCH_consistency.json \
    || { cargo run --release -q -p simcheck --bin benchcheck -- --json BENCH_consistency.json \
           > results/benchcheck_violations.json || true; exit 1; }

# Durability smoke: the crash-recovery-vs-checkpoint-cadence matrix plus
# the per-level write-overhead table, reported in BENCH_recovery.json.
# benchcheck holds the durability claims — a 500 ms checkpoint cadence
# cuts full-cluster crash recovery >= 1.2x and replays fewer WAL bytes
# than running on the log alone, and async group commit stays off the
# write path (within 1.2x of no durability).
cargo run --release -q -p bench --bin experiments recovery
cargo run --release -q -p simcheck --bin benchcheck -- BENCH_recovery.json \
    || { cargo run --release -q -p simcheck --bin benchcheck -- --json BENCH_recovery.json \
           > results/benchcheck_violations.json || true; exit 1; }
