//! Minimal in-tree replacement for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, immutable byte buffer backed by
//! `Arc<[u8]>` with an offset/length window, so clones and slices share one
//! allocation — the property the DSO hot path relies on to stop copying
//! payloads per retry. Serde impls are wire-compatible with `Vec<u8>` under
//! `simcore::codec` (length-prefixed raw bytes).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// The empty buffer (no allocation shared: `Arc<[u8]>` of length 0).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Buffer over a `'static` slice (copies; the compat crate has no
    /// zero-copy static variant).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + start, len: end - start }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: v.into(), start: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len)
    }
}

impl serde::ser::Serialize for Bytes {
    fn serialize<S: serde::ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(self)
    }
}

impl<'de> serde::de::Deserialize<'de> for Bytes {
    fn deserialize<D: serde::de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> serde::de::Visitor<'de> for V {
            type Value = Bytes;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("bytes")
            }
            fn visit_bytes<E: serde::de::Error>(self, v: &[u8]) -> Result<Bytes, E> {
                Ok(Bytes::copy_from_slice(v))
            }
            fn visit_byte_buf<E: serde::de::Error>(self, v: Vec<u8>) -> Result<Bytes, E> {
                Ok(Bytes::from(v))
            }
            fn visit_seq<A: serde::de::SeqAccess<'de>>(
                self,
                mut seq: A,
            ) -> Result<Bytes, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(b) = seq.next_element::<u8>()? {
                    out.push(b);
                }
                Ok(Bytes::from(out))
            }
        }
        d.deserialize_byte_buf(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_slice_windows() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2, 3]));
    }
}
