//! Minimal in-tree replacement for the `criterion` benchmark harness.
//!
//! Measures real wall-clock time with `std::time::Instant`: a short warm-up,
//! then timed batches until a sampling budget is spent. Results are printed
//! per benchmark and, at the end of the binary (from `criterion_main!`),
//! written as machine-readable JSON to `BENCH_<bench-name>.json` in the
//! working directory so baselines can be diffed across commits.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// One benchmark's aggregated timing.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (e.g. `"ring/placement_rf2"`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed sample (ns/iter).
    pub min_ns: f64,
    /// Slowest observed sample (ns/iter).
    pub max_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// How `iter_batched` amortises setup cost. The compat harness always runs
/// setup once per iteration outside the timed region, so the variants only
/// exist for signature compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs.
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `name`, recording and printing its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), iters: 0 };
        f(&mut b);
        let total: f64 = b.samples.iter().sum();
        let mean = if b.samples.is_empty() { 0.0 } else { total / b.samples.len() as f64 };
        let (mut min, mut max) = (f64::INFINITY, 0.0f64);
        for s in &b.samples {
            min = min.min(*s);
            max = max.max(*s);
        }
        if !min.is_finite() {
            min = 0.0;
        }
        let result = BenchResult {
            name: name.to_string(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            iters: b.iters,
        };
        println!(
            "{:40} time: [{} .. {} .. {}]  ({} iters)",
            result.name,
            fmt_ns(result.min_ns),
            fmt_ns(result.mean_ns),
            fmt_ns(result.max_ns),
            result.iters
        );
        RESULTS.lock().expect("results lock").push(result);
        self
    }
}

/// Timing context handed to each benchmark closure. Samples are stored as
/// nanoseconds *per iteration*.
pub struct Bencher {
    samples: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~50 samples within the budget, at least 1 iter per sample.
        let batch = ((MEASURE_BUDGET.as_secs_f64() / 50.0 / per_iter.max(1e-9)) as u64).max(1);
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64;
            self.samples.push(ns / batch as f64);
            self.iters += batch;
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup runs outside the
    /// timed region.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine(setup()));
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
            self.iters += 1;
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Internal hooks used by the harness macros.
pub mod private {
    use super::*;

    /// Writes all recorded results as JSON next to the working directory and
    /// prints a closing line. Called by `criterion_main!` after all groups.
    pub fn finish() {
        let results = RESULTS.lock().expect("results lock");
        if results.is_empty() {
            return;
        }
        let bench_name = std::env::args()
            .next()
            .and_then(|p| {
                std::path::Path::new(&p).file_stem().map(|s| s.to_string_lossy().into_owned())
            })
            .map(|stem| {
                // cargo names bench binaries `<name>-<hash>`; strip the hash.
                match stem.rsplit_once('-') {
                    Some((base, tail))
                        if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) =>
                    {
                        base.to_string()
                    }
                    _ => stem,
                }
            })
            .unwrap_or_else(|| "bench".to_string());
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"bench\": \"{bench_name}\",\n"));
        json.push_str("  \"results\": [\n");
        for (i, r) in results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"iters\": {}}}{}\n",
                r.name,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.iters,
                if i + 1 == results.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        let path = format!("BENCH_{bench_name}.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::private::finish();
        }
    };
}
