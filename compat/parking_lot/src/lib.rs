//! Minimal in-tree replacement for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `Mutex`/`Condvar` API the workspace uses. Lock
//! poisoning is absorbed by recovering the inner guard — matching
//! parking_lot's semantics, where a panicking holder simply releases the
//! lock.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The slot is `Option` so [`Condvar::wait`] can
/// temporarily take the underlying std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases the guarded lock and blocks until notified;
    /// re-acquires before returning (parking_lot-style in-place guard).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().expect("waiter exits");
    }
}
