//! Minimal in-tree replacement for the `proptest` crate.
//!
//! Provides the generation half of property testing: [`Strategy`] values
//! drawn from a deterministic per-test RNG, the [`proptest!`] test macro,
//! `prop_assert*` macros, combinators (`prop_map`, `prop_recursive`,
//! [`prop_oneof!`]), collection/option strategies, `any::<T>()`, and a small
//! regex-literal subset (`"[a-z]{1,12}"`-style character-class patterns) for
//! string strategies. No shrinking: a failing case reports the generated
//! inputs via the panic message instead of minimising them.

use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// Cases each `proptest!` test runs. Chosen to keep `cargo test` fast while
/// still exercising the space; the upstream default is 256.
pub const DEFAULT_CASES: u32 = 96;

// ---------------------------------------------------------------------------
// core strategy trait
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper. At each
    /// level generation falls back to the base case half of the time, so
    /// values stay finite. `desired_size`/`expected_branch_size` are accepted
    /// for upstream signature compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = f(strat).boxed();
            strat = Union { options: vec![base.clone(), deeper] }.boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Arc::new(self) }
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.inner.new_value(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between same-typed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Chooses uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

/// Always produces clones of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// primitive strategies: ranges, tuples, string patterns
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut StdRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut StdRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 => 0);
tuple_strategy!(S0 => 0, S1 => 1);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);

/// `&str` regex-literal strategies: a sequence of character-class (or
/// literal) atoms, each optionally followed by `{m}`, `{m,n}`, `?`, `*`, `+`.
/// Covers the patterns the workspace uses (e.g. `"[a-z]{1,12}"`).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if lo == hi { *lo } else { rng.random_range(*lo..hi + 1) };
            for _ in 0..n {
                out.push(chars[rng.random_range(0..chars.len())]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut StdRng) -> String {
        self.as_str().new_value(rng)
    }
}

/// Parses the supported regex subset into (choices, min, max) atoms.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut atoms = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let choices: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for d in chars.by_ref() {
                    match d {
                        ']' => break,
                        '-' => {
                            // Range like a-z: expand from prev to the next char.
                            prev = Some('-');
                            continue;
                        }
                        d if prev == Some('-') => {
                            let lo = *set.last().unwrap_or(&d);
                            for code in (lo as u32 + 1)..=(d as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                            prev = None;
                        }
                        d => {
                            set.push(d);
                            prev = Some(d);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().expect("escaped char")],
            '.' => (' '..='~').collect(),
            c => vec![c],
        };
        // Optional repetition suffix.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("rep lower bound"),
                        b.trim().parse().expect("rep upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("rep count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(!choices.is_empty(), "empty character class in pattern {pat:?}");
        atoms.push((choices, lo, hi));
    }
    atoms
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> $ty {
                // Truncated raw bits cover the full domain uniformly; bias
                // toward small magnitudes sometimes to hit edge-ish values.
                if rng.random_bool(0.1) {
                    (rng.random_range(0u64..16) as $ty).wrapping_sub(8 as $ty)
                } else {
                    rng.next_u64() as $ty
                }
            }
        }
    )+};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut StdRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        if rng.random_bool(0.8) {
            rng.random_range(0x20u32..0x7F).try_into().expect("ascii")
        } else {
            char::from_u32(rng.random_range(0u32..0x11_0000)).unwrap_or('\u{FFFD}')
        }
    }
}

macro_rules! arb_float {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> $ty {
                // Finite values only: the roundtrip properties compare with
                // equality, which NaN would trivially break.
                let specials: [$ty; 5] = [0.0, -0.0, 1.0, -1.0, <$ty>::MIN_POSITIVE];
                if rng.random_bool(0.1) {
                    specials[rng.random_range(0..specials.len())]
                } else {
                    rng.random_range(-1.0e12..1.0e12) as $ty
                }
            }
        }
    )+};
}

arb_float!(f32, f64);

impl Arbitrary for String {
    fn arbitrary(rng: &mut StdRng) -> String {
        "[ -~]{0,16}".new_value(rng)
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// collection / option strategies
// ---------------------------------------------------------------------------

/// Strategies over collections.
pub mod collection {
    use super::*;

    /// Vec strategy with a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// BTreeMap strategy with a size range.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `BTreeMap<K, V>` with *up to* `size` entries (duplicates collapse).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| (self.key.new_value(rng), self.value.new_value(rng))).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::*;

    /// Option strategy: `None` a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option<T>` from an inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// test runner plumbing
// ---------------------------------------------------------------------------

/// Failure reporting used by the `prop_assert*` macros.
pub mod test_runner {
    use super::fmt;

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Derives the deterministic RNG seed for one test case.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running [`DEFAULT_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strat,)+);
            for __case in 0..$crate::DEFAULT_CASES {
                let __seed =
                    $crate::test_runner::case_seed(concat!(module_path!(), "::", stringify!($name)), __case);
                let mut __rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(__seed);
                $crate::__run_case!(__strategies, __rng, __case, ($($pat),+), $body);
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: generates inputs from the strategy tuple and runs one case.
#[doc(hidden)]
#[macro_export]
macro_rules! __run_case {
    ($strategies:ident, $rng:ident, $case:ident, ($($pat:pat),+), $body:block) => {
        {
            let ($($pat,)+) = {
                // Tuples of strategies are themselves strategies.
                $crate::Strategy::new_value(&$strategies, &mut $rng)
            };
            let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body ::core::result::Result::Ok(()) })();
            if let ::core::result::Result::Err(e) = __result {
                panic!("property failed at case {}: {}", $case, e);
            }
        }
    };
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Skips the current case when the assumption does not hold. The compat
/// runner counts a skipped case as passed rather than drawing a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_matches_class() {
        use crate::__rng::SeedableRng;
        let mut rng = crate::__rng::StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = crate::Strategy::new_value(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_in_range(x in 5u64..10, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(v.len() < 4);
        }
    }
}
