//! Minimal in-tree replacement for the `rand` crate.
//!
//! Implements the subset the workspace uses: [`rngs::StdRng`] (an
//! xoshiro256++ generator), [`SeedableRng::seed_from_u64`], the
//! [`RngExt::random_range`] extension, and the [`rng`] convenience
//! constructor. Not cryptographically secure — the simulation only needs
//! fast, well-distributed, reproducible streams.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic xoshiro256++ PRNG, the workspace's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Next raw 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            // All-zero state would be a fixed point.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range values of `T` can be drawn from
/// uniformly. The element type is a trait parameter (not an associated type)
/// so the caller's expected type drives inference of untyped range literals,
/// matching upstream rand (`let i: u32 = rng.random_range(0..120)`).
pub trait UniformRange<T> {
    /// Draws one value from `self`.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! uniform_int {
    ($($ty:ty => $wide:ty),+ $(,)?) => {$(
        impl UniformRange<$ty> for Range<$ty> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $ty {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Lemire's multiply-shift maps 64 random bits onto the span.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $wide).wrapping_add(hi as $wide) as $ty
            }
        }
        impl UniformRange<$ty> for RangeInclusive<$ty> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                if start == <$ty>::MIN && end == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (end as $wide).wrapping_sub(start as $wide) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as $wide).wrapping_add(hi as $wide) as $ty
            }
        }
    )+};
}

uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! uniform_float {
    ($($ty:ty),+) => {$(
        impl UniformRange<$ty> for Range<$ty> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $ty {
                assert!(self.start < self.end, "empty range in random_range");
                // 53 (or 24) high bits give a uniform value in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $ty) * (self.end - self.start)
            }
        }
        impl UniformRange<$ty> for RangeInclusive<$ty> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                start + (unit as $ty) * (end - start)
            }
        }
    )+};
}

uniform_float!(f32, f64);

/// Extension methods on random generators.
pub trait RngExt {
    /// Draws a uniform value from `range`.
    fn random_range<T, R: UniformRange<T>>(&mut self, range: R) -> T;

    /// Draws a uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    fn random_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

/// A generator seeded from ambient entropy (time + ASLR), for non-reproducible
/// contexts such as standalone binaries.
pub fn rng() -> rngs::StdRng {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let stack_addr = &t as *const _ as u64;
    rngs::StdRng::seed_from_u64(t ^ stack_addr.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }
}
