//! Deserialization half of the serde data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// A data structure deserializable from any serde format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Errors produced by a deserializer.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A stateful deserialization seed (a `Deserialize` carrying data).
pub trait DeserializeSeed<'de>: Sized {
    /// Produced value.
    type Value;
    /// Deserializes the value.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A format that can drive the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type of this deserializer.
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable (affects nothing here).
    fn is_human_readable(&self) -> bool {
        true
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(v: &V, what: &str) -> E {
    struct Expecting<'a, 'de, V: Visitor<'de>>(&'a V, PhantomData<&'de ()>);
    impl<'a, 'de, V: Visitor<'de>> Display for Expecting<'a, 'de, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    E::custom(format!("invalid type: {what}, expected {}", Expecting(v, PhantomData)))
}

/// Drives construction of a value from serde data-model events.
#[allow(unused_variables)]
pub trait Visitor<'de>: Sized {
    /// Value produced by this visitor.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(unexpected(&self, "boolean"))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "integer"))
    }
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        Err(unexpected(&self, "i128"))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "unsigned integer"))
    }
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        Err(unexpected(&self, "u128"))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "float"))
    }
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(unexpected(&self, "string"))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        Err(unexpected(&self, "bytes"))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "Option::None"))
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "Option::Some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "enum"))
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    type Error: Error;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    type Error: Error;
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the discriminant of an enum value.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the contents of a single enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;
    fn unit_variant(self) -> Result<(), Self::Error>;
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// value deserializers (IntoDeserializer)
// ---------------------------------------------------------------------------

/// Types convertible into a [`Deserializer`] over their own value.
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Converts `self` into a deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Ready-made deserializers over plain values.
pub mod value {
    use super::*;

    /// Plain string error used by the value deserializers.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for Error {}
    impl super::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! primitive_deserializer {
        ($ty:ty, $name:ident, $visit:ident) => {
            /// Deserializer over one primitive value.
            pub struct $name<E> {
                value: $ty,
                marker: PhantomData<E>,
            }

            impl<E> $name<E> {
                /// Wraps a value.
                pub fn new(value: $ty) -> Self {
                    $name { value, marker: PhantomData }
                }
            }

            impl<'de, E: super::Error> Deserializer<'de> for $name<E> {
                type Error = E;

                fn deserialize_any<V: Visitor<'de>>(
                    self,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    visitor.$visit(self.value)
                }

                forward_to_any! {
                    deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
                    deserialize_i64 deserialize_i128 deserialize_u8 deserialize_u16
                    deserialize_u32 deserialize_u64 deserialize_u128 deserialize_f32
                    deserialize_f64 deserialize_char deserialize_str deserialize_string
                    deserialize_bytes deserialize_byte_buf deserialize_option
                    deserialize_unit deserialize_seq deserialize_map
                    deserialize_identifier deserialize_ignored_any
                }

                fn deserialize_unit_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_newtype_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_tuple<V: Visitor<'de>>(
                    self,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_tuple_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _fields: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
                fn deserialize_enum<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _variants: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
            }
        };
    }

    macro_rules! forward_to_any {
        ($($method:ident)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                    self.deserialize_any(visitor)
                }
            )*
        };
    }
    primitive_deserializer!(bool, BoolDeserializer, visit_bool);
    primitive_deserializer!(u8, U8Deserializer, visit_u8);
    primitive_deserializer!(u16, U16Deserializer, visit_u16);
    primitive_deserializer!(u32, U32Deserializer, visit_u32);
    primitive_deserializer!(u64, U64Deserializer, visit_u64);
    primitive_deserializer!(i8, I8Deserializer, visit_i8);
    primitive_deserializer!(i16, I16Deserializer, visit_i16);
    primitive_deserializer!(i32, I32Deserializer, visit_i32);
    primitive_deserializer!(i64, I64Deserializer, visit_i64);
}

macro_rules! into_deserializer {
    ($ty:ty, $name:ident) => {
        impl<'de, E: Error> IntoDeserializer<'de, E> for $ty {
            type Deserializer = value::$name<E>;
            fn into_deserializer(self) -> Self::Deserializer {
                value::$name::new(self)
            }
        }
    };
}

into_deserializer!(bool, BoolDeserializer);
into_deserializer!(u8, U8Deserializer);
into_deserializer!(u16, U16Deserializer);
into_deserializer!(u32, U32Deserializer);
into_deserializer!(u64, U64Deserializer);
into_deserializer!(i8, I8Deserializer);
into_deserializer!(i16, I16Deserializer);
into_deserializer!(i32, I32Deserializer);
into_deserializer!(i64, I64Deserializer);

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! de_primitive {
    ($ty:ty, $deserialize:ident, $($visit:ident => $vty:ty),+) => {
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    $(
                        fn $visit<E: Error>(self, v: $vty) -> Result<$ty, E> {
                            <$ty>::try_from(v)
                                .map_err(|_| E::custom("integer out of range"))
                        }
                    )+
                }
                d.$deserialize(V)
            }
        }
    };
}

de_primitive!(u8, deserialize_u8, visit_u64 => u64);
de_primitive!(u16, deserialize_u16, visit_u64 => u64);
de_primitive!(u32, deserialize_u32, visit_u64 => u64);
de_primitive!(u64, deserialize_u64, visit_u64 => u64);
de_primitive!(usize, deserialize_u64, visit_u64 => u64);
de_primitive!(i8, deserialize_i8, visit_i64 => i64);
de_primitive!(i16, deserialize_i16, visit_i64 => i64);
de_primitive!(i32, deserialize_i32, visit_i64 => i64);
de_primitive!(i64, deserialize_i64, visit_i64 => i64);
de_primitive!(isize, deserialize_i64, visit_i64 => i64);

impl<'de> Deserialize<'de> for u128 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = u128;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("u128")
            }
            fn visit_u128<E: Error>(self, v: u128) -> Result<u128, E> {
                Ok(v)
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<u128, E> {
                Ok(v as u128)
            }
        }
        d.deserialize_u128(V)
    }
}

impl<'de> Deserialize<'de> for i128 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = i128;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("i128")
            }
            fn visit_i128<E: Error>(self, v: i128) -> Result<i128, E> {
                Ok(v)
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<i128, E> {
                Ok(v as i128)
            }
        }
        d.deserialize_i128(V)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("bool")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        d.deserialize_bool(V)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f32;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("f32")
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<f32, E> {
                Ok(v as f32)
            }
        }
        d.deserialize_f32(V)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f64;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("f64")
            }
            fn visit_f64<E: Error>(self, v: f64) -> Result<f64, E> {
                Ok(v)
            }
        }
        d.deserialize_f64(V)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("char")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single character")),
                }
            }
        }
        d.deserialize_char(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        d.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        d.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Self::Value, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        d.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        d.deserialize_seq(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(Into::into)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                for _ in 0..N {
                    match seq.next_element()? {
                        Some(v) => out.push(v),
                        None => return Err(Error::custom("array too short")),
                    }
                }
                out.try_into().map_err(|_| Error::custom("array length mismatch"))
            }
        }
        d.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V2: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V2>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V<K, V2>(PhantomData<(K, V2)>);
        impl<'de, K: Deserialize<'de> + Ord, V2: Deserialize<'de>> Visitor<'de> for V<K, V2> {
            type Value = std::collections::BTreeMap<K, V2>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(k) = map.next_key()? {
                    let v = map.next_value()?;
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        d.deserialize_map(V(PhantomData))
    }
}

impl<'de, K, V2, H> Deserialize<'de> for std::collections::HashMap<K, V2, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V2: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V<K, V2, H>(PhantomData<(K, V2, H)>);
        impl<'de, K, V2, H> Visitor<'de> for V<K, V2, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V2: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V2, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(0, H::default());
                while let Some(k) = map.next_key()? {
                    let v = map.next_value()?;
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        d.deserialize_map(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: ?Sized> Deserialize<'de> for PhantomData<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V<T: ?Sized>(PhantomData<T>);
        impl<'de, T: ?Sized> Visitor<'de> for V<T> {
            type Value = PhantomData<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(PhantomData)
            }
        }
        d.deserialize_unit_struct("PhantomData", V(PhantomData))
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = std::time::Duration;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("struct Duration")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let secs: u64 =
                    seq.next_element()?.ok_or_else(|| Error::custom("missing field `secs`"))?;
                let nanos: u32 =
                    seq.next_element()?.ok_or_else(|| Error::custom("missing field `nanos`"))?;
                if nanos >= 1_000_000_000 {
                    return Err(Error::custom("nanos out of range"));
                }
                Ok(std::time::Duration::new(secs, nanos))
            }
        }
        d.deserialize_struct("Duration", &["secs", "nanos"], V)
    }
}

impl<'de, T: Deserialize<'de>, E2: Deserialize<'de>> Deserialize<'de> for Result<T, E2> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V<T, E2>(PhantomData<(T, E2)>);
        impl<'de, T: Deserialize<'de>, E2: Deserialize<'de>> Visitor<'de> for V<T, E2> {
            type Value = Result<T, E2>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("enum Result")
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (idx, variant) = data.variant::<u32>()?;
                match idx {
                    0 => variant.newtype_variant().map(Ok),
                    1 => variant.newtype_variant().map(Err),
                    other => Err(Error::custom(format!("invalid Result variant {other}"))),
                }
            }
        }
        d.deserialize_enum("Result", &["Ok", "Err"], V(PhantomData))
    }
}

macro_rules! de_tuple {
    ($len:expr => $($t:ident)+) => {
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                struct V<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        $(
                            let $t: $t = seq
                                .next_element()?
                                .ok_or_else(|| Error::custom("tuple too short"))?;
                        )+
                        Ok(($($t,)+))
                    }
                }
                d.deserialize_tuple($len, V(PhantomData))
            }
        }
    };
}

de_tuple!(1 => T0);
de_tuple!(2 => T0 T1);
de_tuple!(3 => T0 T1 T2);
de_tuple!(4 => T0 T1 T2 T3);
de_tuple!(5 => T0 T1 T2 T3 T4);
de_tuple!(6 => T0 T1 T2 T3 T4 T5);
de_tuple!(7 => T0 T1 T2 T3 T4 T5 T6);
de_tuple!(8 => T0 T1 T2 T3 T4 T5 T6 T7);
