//! Minimal in-tree replacement for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements exactly the subset of the serde data model the workspace uses:
//! the `Serialize`/`Deserialize` traits, the `Serializer`/`Deserializer`
//! driver traits with their compound-access helpers, value deserializers for
//! primitive types, and impls for the std types that appear in workspace
//! message/config structs. The wire behaviour matches upstream serde for the
//! bincode-style format implemented in `simcore::codec`.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
