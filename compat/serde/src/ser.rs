//! Serialization half of the serde data model.

use std::fmt::Display;

/// A data structure that can be serialized into any format supported by
/// the serde data model.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Errors produced by a serializer.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of this serializer.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable (affects nothing here).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_primitive {
    ($($ty:ty => $method:ident,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                    s.$method(*self)
                }
            }
        )*
    };
}

ser_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut t = s.serialize_tuple(N)?;
        for item in self {
            t.serialize_element(item)?;
        }
        t.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: ?Sized> Serialize for std::marker::PhantomData<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit_struct("PhantomData")
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut t = s.serialize_struct("Duration", 2)?;
        t.serialize_field("secs", &self.as_secs())?;
        t.serialize_field("nanos", &self.subsec_nanos())?;
        t.end()
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(v) => s.serialize_newtype_variant("Result", 0, "Ok", v),
            Err(e) => s.serialize_newtype_variant("Result", 1, "Err", e),
        }
    }
}

macro_rules! ser_tuple {
    ($len:expr => $($n:tt $t:ident)+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let mut t = s.serialize_tuple($len)?;
                $( t.serialize_element(&self.$n)?; )+
                t.end()
            }
        }
    };
}

ser_tuple!(1 => 0 T0);
ser_tuple!(2 => 0 T0 1 T1);
ser_tuple!(3 => 0 T0 1 T1 2 T2);
ser_tuple!(4 => 0 T0 1 T1 2 T2 3 T3);
ser_tuple!(5 => 0 T0 1 T1 2 T2 3 T3 4 T4);
ser_tuple!(6 => 0 T0 1 T1 2 T2 3 T3 4 T4 5 T5);
ser_tuple!(7 => 0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6);
ser_tuple!(8 => 0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7);
