//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The offline build environment has no `syn`/`quote`, so the item is parsed
//! directly from the [`proc_macro::TokenStream`] and the impls are generated
//! as strings. Supports the shapes the workspace uses: unit/tuple/named
//! structs, enums with unit/newtype/tuple/struct variants, simple type
//! generics (`Foo<T>`), and `#[serde(skip)]` on named fields (excluded from
//! serialization, filled with `Default::default()` on deserialization).
//! The generated code matches upstream serde's positional encoding: structs
//! as field sequences, enum variants by `u32` index.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// item model + parser
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Type parameter names, in declaration order.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Unit,
    /// Number of fields in a tuple struct/variant.
    Tuple(usize),
    Named(Vec<Field>),
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    fields: Fields,
}

/// True when the attribute token group is `#[serde(skip)]`.
fn attr_is_skip(group: &TokenStream) -> bool {
    let mut toks = group.clone().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) => {
            name.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes a leading run of `#[...]` attributes; reports whether any was
/// `#[serde(skip)]`. Returns the first non-attribute token.
fn skip_attrs(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_skip(&g.stream());
            }
            other => panic!("expected attribute body after `#`, found {other:?}"),
        }
    }
    skip
}

/// Consumes `pub` / `pub(...)` if present.
fn skip_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Parses `<...>` generics (opening `<` already consumed), returning the type
/// parameter names. Lifetimes and bounds are tolerated and dropped; the
/// workspace derives none of those on serde types.
fn parse_generics(
    toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut at_param_start = true;
    let mut in_lifetime = false;
    while depth > 0 {
        match toks.next().expect("unterminated generics") {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    at_param_start = false;
                }
                ',' if depth == 1 => {
                    at_param_start = true;
                    in_lifetime = false;
                }
                '\'' => in_lifetime = true,
                _ => {}
            },
            TokenTree::Ident(id) => {
                if depth == 1 && at_param_start && !in_lifetime {
                    let s = id.to_string();
                    if s != "const" {
                        params.push(s);
                    }
                    at_param_start = false;
                } else if in_lifetime {
                    in_lifetime = false;
                    at_param_start = false;
                }
            }
            _ => at_param_start = false,
        }
    }
    params
}

/// Counts the fields of a tuple struct/variant body (the `(...)` group).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0usize;
    let mut angle = 0usize;
    let mut saw_tokens = false;
    let mut prev_dash = false;
    while let Some(t) = toks.next() {
        match &t {
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => angle += 1,
                    // Don't treat the `>` of `->` as closing an angle.
                    '>' if !prev_dash && angle > 0 => angle -= 1,
                    ',' if angle == 0 => {
                        if saw_tokens {
                            count += 1;
                        }
                        saw_tokens = false;
                        prev_dash = false;
                        continue;
                    }
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            }
            _ => prev_dash = false,
        }
        saw_tokens = true;
        let _ = &mut toks;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Parses the fields of a named struct/variant body (the `{...}` group).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if toks.peek().is_none() {
            break;
        }
        let skip = skip_attrs(&mut toks);
        skip_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle = 0usize;
        let mut prev_dash = false;
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' if !prev_dash && angle > 0 => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if toks.peek().is_none() {
            break;
        }
        skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and/or trailing comma.
        for t in toks.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_vis(&mut toks);
    let kind_kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    let generics = match toks.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            toks.next();
            parse_generics(&mut toks)
        }
        _ => Vec::new(),
    };
    // Tolerate a `where` clause: skip ahead to the body.
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        while let Some(t) = toks.peek() {
            match t {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => {
                    toks.next();
                }
            }
        }
    }
    let kind = match kind_kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("expected struct body, found {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };
    Item { name, generics, kind }
}

// ---------------------------------------------------------------------------
// codegen helpers
// ---------------------------------------------------------------------------

impl Item {
    /// `<T, U>` or empty.
    fn ty_args(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics.join(", "))
        }
    }

    /// Impl generics with the given bound, e.g. `<T: serde::ser::Serialize>`.
    fn impl_generics(&self, bound: &str, extra_first: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        if !extra_first.is_empty() {
            parts.push(extra_first.to_string());
        }
        for g in &self.generics {
            parts.push(format!("{g}: {bound}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", parts.join(", "))
        }
    }

    /// PhantomData payload naming every generic, e.g. `fn(T, U)` (or `()`).
    fn phantom_ty(&self) -> String {
        if self.generics.is_empty() {
            "()".to_string()
        } else {
            format!("fn({})", self.generics.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => ser_struct_body(name, fields),
        Kind::Enum(variants) => ser_enum_body(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl{ig} serde::ser::Serialize for {name}{ta} {{\n\
             fn serialize<__S: serde::ser::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n",
        ig = item.impl_generics("serde::ser::Serialize", ""),
        ta = item.ty_args(),
    )
}

fn ser_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("__serializer.serialize_unit_struct(\"{name}\")"),
        Fields::Tuple(1) => {
            format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Fields::Tuple(n) => {
            let mut s =
                format!("let mut __st = __serializer.serialize_tuple_struct(\"{name}\", {n})?;\n");
            for i in 0..*n {
                s.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{i})?;\n"
                ));
            }
            s.push_str("serde::ser::SerializeTupleStruct::end(__st)");
            s
        }
        Fields::Named(fs) => {
            let live: Vec<&Field> = fs.iter().filter(|f| !f.skip).collect();
            let mut s = format!(
                "let mut __st = __serializer.serialize_struct(\"{name}\", {})?;\n",
                live.len()
            );
            for f in &live {
                s.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __st, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            s.push_str("serde::ser::SerializeStruct::end(__st)");
            s
        }
    }
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => __serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", __f0),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut __tv = __serializer.serialize_tuple_variant(\"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                    binds.join(", ")
                );
                for b in &binds {
                    arm.push_str(&format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {b})?;\n"
                    ));
                }
                arm.push_str("serde::ser::SerializeTupleVariant::end(__tv)\n},\n");
                arms.push_str(&arm);
            }
            Fields::Named(fs) => {
                let live: Vec<&Field> = fs.iter().filter(|f| !f.skip).collect();
                let all_binds: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut __sv = __serializer.serialize_struct_variant(\"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                    all_binds.join(", "),
                    live.len()
                );
                for f in &live {
                    arm.push_str(&format!(
                        "serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{0}\", {0})?;\n",
                        f.name
                    ));
                }
                for f in fs.iter().filter(|f| f.skip) {
                    arm.push_str(&format!("let _ = {};\n", f.name));
                }
                arm.push_str("serde::ser::SerializeStructVariant::end(__sv)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Emits a `visit_seq` body constructing `ctor` from `fields` in order,
/// filling skipped fields with `Default::default()`.
fn de_seq_ctor(ctor: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::core::result::Result::Ok({ctor})"),
        Fields::Tuple(n) => {
            let mut s = String::new();
            let mut binds = Vec::new();
            for i in 0..*n {
                s.push_str(&format!(
                    "let __f{i} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                         ::core::option::Option::Some(v) => v,\n\
                         ::core::option::Option::None => return ::core::result::Result::Err(\
                             serde::de::Error::custom(\"missing tuple field {i}\")),\n\
                     }};\n"
                ));
                binds.push(format!("__f{i}"));
            }
            s.push_str(&format!("::core::result::Result::Ok({ctor}({}))", binds.join(", ")));
            s
        }
        Fields::Named(fs) => {
            let mut s = String::new();
            let mut inits = Vec::new();
            for f in fs {
                if f.skip {
                    inits.push(format!("{}: ::core::default::Default::default()", f.name));
                } else {
                    s.push_str(&format!(
                        "let __v_{0} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                             ::core::option::Option::Some(v) => v,\n\
                             ::core::option::Option::None => return ::core::result::Result::Err(\
                                 serde::de::Error::custom(\"missing field `{0}`\")),\n\
                         }};\n",
                        f.name
                    ));
                    inits.push(format!("{0}: __v_{0}", f.name));
                }
            }
            s.push_str(&format!("::core::result::Result::Ok({ctor} {{ {} }})", inits.join(", ")));
            s
        }
    }
}

/// Field-name list literal for `deserialize_struct`, e.g. `&["a", "b"]`.
fn field_names(fs: &[Field]) -> String {
    let names: Vec<String> =
        fs.iter().filter(|f| !f.skip).map(|f| format!("\"{}\"", f.name)).collect();
    format!("&[{}]", names.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let ta = item.ty_args();
    let ig = item.impl_generics("serde::de::Deserialize<'de>", "'de");
    let vis_generics = item.ty_args();
    let phantom = item.phantom_ty();
    let body = match &item.kind {
        Kind::Struct(fields) => de_struct_body(item, fields),
        Kind::Enum(variants) => de_enum_body(item, variants),
    };
    format!(
        "#[automatically_derived]\n\
         const _: () = {{\n\
             impl{ig} serde::de::Deserialize<'de> for {name}{ta} {{\n\
                 fn deserialize<__D: serde::de::Deserializer<'de>>(__deserializer: __D) \
                     -> ::core::result::Result<Self, __D::Error> {{\n\
                     struct __Visitor{vis_generics}(::core::marker::PhantomData<{phantom}>);\n\
                     impl{ig} serde::de::Visitor<'de> for __Visitor{ta} {{\n\
                         type Value = {name}{ta};\n\
                         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                             __f.write_str(\"{name}\")\n\
                         }}\n\
                         {body}\n\
                     }}\n\
                     {dispatch}\n\
                 }}\n\
             }}\n\
         }};\n",
        dispatch = de_dispatch(item),
    )
}

/// The `deserialize_*` entry call matching the item shape.
fn de_dispatch(item: &Item) -> String {
    let name = &item.name;
    let v = "__Visitor(::core::marker::PhantomData)";
    match &item.kind {
        Kind::Struct(Fields::Unit) => {
            format!("__deserializer.deserialize_unit_struct(\"{name}\", {v})")
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("__deserializer.deserialize_newtype_struct(\"{name}\", {v})")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            format!("__deserializer.deserialize_tuple_struct(\"{name}\", {n}, {v})")
        }
        Kind::Struct(Fields::Named(fs)) => {
            format!("__deserializer.deserialize_struct(\"{name}\", {}, {v})", field_names(fs))
        }
        Kind::Enum(variants) => {
            let names: Vec<String> = variants.iter().map(|x| format!("\"{}\"", x.name)).collect();
            format!("__deserializer.deserialize_enum(\"{name}\", &[{}], {v})", names.join(", "))
        }
    }
}

fn de_struct_body(item: &Item, fields: &Fields) -> String {
    let name = &item.name;
    let ta = item.ty_args();
    match fields {
        Fields::Unit => format!(
            "fn visit_unit<__E: serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                 ::core::result::Result::Ok({name})\n\
             }}"
        ),
        Fields::Tuple(1) => format!(
            "fn visit_newtype_struct<__D: serde::de::Deserializer<'de>>(self, __d: __D) \
                 -> ::core::result::Result<Self::Value, __D::Error> {{\n\
                 serde::de::Deserialize::deserialize(__d).map({name})\n\
             }}"
        ),
        _ => {
            format!(
                "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     {}\n\
                 }}",
                de_seq_ctor(&ctor_path(name, &ta), fields)
            )
        }
    }
}

/// Turbofish-qualified constructor path, e.g. `Foo::<T>` (or plain `Foo`).
fn ctor_path(name: &str, ty_args: &str) -> String {
    if ty_args.is_empty() {
        name.to_string()
    } else {
        format!("{name}::{ty_args}")
    }
}

fn de_enum_body(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let ta = item.ty_args();
    let de_bound_generics = item.impl_generics("serde::de::Deserialize<'de>", "'de");
    let phantom = item.phantom_ty();
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let vpath = format!("{}::{vname}", ctor_path(name, &ta));
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{idx}u32 => {{ serde::de::VariantAccess::unit_variant(__variant)?; \
                 ::core::result::Result::Ok({vpath}) }},\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{idx}u32 => serde::de::VariantAccess::newtype_variant(__variant).map({vpath}),\n"
            )),
            fields @ (Fields::Tuple(_) | Fields::Named(_)) => {
                // Inner visitor for the variant contents; redeclares the item
                // generics since inner items can't capture them.
                let inner = format!("__Variant{idx}");
                let seq_body = de_seq_ctor(&vpath, fields);
                let call = match fields {
                    Fields::Tuple(n) => format!(
                        "serde::de::VariantAccess::tuple_variant(__variant, {n}, {inner}(::core::marker::PhantomData))"
                    ),
                    Fields::Named(fs) => format!(
                        "serde::de::VariantAccess::struct_variant(__variant, {}, {inner}(::core::marker::PhantomData))",
                        field_names(fs)
                    ),
                    Fields::Unit => unreachable!(),
                };
                arms.push_str(&format!(
                    "{idx}u32 => {{\n\
                         struct {inner}{ta}(::core::marker::PhantomData<{phantom}>);\n\
                         impl{de_bound_generics} serde::de::Visitor<'de> for {inner}{ta} {{\n\
                             type Value = {name}{ta};\n\
                             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                                 __f.write_str(\"variant {vname}\")\n\
                             }}\n\
                             fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                                 {seq_body}\n\
                             }}\n\
                         }}\n\
                         {call}\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
             -> ::core::result::Result<Self::Value, __A::Error> {{\n\
             let (__idx, __variant) = serde::de::EnumAccess::variant::<u32>(__data)?;\n\
             match __idx {{\n\
                 {arms}\
                 __other => ::core::result::Result::Err(serde::de::Error::custom(\
                     \"invalid variant index for {name}\")),\n\
             }}\n\
         }}"
    )
}
