//! k-means clustering — Crucial cloud-thread version (Listing 2).
use crucial::{AtomicLong, CyclicBarrier, FnEnv, RunResult, Runnable};
use crucial_ml::objects::{CentroidsHandle, DeltaHandle};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct KMeans {
    worker_id: u32,
    workers: u32,
    k: usize,
    max_iterations: u32,
    centroids: CentroidsHandle,
    delta: DeltaHandle,
    global_iter_count: AtomicLong,
    barrier: CyclicBarrier,
}

impl Runnable for KMeans {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let points = load_dataset_fragment(self.worker_id);
        let mut iter_count = 0;
        loop {
            let (ctx, dso) = env.dso();
            let (generation, correct_centroids) =
                self.centroids.read(ctx, dso).map_err(|e| e.to_string())?;
            let (sums, counts, local_delta) = compute_clusters(&points, &correct_centroids);
            {
                let (ctx, dso) = env.dso();
                self.delta
                    .add(ctx, dso, generation, local_delta)
                    .map_err(|e| e.to_string())?;
                self.centroids
                    .update(ctx, dso, &sums, &counts)
                    .map_err(|e| e.to_string())?;
            }
            let (ctx, dso) = env.dso();
            self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
            self.global_iter_count
                .compare_and_set(ctx, dso, iter_count, iter_count + 1)
                .map_err(|e| e.to_string())?;
            iter_count += 1;
            if iter_count >= self.max_iterations || end_condition(generation) {
                break;
            }
        }
        Ok(())
    }
}
