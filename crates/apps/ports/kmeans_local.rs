//! k-means clustering — single-machine, multi-threaded version.
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

struct GlobalState {
    centroids: Vec<Vec<f64>>,
    acc_sums: Vec<Vec<f64>>,
    acc_counts: Vec<u64>,
    contributions: u32,
    delta: f64,
}

struct KMeans {
    worker_id: u32,
    workers: u32,
    k: usize,
    max_iterations: u32,
    state: Arc<Mutex<GlobalState>>,
    barrier: Arc<Barrier>,
}

impl KMeans {
    fn run(&mut self) {
        let points = load_dataset_fragment(self.worker_id);
        let mut iter_count = 0;
        loop {
            let correct_centroids = self.state.lock().unwrap().centroids.clone();
            let (sums, counts, local_delta) = compute_clusters(&points, &correct_centroids);
            {
                let mut st = self.state.lock().unwrap();
                st.delta += local_delta;
                for (acc, s) in st.acc_sums.iter_mut().zip(&sums) {
                    for (a, b) in acc.iter_mut().zip(s) {
                        *a += b;
                    }
                }
                for (acc, c) in st.acc_counts.iter_mut().zip(&counts) {
                    *acc += c;
                }
                st.contributions += 1;
                if st.contributions == self.workers {
                    fold_centroids(&mut st);
                }
            }
            self.barrier.wait();
            iter_count += 1;
            if iter_count >= self.max_iterations || end_condition(&self.state) {
                break;
            }
        }
    }
}
