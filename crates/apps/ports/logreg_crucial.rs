//! Logistic regression — Crucial cloud-thread version.
use crucial::{CyclicBarrier, FnEnv, RunResult, Runnable};
use crucial_ml::objects::WeightsHandle;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct LogReg {
    worker_id: u32,
    workers: u32,
    iterations: u32,
    learning_rate: f64,
    weights: WeightsHandle,
    barrier: CyclicBarrier,
}

impl Runnable for LogReg {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let (points, labels) = load_dataset_fragment(self.worker_id);
        for _ in 0..self.iterations {
            let (ctx, dso) = env.dso();
            let (_generation, w) = self.weights.read(ctx, dso).map_err(|e| e.to_string())?;
            let (grad, loss) = gradient_and_loss(&points, &labels, &w);
            let (ctx, dso) = env.dso();
            self.weights
                .update(ctx, dso, &grad, loss)
                .map_err(|e| e.to_string())?;
            self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}
