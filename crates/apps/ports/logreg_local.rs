//! Logistic regression — single-machine, multi-threaded version.
use std::sync::{Arc, Barrier, Mutex};

struct GlobalWeights {
    weights: Vec<f64>,
    acc_grad: Vec<f64>,
    acc_loss: f64,
    contributions: u32,
}

struct LogReg {
    worker_id: u32,
    workers: u32,
    iterations: u32,
    learning_rate: f64,
    state: Arc<Mutex<GlobalWeights>>,
    barrier: Arc<Barrier>,
}

impl LogReg {
    fn run(&mut self) {
        let (points, labels) = load_dataset_fragment(self.worker_id);
        for _ in 0..self.iterations {
            let w = self.state.lock().unwrap().weights.clone();
            let (grad, loss) = gradient_and_loss(&points, &labels, &w);
            {
                let mut st = self.state.lock().unwrap();
                for (a, g) in st.acc_grad.iter_mut().zip(&grad) {
                    *a += g;
                }
                st.acc_loss += loss;
                st.contributions += 1;
                if st.contributions == self.workers {
                    apply_step(&mut st, self.learning_rate, self.workers);
                }
            }
            self.barrier.wait();
        }
    }
}
