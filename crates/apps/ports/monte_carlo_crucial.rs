//! Monte Carlo π estimation — Crucial cloud-thread version.
use crucial::{AtomicLong, FnEnv, RunResult, Runnable};
use serde::{Deserialize, Serialize};

const ITERATIONS: u64 = 100_000_000;
const N_THREADS: usize = 8;

#[derive(Serialize, Deserialize)]
struct PiEstimator {
    counter: AtomicLong,
}

impl Runnable for PiEstimator {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let rng = env.ctx().rng();
        let mut count = 0i64;
        for _ in 0..ITERATIONS {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            if x * x + y * y <= 1.0 {
                count += 1;
            }
        }
        let (ctx, dso) = env.dso();
        self.counter.add_and_get(ctx, dso, count).map_err(|e| e.to_string())?;
        Ok(())
    }
}

fn main(ctx: &mut simcore::Ctx, dep: &crucial::Deployment) {
    let counter = AtomicLong::new("counter");
    let factory = dep.threads();
    let mut threads = Vec::with_capacity(N_THREADS);
    for _ in 0..N_THREADS {
        let estimator = PiEstimator {
            counter: counter.clone(),
        };
        threads.push(factory.start(ctx, &estimator));
    }
    for t in threads {
        t.join(ctx).unwrap();
    }
    let mut cli = dep.dso_handle().connect();
    let inside = counter.get(ctx, &mut cli).unwrap();
    let output = 4.0 * inside as f64 / (N_THREADS as u64 * ITERATIONS) as f64;
    println!("pi ≈ {output}");
}
