//! Monte Carlo π estimation — single-machine, multi-threaded version.
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;

const ITERATIONS: u64 = 100_000_000;
const N_THREADS: usize = 8;

struct PiEstimator {
    counter: Arc<AtomicI64>,
}

impl PiEstimator {
    fn run(&mut self) {
        let rng = &mut rand::rng();
        let mut count = 0i64;
        for _ in 0..ITERATIONS {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            if x * x + y * y <= 1.0 {
                count += 1;
            }
        }
        self.counter.fetch_add(count, Ordering::SeqCst);
    }
}

fn main() {
    let counter = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::with_capacity(N_THREADS);
    for _ in 0..N_THREADS {
        let mut estimator = PiEstimator {
            counter: counter.clone(),
        };
        // simlint: allow(native-thread, reason = "faithful port of the paper's native-thread baseline")
        threads.push(thread::spawn(move || estimator.run()));
    }
    for t in threads {
        t.join().unwrap();
    }
    let inside = counter.load(Ordering::SeqCst);
    let output = 4.0 * inside as f64 / (N_THREADS as u64 * ITERATIONS) as f64;
    println!("pi ≈ {output}");
}
