//! Santa Claus problem — Crucial version (@Shared objects, cloud threads).
use crucial::{AtomicLong, CyclicBarrier, DsoClient};
use dso::api::RawHandle;
use std::collections::HashMap;

struct SantaObjects {
    cli: DsoClient,
    joined_reindeer: AtomicLong,
    joined_elf: AtomicLong,
    inbox: RawHandle,
    gates: HashMap<(Kind, u64, Gate), CyclicBarrier>,
}

impl SantaObjects {
    fn join_group(&mut self, ctx: &mut Ctx, kind: Kind) -> u64 {
        let counter = match kind {
            Kind::Reindeer => &self.joined_reindeer,
            Kind::Elf => &self.joined_elf,
        };
        let n = counter.increment_and_get(ctx, &mut self.cli).unwrap() as u64;
        let batch = (n - 1) / kind.group_size();
        if n % kind.group_size() == 0 {
            let _: () = self
                .inbox
                .call(ctx, &mut self.cli, "offer", &(kind.tag(), batch))
                .unwrap();
        }
        batch
    }

    fn santa_take(&mut self, ctx: &mut Ctx) -> (Kind, u64) {
        let (tag, batch): (u8, u64) = self
            .inbox
            .call_blocking(ctx, &mut self.cli, "take", &())
            .unwrap();
        (Kind::from_tag(tag), batch)
    }

    fn pass_gate(&mut self, ctx: &mut Ctx, kind: Kind, batch: u64, gate: Gate) {
        let b = self
            .gates
            .entry((kind, batch, gate))
            .or_insert_with(|| {
                CyclicBarrier::new(&gate_key(kind, batch, gate), kind.group_size() as u32 + 1)
            })
            .clone();
        b.wait(ctx, &mut self.cli).unwrap();
    }
}
