//! Santa Claus problem — single-machine version (monitors and barriers).
use simcore::sync::{LocalBarrier, Monitor};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

struct SantaObjects {
    monitor: Monitor,
    joined: HashMap<Kind, u64>,
    reindeer_q: VecDeque<u64>,
    elf_q: VecDeque<u64>,
    gates: HashMap<(Kind, u64, Gate), LocalBarrier>,
}

impl SantaObjects {
    fn join_group(&mut self, ctx: &mut Ctx, kind: Kind) -> u64 {
        self.monitor.enter(ctx);
        let n = self.joined.entry(kind).or_insert(0);
        *n += 1;
        let batch = (*n - 1) / kind.group_size();
        if *n % kind.group_size() == 0 {
            match kind {
                Kind::Reindeer => self.reindeer_q.push_back(batch),
                Kind::Elf => self.elf_q.push_back(batch),
            }
            self.monitor.notify_all(ctx);
        }
        self.monitor.exit(ctx);
        batch
    }

    fn santa_take(&mut self, ctx: &mut Ctx) -> (Kind, u64) {
        self.monitor.enter(ctx);
        let out = loop {
            if let Some(b) = self.reindeer_q.pop_front() {
                break (Kind::Reindeer, b);
            }
            if let Some(b) = self.elf_q.pop_front() {
                break (Kind::Elf, b);
            }
            self.monitor.wait(ctx);
        };
        self.monitor.exit(ctx);
        out
    }

    fn pass_gate(&mut self, ctx: &mut Ctx, kind: Kind, batch: u64, gate: Gate) {
        let b = self
            .gates
            .entry((kind, batch, gate))
            .or_insert_with(|| LocalBarrier::new(kind.group_size() as usize + 1))
            .clone();
        b.wait(ctx);
    }
}
