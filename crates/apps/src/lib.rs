//! # crucial-apps — the paper's application studies
//!
//! * [`pi`] — Listing 1's Monte Carlo π (Fig. 2b),
//! * [`santa`] — the Santa Claus coordination problem in three flavours
//!   (Fig. 7c),
//! * [`mapsync`] — five ways to synchronize a map phase (Fig. 6),
//! * [`stages`] — multi-stage vs. barrier-synchronized iterative tasks
//!   (Fig. 7b),
//! * [`table4`] — the lines-changed portability measurement (Table 4).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mapsync;
pub mod pi;
pub mod santa;
pub mod stages;
pub mod table4;
