//! Synchronizing a map phase (§6.3.1, Fig. 6): five ways for a reducer to
//! learn that 100 mappers are done and to collect their outputs.
//!
//! 1. **S3 polling** — mappers write results to the object store; the
//!    reducer polls `LIST` until all keys are visible (PyWren's original
//!    mechanism, with S3's latency, tail and visibility delays).
//! 2. **KV polling** — same pattern over the low-latency in-memory store
//!    (polling an Infinispan-like map's size).
//! 3. **SQS** — mappers post to a queue; the reducer polls `Receive`.
//! 4. **Futures** — each mapper completes a DSO future; the reducer's
//!    blocking `get`s are *pushed* the values the moment they exist.
//! 5. **Auto-reduce** — mappers aggregate directly into one shared object
//!    and count down a latch; the reduce phase disappears (§4.2).

use std::sync::Arc;
use std::time::Duration;

use crucial::{
    join_all, spawn_sqs, AtomicLong, CountDownLatch, CrucialConfig, CyclicBarrier, Deployment,
    FnEnv, QueueConfig, RunResult, Runnable, SharedFuture, SharedMap, Sim, SimTime, SqsHandle,
};
use crucial_ml::cost::monte_carlo_cost;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::pi::sample_hits;

/// The five strategies of Fig. 6.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncStrategy {
    /// PyWren-style polling on the object store.
    S3Polling,
    /// Polling a map in the in-memory store.
    KvPolling,
    /// Amazon SQS-style queue polling.
    Sqs,
    /// One DSO future per mapper (push).
    Futures,
    /// Aggregation inside the DSO layer plus a latch (push, no reduce).
    AutoReduce,
}

impl SyncStrategy {
    /// All strategies, in the paper's order.
    pub const ALL: [SyncStrategy; 5] = [
        SyncStrategy::S3Polling,
        SyncStrategy::KvPolling,
        SyncStrategy::Sqs,
        SyncStrategy::Futures,
        SyncStrategy::AutoReduce,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SyncStrategy::S3Polling => "PyWren/S3 polling",
            SyncStrategy::KvPolling => "KV (Infinispan) polling",
            SyncStrategy::Sqs => "Amazon SQS",
            SyncStrategy::Futures => "Crucial futures",
            SyncStrategy::AutoReduce => "Crucial auto-reduce",
        }
    }
}

/// Experiment parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MapSyncConfig {
    /// Seed.
    pub seed: u64,
    /// Mappers (paper: 100).
    pub mappers: u32,
    /// Monte Carlo points per mapper (paper: 100 M).
    pub points: u64,
    /// Reducer poll interval for the polling strategies.
    pub poll_interval: Duration,
}

impl Default for MapSyncConfig {
    fn default() -> Self {
        MapSyncConfig {
            seed: 1,
            mappers: 100,
            points: 100_000_000,
            poll_interval: Duration::from_millis(500),
        }
    }
}

/// Outcome of one run.
#[derive(Clone, Debug)]
pub struct MapSyncReport {
    /// Time from the last mapper finishing its computation until the
    /// reducer holds the final result — the synchronization cost.
    pub sync_time: Duration,
    /// Total measured run (post-warm-up barrier to final result).
    pub total_time: Duration,
    /// The π estimate, as a sanity check that every strategy reduced the
    /// same data.
    pub estimate: f64,
}

/// The mapper function: simulate the points, then publish the local count
/// using the configured strategy.
#[derive(Clone, Serialize, Deserialize)]
pub struct MapSyncMapper {
    /// Mapper index.
    pub id: u32,
    /// Strategy to publish with.
    pub strategy: SyncStrategy,
    /// Shared configuration.
    pub cfg: MapSyncConfig,
    /// Start barrier (mappers + master) to exclude cold starts.
    pub start_barrier: CyclicBarrier,
    /// SQS handle (used by the SQS strategy).
    pub sqs: SqsHandle,
}

impl Runnable for MapSyncMapper {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        {
            let (ctx, dso) = env.dso();
            self.start_barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
        }
        let inside = sample_hits(env.ctx().rng(), self.cfg.points);
        // ±5% compute jitter: mappers straggle, like real Lambdas.
        let base = monte_carlo_cost(self.cfg.points);
        let jitter: f64 = {
            use rand::RngExt;
            env.ctx().rng().random_range(0.95..1.05)
        };
        env.compute(base.mul_f64(jitter));
        // Record when the map phase's computation finished.
        let finished = env.blackboard().series("map-finish");
        let now = env.ctx().now();
        finished.push(now, 1.0);
        // Publish the result.
        let value = inside;
        match self.strategy {
            SyncStrategy::S3Polling => {
                let bytes = crucial::codec::to_bytes(&value).map_err(|e| e.to_string())?;
                let (ctx, s3) = env.s3_split();
                s3.put(ctx, &format!("map-out/{}", self.id), bytes);
            }
            SyncStrategy::KvPolling => {
                let map: SharedMap<i64> = SharedMap::new("map-out");
                let (ctx, dso) = env.dso();
                map.put(ctx, dso, &format!("{}", self.id), &value).map_err(|e| e.to_string())?;
            }
            SyncStrategy::Sqs => {
                let bytes = crucial::codec::to_bytes(&value).map_err(|e| e.to_string())?;
                let sqs = self.sqs.clone();
                sqs.send(env.ctx(), "map-out", bytes);
            }
            SyncStrategy::Futures => {
                let fut: SharedFuture<i64> = SharedFuture::new(&format!("map-out-{}", self.id));
                let (ctx, dso) = env.dso();
                fut.set(ctx, dso, &value).map_err(|e| e.to_string())?;
            }
            SyncStrategy::AutoReduce => {
                let acc = AtomicLong::new("map-acc");
                let latch = CountDownLatch::new("map-latch", self.cfg.mappers as u64);
                let (ctx, dso) = env.dso();
                acc.add_and_get(ctx, dso, value).map_err(|e| e.to_string())?;
                latch.count_down(ctx, dso).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

/// Runs the map phase under `strategy` and measures the synchronization
/// cost at the reducer.
pub fn run_mapsync(strategy: SyncStrategy, cfg: &MapSyncConfig) -> MapSyncReport {
    let mut sim = Sim::new(cfg.seed);
    let dep = Deployment::start(&sim, CrucialConfig::default());
    let sqs = spawn_sqs(&sim, QueueConfig::default());
    dep.register::<MapSyncMapper>();
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let s3 = dep.s3.clone();
    let blackboard = dep.blackboard().clone();
    let out: Arc<Mutex<Option<MapSyncReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg2 = cfg.clone();
    let bb2 = blackboard.clone();
    sim.spawn("reducer", move |ctx| {
        let start_barrier = CyclicBarrier::new("map-start", cfg2.mappers + 1);
        let mappers: Vec<MapSyncMapper> = (0..cfg2.mappers)
            .map(|id| MapSyncMapper {
                id,
                strategy,
                cfg: cfg2.clone(),
                start_barrier: start_barrier.clone(),
                sqs: sqs.clone(),
            })
            .collect();
        let handles = threads.start_all(ctx, &mappers);
        let mut cli = dso.connect();
        start_barrier.wait(ctx, &mut cli).expect("mappers warm");
        let t0 = ctx.now();
        // Collect according to the strategy.
        let n = cfg2.mappers as usize;
        let total: i64 = match strategy {
            SyncStrategy::S3Polling => {
                loop {
                    let keys = s3.list(ctx, "map-out/");
                    if keys.len() >= n {
                        break;
                    }
                    ctx.sleep(cfg2.poll_interval);
                }
                // Reduce phase: fetch all outputs (in parallel, as PyWren's
                // result threads do) and sum locally.
                let mut sum = 0;
                for id in 0..n {
                    let bytes = s3.get(ctx, &format!("map-out/{id}")).expect("listed key");
                    sum += crucial::codec::from_bytes::<i64>(&bytes).expect("decode");
                }
                sum
            }
            SyncStrategy::KvPolling => {
                let map: SharedMap<i64> = SharedMap::new("map-out");
                loop {
                    let size = map.size(ctx, &mut cli).expect("dso");
                    if size as usize >= n {
                        break;
                    }
                    ctx.sleep(cfg2.poll_interval / 5);
                }
                let mut sum = 0;
                for id in 0..n {
                    sum += map.get(ctx, &mut cli, &format!("{id}")).expect("dso").expect("present");
                }
                sum
            }
            SyncStrategy::Sqs => {
                let sqs2 = sqs.clone();
                let mut got = Vec::new();
                while got.len() < n {
                    let msgs = sqs2.receive(ctx, "map-out", 10);
                    if msgs.is_empty() {
                        ctx.sleep(cfg2.poll_interval / 5);
                    }
                    got.extend(msgs);
                }
                got.iter().map(|m| crucial::codec::from_bytes::<i64>(m).expect("decode")).sum()
            }
            SyncStrategy::Futures => {
                let mut sum = 0;
                for id in 0..n {
                    let fut: SharedFuture<i64> = SharedFuture::new(&format!("map-out-{id}"));
                    sum += fut.get(ctx, &mut cli).expect("dso");
                }
                sum
            }
            SyncStrategy::AutoReduce => {
                let latch = CountDownLatch::new("map-latch", cfg2.mappers as u64);
                latch.wait(ctx, &mut cli).expect("dso");
                let acc = AtomicLong::new("map-acc");
                acc.get(ctx, &mut cli).expect("dso")
            }
        };
        let t_result = ctx.now();
        join_all(ctx, handles).expect("mappers succeed");
        // Sync time: from the *last mapper's* compute end to the result.
        let finishes = bb2.series("map-finish").points();
        let last_finish = finishes.iter().map(|(t, _)| *t).max().unwrap_or(SimTime::ZERO);
        let sync_time = t_result.saturating_duration_since(last_finish);
        let total_points = cfg2.mappers as u64 * cfg2.points;
        *out2.lock() = Some(MapSyncReport {
            sync_time,
            total_time: t_result - t0,
            estimate: 4.0 * total as f64 / total_points as f64,
        });
    });
    sim.run_until_idle().expect_quiescent();
    let report = out.lock().take().expect("reducer finished");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> MapSyncConfig {
        MapSyncConfig {
            seed: 9,
            mappers: 20,
            points: 20_000_000, // ~1.8 s of compute per mapper
            poll_interval: Duration::from_millis(500),
        }
    }

    #[test]
    fn every_strategy_reduces_the_same_sum() {
        for strategy in SyncStrategy::ALL {
            let r = run_mapsync(strategy, &quick_cfg());
            assert!(
                (r.estimate - std::f64::consts::PI).abs() < 0.05,
                "{strategy:?}: pi ≈ {}",
                r.estimate
            );
        }
    }

    #[test]
    fn push_beats_polling_beats_queues() {
        let cfg = quick_cfg();
        let s3 = run_mapsync(SyncStrategy::S3Polling, &cfg).sync_time;
        let kv = run_mapsync(SyncStrategy::KvPolling, &cfg).sync_time;
        let sqs = run_mapsync(SyncStrategy::Sqs, &cfg).sync_time;
        let fut = run_mapsync(SyncStrategy::Futures, &cfg).sync_time;
        let auto = run_mapsync(SyncStrategy::AutoReduce, &cfg).sync_time;
        // Fig. 6's ordering.
        assert!(sqs > s3, "SQS ({sqs:?}) slowest, S3 ({s3:?}) next");
        assert!(s3 > kv, "S3 ({s3:?}) slower than KV polling ({kv:?})");
        assert!(kv > fut, "KV polling ({kv:?}) slower than futures ({fut:?})");
        assert!(fut >= auto, "futures ({fut:?}) >= auto-reduce ({auto:?})");
    }
}
