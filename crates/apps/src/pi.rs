//! The Monte Carlo π estimation of Listing 1 — the paper's "hello world"
//! (Fig. 2b's scalability experiment, and the map phase of Fig. 6).
//!
//! The real sampling runs on a capped number of draws; virtual time is
//! charged for the full (paper-scale) number of points through
//! [`crucial_ml::cost::monte_carlo_cost`].

use std::sync::Arc;
use std::time::Duration;

use crucial::{
    join_all, AtomicLong, CrucialConfig, CyclicBarrier, Deployment, FnEnv, RunResult, Runnable, Sim,
};
use crucial_ml::cost::monte_carlo_cost;
use parking_lot::Mutex;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Maximum real samples drawn per invocation; beyond this the hit count is
/// extrapolated (the estimate's variance is the capped sample's).
pub const REAL_SAMPLE_CAP: u64 = 50_000;

/// Draws `points` Monte Carlo samples (capped real work, extrapolated
/// count) and returns how many fell inside the unit circle.
pub fn sample_hits(rng: &mut rand::rngs::StdRng, points: u64) -> i64 {
    let real = points.min(REAL_SAMPLE_CAP);
    let mut inside = 0u64;
    for _ in 0..real {
        let x: f64 = rng.random_range(0.0..1.0);
        let y: f64 = rng.random_range(0.0..1.0);
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    if real == points {
        inside as i64
    } else {
        ((inside as f64 / real as f64) * points as f64).round() as i64
    }
}

/// Listing 1's `PiEstimator` runnable.
#[derive(Clone, Serialize, Deserialize)]
pub struct PiEstimator {
    /// Paper-scale points this thread draws (`ITERATIONS` in Listing 1).
    pub points: u64,
    /// `@Shared(key = "counter")`.
    pub counter: AtomicLong,
    /// Optional start barrier so measurements exclude cold starts.
    pub start_barrier: Option<CyclicBarrier>,
}

impl Runnable for PiEstimator {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        if let Some(b) = &self.start_barrier {
            let (ctx, dso) = env.dso();
            b.wait(ctx, dso).map_err(|e| e.to_string())?;
        }
        let inside = sample_hits(env.ctx().rng(), self.points);
        env.compute(monte_carlo_cost(self.points));
        let (ctx, dso) = env.dso();
        self.counter.add_and_get(ctx, dso, inside).map_err(|e| e.to_string())?;
        Ok(())
    }
}

/// Outcome of a π run.
#[derive(Clone, Debug)]
pub struct PiReport {
    /// The estimate of π.
    pub estimate: f64,
    /// Wall time of the measured (post-barrier) phase.
    pub duration: Duration,
    /// Aggregate sampling throughput (points per second).
    pub points_per_sec: f64,
}

/// Runs Listing 1 with `threads` cloud threads of `points_per_thread`
/// paper-scale points each (Fig. 2b's workload).
pub fn run_pi_crucial(seed: u64, threads: u32, points_per_thread: u64) -> PiReport {
    run_pi_crucial_with(seed, threads, points_per_thread, |_| {})
}

/// [`run_pi_crucial`] with a hook that runs against the fresh [`Sim`]
/// before any process is spawned — the place to install a
/// [`crucial::Tracer`] or [`crucial::MetricsRegistry`].
pub fn run_pi_crucial_with(
    seed: u64,
    threads: u32,
    points_per_thread: u64,
    setup: impl FnOnce(&Sim),
) -> PiReport {
    let mut sim = Sim::new(seed);
    setup(&sim);
    let dep = Deployment::start(&sim, CrucialConfig::default());
    dep.register::<PiEstimator>();
    let factory = dep.threads();
    let dso = dep.dso_handle();
    let out: Arc<Mutex<Option<PiReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    sim.spawn("pi-master", move |ctx| {
        let counter = AtomicLong::new("counter");
        // threads + 1: the master participates to timestamp the barrier
        // release (excluding cold starts, as the paper does).
        let barrier = CyclicBarrier::new("start", threads + 1);
        let runnables: Vec<PiEstimator> = (0..threads)
            .map(|_| PiEstimator {
                points: points_per_thread,
                counter: counter.clone(),
                start_barrier: Some(barrier.clone()),
            })
            .collect();
        // The measurement includes starting the cloud threads (the paper
        // attributes Fig. 2b's sub-linearity to "the overhead of thread
        // creation") and the barrier keeps the sampling phase aligned.
        let t0 = ctx.now();
        let handles = factory.start_all(ctx, &runnables);
        let mut cli = dso.connect();
        barrier.wait(ctx, &mut cli).expect("all threads started");
        join_all(ctx, handles).expect("pi threads succeed");
        let duration = ctx.now() - t0;
        let inside = counter.get(ctx, &mut cli).expect("dso");
        let total = threads as u64 * points_per_thread;
        *out2.lock() = Some(PiReport {
            estimate: 4.0 * inside as f64 / total as f64,
            duration,
            points_per_sec: total as f64 / duration.as_secs_f64(),
        });
    });
    sim.run_until_idle().expect_quiescent();
    let report = out.lock().take().expect("master finished");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_hits_estimates_pi() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let inside = sample_hits(&mut rng, 40_000);
        let pi = 4.0 * inside as f64 / 40_000.0;
        assert!((pi - std::f64::consts::PI).abs() < 0.05, "pi ≈ {pi}");
    }

    #[test]
    fn extrapolation_beyond_cap() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let inside = sample_hits(&mut rng, 100 * REAL_SAMPLE_CAP);
        let pi = 4.0 * inside as f64 / (100 * REAL_SAMPLE_CAP) as f64;
        assert!((pi - std::f64::consts::PI).abs() < 0.05, "pi ≈ {pi}");
    }

    #[test]
    fn crucial_pi_end_to_end() {
        let report = run_pi_crucial(3, 8, 1_000_000);
        assert!((report.estimate - std::f64::consts::PI).abs() < 0.05, "pi ≈ {}", report.estimate);
        // 1M points at ~11M/s ≈ 91ms of compute, behind one cold start
        // (~1.5 s) and the per-thread start overhead.
        assert!(report.duration > Duration::from_millis(1500), "{:?}", report.duration);
        assert!(report.duration < Duration::from_millis(3000), "{:?}", report.duration);
    }

    #[test]
    fn throughput_scales_with_threads() {
        let t8 = run_pi_crucial(4, 8, 2_000_000);
        let t32 = run_pi_crucial(4, 32, 2_000_000);
        let speedup = t32.points_per_sec / t8.points_per_sec;
        assert!(speedup > 3.0 && speedup < 4.2, "32 threads should be ~4x of 8 threads: {speedup}");
    }
}
