//! The Santa Claus problem (§6.3.3, Fig. 7c): 9 reindeer, 10 elves, and
//! Santa coordinate through groups and gates. Three solutions share one
//! algorithm:
//!
//! * **local** — plain objects on one machine (monitors + local barriers),
//! * **dso** — the same objects stored in the DSO layer (`@Shared`),
//! * **cloud** — additionally running every entity as a cloud thread.
//!
//! The algorithm (after Ben-Ari): entities join their group; the last
//! member of a full group posts it to Santa's inbox; Santa takes groups —
//! reindeer first — and everyone synchronizes through per-batch entry and
//! exit gates (barriers of `group size + 1`, Santa included).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use crucial::sync::{LocalBarrier, Monitor, WaitGroup};
use crucial::{
    join_all, AtomicLong, CallCtx, CrucialConfig, Ctx, CyclicBarrier, Deployment, DsoClient,
    Effects, FnEnv, ObjectError, ObjectRegistry, RawHandle, RunResult, Runnable, SharedObject, Sim,
    SimTime,
};
use parking_lot::Mutex;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Entity kinds.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Kind {
    /// One of the 9 reindeer (group size 9, priority at Santa's door).
    Reindeer,
    /// One of the 10 elves (group size 3).
    Elf,
}

impl Kind {
    /// Members needed to form a group.
    pub fn group_size(self) -> u64 {
        match self {
            Kind::Reindeer => 9,
            Kind::Elf => 3,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Kind::Reindeer => 0,
            Kind::Elf => 1,
        }
    }

    fn from_tag(t: u8) -> Kind {
        if t == 0 {
            Kind::Reindeer
        } else {
            Kind::Elf
        }
    }
}

/// Entry or exit gate of a batch.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Gate {
    /// Passed before Santa serves the group.
    Entry,
    /// Passed after.
    Exit,
}

/// Problem parameters.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct SantaConfig {
    /// Seed for work-time jitter.
    pub seed: u64,
    /// Toy deliveries to complete (paper: 15).
    pub deliveries: u64,
    /// Consultations per elf (10 elves × 3 = 10 groups of 3).
    pub consults_per_elf: u64,
    /// Santa's time to deliver toys.
    pub delivery_time: Duration,
    /// Santa's time to consult a group of elves.
    pub consult_time: Duration,
    /// Upper bound of an entity's independent work between rounds.
    pub max_work_time: Duration,
}

impl Default for SantaConfig {
    fn default() -> Self {
        SantaConfig {
            seed: 1,
            deliveries: 15,
            consults_per_elf: 3,
            delivery_time: Duration::from_millis(50),
            consult_time: Duration::from_millis(20),
            max_work_time: Duration::from_millis(100),
        }
    }
}

impl SantaConfig {
    /// Total elf groups Santa serves.
    pub fn elf_groups(&self) -> u64 {
        10 * self.consults_per_elf / Kind::Elf.group_size()
    }

    /// Global join quota per kind.
    pub fn quota(&self, kind: Kind) -> u64 {
        match kind {
            Kind::Reindeer => Kind::Reindeer.group_size() * self.deliveries,
            Kind::Elf => Kind::Elf.group_size() * self.elf_groups(),
        }
    }
}

/// Outcome: when the last (15th) toy delivery completed.
#[derive(Clone, Debug)]
pub struct SantaReport {
    /// Virtual time of the final delivery.
    pub completion: Duration,
}

// ---------------------------------------------------------------------------
// The shared-object interface of the algorithm
// ---------------------------------------------------------------------------

/// Operations the algorithm needs; each variant provides them over its own
/// substrate.
pub trait SantaOps {
    /// Claims the next slot in a group of `kind`, up to `quota` total
    /// slots per kind; returns the batch index, or `None` once the run's
    /// work is exhausted. The claimer of a batch's last slot posts the
    /// full group to Santa's inbox.
    ///
    /// Slots are a *global* quota rather than a per-entity round count:
    /// any free entity may take the next slot. (With fixed per-entity
    /// rounds, the run can strand its final group: its missing member may
    /// be an entity already parked inside that very group.)
    fn join_group(&mut self, ctx: &mut Ctx, kind: Kind, quota: u64) -> Option<u64>;
    /// Santa's blocking take: the next full group, reindeer first.
    fn santa_take(&mut self, ctx: &mut Ctx) -> (Kind, u64);
    /// Synchronizes on a batch gate (barrier of `group size + 1`).
    fn pass_gate(&mut self, ctx: &mut Ctx, kind: Kind, batch: u64, gate: Gate);
}

/// One entity's life: work, join, pass both gates, repeat until the
/// kind's quota is consumed.
pub fn entity_loop(ops: &mut dyn SantaOps, ctx: &mut Ctx, kind: Kind, cfg: &SantaConfig) {
    let quota = cfg.quota(kind);
    loop {
        let work_ns = ctx.rng().random_range(0..cfg.max_work_time.as_nanos() as u64);
        ctx.sleep(Duration::from_nanos(work_ns));
        let Some(batch) = ops.join_group(ctx, kind, quota) else {
            return;
        };
        ops.pass_gate(ctx, kind, batch, Gate::Entry);
        // Santa performs the delivery/consultation between the gates.
        ops.pass_gate(ctx, kind, batch, Gate::Exit);
    }
}

/// Santa's life: take the next full group, harness/consult, release.
/// Returns the instant the final toy delivery finished.
pub fn santa_loop(ops: &mut dyn SantaOps, ctx: &mut Ctx, cfg: &SantaConfig) -> SimTime {
    let mut deliveries = 0;
    let mut consults = 0;
    let mut last_delivery = ctx.now();
    while deliveries < cfg.deliveries || consults < cfg.elf_groups() {
        let (kind, batch) = ops.santa_take(ctx);
        ops.pass_gate(ctx, kind, batch, Gate::Entry);
        match kind {
            Kind::Reindeer => {
                ctx.sleep(cfg.delivery_time);
                deliveries += 1;
            }
            Kind::Elf => {
                ctx.sleep(cfg.consult_time);
                consults += 1;
            }
        }
        ops.pass_gate(ctx, kind, batch, Gate::Exit);
        if kind == Kind::Reindeer {
            last_delivery = ctx.now();
        }
    }
    last_delivery
}

// ---------------------------------------------------------------------------
// Local (POJO) implementation
// ---------------------------------------------------------------------------

struct LocalShared {
    joined: HashMap<Kind, u64>,
    reindeer_q: VecDeque<u64>,
    elf_q: VecDeque<u64>,
    gates: HashMap<(Kind, u64, Gate), LocalBarrier>,
}

/// The plain-old-objects solution: monitors and local barriers.
#[derive(Clone)]
pub struct LocalOps {
    monitor: Monitor,
    shared: Arc<Mutex<LocalShared>>,
}

impl LocalOps {
    /// Creates the shared local objects.
    pub fn new() -> LocalOps {
        LocalOps {
            monitor: Monitor::new("santa"),
            shared: Arc::new(Mutex::new(LocalShared {
                joined: HashMap::new(),
                reindeer_q: VecDeque::new(),
                elf_q: VecDeque::new(),
                gates: HashMap::new(),
            })),
        }
    }

    fn gate(&self, kind: Kind, batch: u64, gate: Gate) -> LocalBarrier {
        let mut st = self.shared.lock();
        st.gates
            .entry((kind, batch, gate))
            .or_insert_with(|| LocalBarrier::new(kind.group_size() as usize + 1))
            .clone()
    }
}

impl Default for LocalOps {
    fn default() -> Self {
        Self::new()
    }
}

impl SantaOps for LocalOps {
    fn join_group(&mut self, ctx: &mut Ctx, kind: Kind, quota: u64) -> Option<u64> {
        self.monitor.enter(ctx);
        let batch = {
            let mut st = self.shared.lock();
            let n = st.joined.entry(kind).or_insert(0);
            if *n >= quota {
                None
            } else {
                *n += 1;
                let joined = *n;
                let batch = (joined - 1) / kind.group_size();
                if joined.is_multiple_of(kind.group_size()) {
                    match kind {
                        Kind::Reindeer => st.reindeer_q.push_back(batch),
                        Kind::Elf => st.elf_q.push_back(batch),
                    }
                }
                Some(batch)
            }
        };
        // A full group wakes Santa if he is waiting.
        self.monitor.notify_all(ctx);
        self.monitor.exit(ctx);
        batch
    }

    fn santa_take(&mut self, ctx: &mut Ctx) -> (Kind, u64) {
        self.monitor.enter(ctx);
        let out = loop {
            let popped = {
                let mut st = self.shared.lock();
                if let Some(b) = st.reindeer_q.pop_front() {
                    Some((Kind::Reindeer, b))
                } else {
                    st.elf_q.pop_front().map(|b| (Kind::Elf, b))
                }
            };
            match popped {
                Some(x) => break x,
                None => self.monitor.wait(ctx),
            }
        };
        self.monitor.exit(ctx);
        out
    }

    fn pass_gate(&mut self, ctx: &mut Ctx, kind: Kind, batch: u64, gate: Gate) {
        let b = self.gate(kind, batch, gate);
        b.wait(ctx);
    }
}

/// Runs the POJO solution on simulated local threads.
pub fn run_santa_local(cfg: &SantaConfig) -> SantaReport {
    let mut sim = Sim::new(cfg.seed);
    let ops = LocalOps::new();
    let done = WaitGroup::new(19); // 9 reindeer + 10 elves
    for r in 0..9 {
        let mut ops = ops.clone();
        let done = done.clone();
        let cfg = *cfg;
        sim.spawn(&format!("reindeer-{r}"), move |ctx| {
            entity_loop(&mut ops, ctx, Kind::Reindeer, &cfg);
            done.done(ctx);
        });
    }
    for e in 0..10 {
        let mut ops = ops.clone();
        let done = done.clone();
        let cfg = *cfg;
        sim.spawn(&format!("elf-{e}"), move |ctx| {
            entity_loop(&mut ops, ctx, Kind::Elf, &cfg);
            done.done(ctx);
        });
    }
    let out: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg2 = *cfg;
    let mut santa_ops = ops;
    sim.spawn("santa", move |ctx| {
        let t = santa_loop(&mut santa_ops, ctx, &cfg2);
        *out2.lock() = Some(t);
    });
    sim.run_until_idle().expect_quiescent();
    let t = out.lock().take().expect("santa finished");
    SantaReport { completion: t.saturating_duration_since(SimTime::ZERO) }
}

// ---------------------------------------------------------------------------
// The SantaInbox shared object (DSO variants)
// ---------------------------------------------------------------------------

/// Santa's inbox as a custom `@Shared` object: full groups are offered,
/// Santa's `take` parks until one is available, reindeer first.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SantaInbox {
    reindeer_q: VecDeque<u64>,
    elf_q: VecDeque<u64>,
    #[serde(skip)]
    waiting: Option<crucial::Ticket>,
}

impl SantaInbox {
    /// Registry type name.
    pub const TYPE: &'static str = "SantaInbox";

    /// Factory (no creation arguments).
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjectError> {
        if !args.is_empty() {
            let _: () = crucial::codec::from_bytes(args)
                .map_err(|e| ObjectError::BadState(e.to_string()))?;
        }
        Ok(Box::<SantaInbox>::default())
    }

    fn pop(&mut self) -> Option<(u8, u64)> {
        if let Some(b) = self.reindeer_q.pop_front() {
            Some((0, b))
        } else {
            self.elf_q.pop_front().map(|b| (1, b))
        }
    }
}

impl SharedObject for SantaInbox {
    fn invoke(
        &mut self,
        call: &CallCtx,
        method: &str,
        args: &[u8],
    ) -> Result<Effects, ObjectError> {
        match method {
            "offer" => {
                let (tag, batch): (u8, u64) = crucial::codec::from_bytes(args)
                    .map_err(|e| ObjectError::BadArgs(e.to_string()))?;
                match tag {
                    0 => self.reindeer_q.push_back(batch),
                    _ => self.elf_q.push_back(batch),
                }
                let mut fx = Effects::value(&())?;
                if let Some(t) = self.waiting.take() {
                    let next = self.pop().expect("just offered");
                    fx = fx.wake(t, &next)?;
                }
                Ok(fx)
            }
            "take" => match self.pop() {
                Some(next) => Effects::value(&next),
                None => {
                    self.waiting = Some(call.ticket);
                    Ok(Effects::park())
                }
            },
            other => Err(ObjectError::MethodNotFound(other.to_string())),
        }
    }

    fn save(&self) -> Vec<u8> {
        crucial::codec::to_bytes(self).expect("inbox encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjectError> {
        *self =
            crucial::codec::from_bytes(state).map_err(|e| ObjectError::BadState(e.to_string()))?;
        Ok(())
    }
}

/// Registers the Santa application objects.
pub fn register_santa_objects(reg: &mut ObjectRegistry) {
    reg.register(SantaInbox::TYPE, SantaInbox::factory);
}

// ---------------------------------------------------------------------------
// DSO implementation
// ---------------------------------------------------------------------------

/// The `@Shared` solution: the exact same algorithm, with the objects in
/// the DSO layer. (Per Table 4, only the object bindings change.)
pub struct DsoOps {
    cli: DsoClient,
    joined_reindeer: AtomicLong,
    joined_elf: AtomicLong,
    inbox: RawHandle,
    gates: HashMap<(Kind, u64, Gate), CyclicBarrier>,
}

impl DsoOps {
    /// Binds the shared objects through a DSO client.
    pub fn new(cli: DsoClient) -> DsoOps {
        DsoOps {
            cli,
            joined_reindeer: AtomicLong::new("santa-joined-reindeer"),
            joined_elf: AtomicLong::new("santa-joined-elf"),
            inbox: RawHandle::new(SantaInbox::TYPE, "santa-inbox", 1, &()),
            gates: HashMap::new(),
        }
    }

    fn gate(&mut self, kind: Kind, batch: u64, gate: Gate) -> CyclicBarrier {
        self.gates
            .entry((kind, batch, gate))
            .or_insert_with(|| {
                let g = match gate {
                    Gate::Entry => "in",
                    Gate::Exit => "out",
                };
                CyclicBarrier::new(
                    &format!("santa-gate-{}-{batch}-{g}", kind.tag()),
                    kind.group_size() as u32 + 1,
                )
            })
            .clone()
    }
}

impl SantaOps for DsoOps {
    fn join_group(&mut self, ctx: &mut Ctx, kind: Kind, quota: u64) -> Option<u64> {
        let counter = match kind {
            Kind::Reindeer => &self.joined_reindeer,
            Kind::Elf => &self.joined_elf,
        };
        // Claim a slot with CAS so the quota is never exceeded.
        let joined = loop {
            let cur = counter.get(ctx, &mut self.cli).expect("dso");
            if cur as u64 >= quota {
                return None;
            }
            if counter.compare_and_set(ctx, &mut self.cli, cur, cur + 1).expect("dso") {
                break (cur + 1) as u64;
            }
        };
        let batch = (joined - 1) / kind.group_size();
        if joined % kind.group_size() == 0 {
            let _: () =
                self.inbox.call(ctx, &mut self.cli, "offer", &(kind.tag(), batch)).expect("dso");
        }
        Some(batch)
    }

    fn santa_take(&mut self, ctx: &mut Ctx) -> (Kind, u64) {
        let (tag, batch): (u8, u64) =
            self.inbox.call_blocking(ctx, &mut self.cli, "take", &()).expect("dso");
        (Kind::from_tag(tag), batch)
    }

    fn pass_gate(&mut self, ctx: &mut Ctx, kind: Kind, batch: u64, gate: Gate) {
        let b = self.gate(kind, batch, gate);
        b.wait(ctx, &mut self.cli).expect("dso");
    }
}

/// Runs the DSO solution with *local* threads (the paper's middle variant).
pub fn run_santa_dso(cfg: &SantaConfig) -> SantaReport {
    let mut sim = Sim::new(cfg.seed);
    let mut ccfg = CrucialConfig::default();
    register_santa_objects(&mut ccfg.registry);
    let dep = Deployment::start(&sim, ccfg);
    let handle = dep.dso_handle();
    let done = WaitGroup::new(19);
    for r in 0..9 {
        let handle = handle.clone();
        let done = done.clone();
        let cfg = *cfg;
        sim.spawn(&format!("reindeer-{r}"), move |ctx| {
            let mut ops = DsoOps::new(handle.connect());
            entity_loop(&mut ops, ctx, Kind::Reindeer, &cfg);
            done.done(ctx);
        });
    }
    for e in 0..10 {
        let handle = handle.clone();
        let done = done.clone();
        let cfg = *cfg;
        sim.spawn(&format!("elf-{e}"), move |ctx| {
            let mut ops = DsoOps::new(handle.connect());
            entity_loop(&mut ops, ctx, Kind::Elf, &cfg);
            done.done(ctx);
        });
    }
    let out: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg2 = *cfg;
    sim.spawn("santa", move |ctx| {
        let mut ops = DsoOps::new(handle.connect());
        let t = santa_loop(&mut ops, ctx, &cfg2);
        *out2.lock() = Some(t);
    });
    sim.run_until_idle().expect_quiescent();
    let t = out.lock().take().expect("santa finished");
    SantaReport { completion: t.saturating_duration_since(SimTime::ZERO) }
}

// ---------------------------------------------------------------------------
// Cloud-thread implementation
// ---------------------------------------------------------------------------

/// An entity (or Santa) as a cloud function.
#[derive(Clone, Serialize, Deserialize)]
pub struct SantaEntity {
    /// Role: `None` is Santa, otherwise the entity's kind.
    pub kind: Option<Kind>,
    /// Problem parameters.
    pub cfg: SantaConfig,
    /// Start barrier for all 20 participants: the measurement starts when
    /// everyone is warm ("we do not include cold starts", §6.3.3).
    pub start_barrier: CyclicBarrier,
    /// Where Santa reports the measured span (nanos).
    pub completion: AtomicLong,
}

impl Runnable for SantaEntity {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let mut ops = DsoOps::new(env.dso_connect());
        {
            let (ctx, cli) = env.dso();
            self.start_barrier.wait(ctx, cli).map_err(|e| e.to_string())?;
        }
        match self.kind {
            Some(kind) => {
                entity_loop(&mut ops, env.ctx(), kind, &self.cfg);
            }
            None => {
                let t0 = env.ctx().now();
                let t = santa_loop(&mut ops, env.ctx(), &self.cfg);
                let span = t.saturating_duration_since(t0);
                let (ctx, cli) = env.dso();
                self.completion.set(ctx, cli, span.as_nanos() as i64).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

/// Runs the fully serverless solution: the same DSO objects, with every
/// entity (Santa included) as a cloud thread.
pub fn run_santa_cloud(cfg: &SantaConfig) -> SantaReport {
    let mut sim = Sim::new(cfg.seed);
    let mut ccfg = CrucialConfig::default();
    register_santa_objects(&mut ccfg.registry);
    let dep = Deployment::start(&sim, ccfg);
    dep.register::<SantaEntity>();
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let out: Arc<Mutex<Option<Duration>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg2 = *cfg;
    sim.spawn("santa-master", move |ctx| {
        let completion = AtomicLong::new("santa-completion");
        let start_barrier = CyclicBarrier::new("santa-start", 20);
        let mut entities: Vec<SantaEntity> = Vec::new();
        for _ in 0..9 {
            entities.push(SantaEntity {
                kind: Some(Kind::Reindeer),
                cfg: cfg2,
                start_barrier: start_barrier.clone(),
                completion: completion.clone(),
            });
        }
        for _ in 0..10 {
            entities.push(SantaEntity {
                kind: Some(Kind::Elf),
                cfg: cfg2,
                start_barrier: start_barrier.clone(),
                completion: completion.clone(),
            });
        }
        entities.push(SantaEntity {
            kind: None,
            cfg: cfg2,
            start_barrier: start_barrier.clone(),
            completion: completion.clone(),
        });
        let handles = threads.start_all(ctx, &entities);
        join_all(ctx, handles).expect("entities finish");
        let mut cli = dso.connect();
        let span = completion.get(ctx, &mut cli).expect("dso") as u64;
        *out2.lock() = Some(Duration::from_nanos(span));
    });
    sim.run_until_idle().expect_quiescent();
    let completion = out.lock().take().expect("master finished");
    SantaReport { completion }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SantaConfig {
        SantaConfig {
            seed: 7,
            deliveries: 5,
            consults_per_elf: 3,
            delivery_time: Duration::from_millis(50),
            consult_time: Duration::from_millis(20),
            max_work_time: Duration::from_millis(100),
        }
    }

    #[test]
    fn local_solution_completes() {
        let r = run_santa_local(&quick_cfg());
        // 5 deliveries of 50ms plus work gaps: bounded both ways.
        assert!(r.completion > Duration::from_millis(250), "{:?}", r.completion);
        assert!(r.completion < Duration::from_secs(10), "{:?}", r.completion);
    }

    #[test]
    fn dso_solution_completes_with_small_overhead() {
        // Shrink the random work gaps and average over several seeds: the
        // messaging overhead being measured is fixed per operation, and a
        // single run's random work times would otherwise swamp it.
        let (mut local_t, mut dso_t) = (0.0f64, 0.0f64);
        for seed in [7, 11, 23, 41] {
            let cfg = SantaConfig { seed, max_work_time: Duration::from_millis(5), ..quick_cfg() };
            local_t += run_santa_local(&cfg).completion.as_secs_f64();
            dso_t += run_santa_dso(&cfg).completion.as_secs_f64();
        }
        let ratio = dso_t / local_t;
        // Fig. 7c: storing the objects in Crucial costs ~8%.
        assert!(
            ratio > 1.0 && ratio < 1.5,
            "dso/local = {ratio} (local sum {local_t}s, dso sum {dso_t}s)"
        );
    }

    #[test]
    fn cloud_solution_close_to_dso() {
        let dso = run_santa_dso(&quick_cfg());
        let cloud = run_santa_cloud(&quick_cfg());
        let ratio = cloud.completion.as_secs_f64() / dso.completion.as_secs_f64();
        // Fig. 7c: "almost no difference in the completion time".
        assert!(
            (0.8..1.6).contains(&ratio),
            "cloud/dso = {ratio} (dso {:?}, cloud {:?})",
            dso.completion,
            cloud.completion
        );
    }

    #[test]
    fn deliveries_and_consults_all_served_deterministically() {
        let a = run_santa_local(&quick_cfg());
        let b = run_santa_local(&quick_cfg());
        assert_eq!(a.completion, b.completion, "deterministic replay");
    }
}
