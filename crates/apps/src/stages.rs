//! Iterative tasks: multiple FaaS stages vs. one stage with a barrier
//! (§6.3.2, Fig. 7b).
//!
//! Approach **A** launches a fresh set of cloud threads for every
//! iteration: each pays the invocation overhead and re-reads its input
//! from the object store. Approach **B** launches one set that runs all
//! iterations, reading the input once and synchronizing with the DSO
//! barrier. The per-phase breakdown (Invocation, S3 read, Compute, Sync)
//! comes out of the blackboard.

use std::sync::Arc;
use std::time::Duration;

use crucial::{
    join_all, CrucialConfig, CyclicBarrier, Deployment, FnEnv, RunResult, Runnable, Sim,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Experiment parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StagesConfig {
    /// Seed.
    pub seed: u64,
    /// Concurrent threads (paper: 10).
    pub threads: u32,
    /// Iterations of the task (paper's figure shows a handful).
    pub iterations: u32,
    /// Input object size (drives the S3 read time).
    pub input_bytes: usize,
    /// Compute time per iteration.
    pub compute: Duration,
}

impl Default for StagesConfig {
    fn default() -> Self {
        StagesConfig {
            seed: 1,
            threads: 10,
            iterations: 3,
            input_bytes: 8 * 1024 * 1024,
            compute: Duration::from_secs(1),
        }
    }
}

/// Per-phase time totals (averaged per thread).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Invocation overhead (thread start to function body).
    pub invocation: Duration,
    /// Reading input from the object store.
    pub s3_read: Duration,
    /// Computation.
    pub compute: Duration,
    /// Synchronization (barrier waits / join gaps).
    pub sync: Duration,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.invocation + self.s3_read + self.compute + self.sync
    }
}

/// Conditionally recording view of the blackboard.
#[derive(Clone)]
pub struct Recorder {
    bb: crucial::Blackboard,
    on: bool,
}

impl Recorder {
    /// Wraps a blackboard; `on = false` silences all recordings.
    pub fn new(bb: crucial::Blackboard, on: bool) -> Recorder {
        Recorder { bb, on }
    }

    /// Records a duration into the named stats if enabled.
    pub fn record(&self, name: &str, d: Duration) {
        if self.on {
            self.bb.stats(name).record(d);
        }
    }
}

/// One iteration's work as a standalone stage (approach A).
#[derive(Clone, Serialize, Deserialize)]
pub struct StageTask {
    /// Thread index.
    pub id: u32,
    /// When the client called `start` (nanos) — for the invocation phase.
    pub started_nanos: u64,
    /// Shared parameters.
    pub cfg: StagesConfig,
    /// Whether to record phase stats (off during warm-up).
    pub record: bool,
}

impl Runnable for StageTask {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let bb = crate::stages::Recorder::new(env.blackboard().clone(), self.record);
        let t_enter = env.ctx().now();
        bb.record(
            "a-invocation",
            t_enter.saturating_duration_since(crucial::SimTime::from_nanos(self.started_nanos)),
        );
        // S3 read of the input.
        let t0 = env.ctx().now();
        let (ctx, s3) = env.s3_split();
        let _ = s3.get(ctx, &format!("input/{}", self.id));
        ctx.sleep(Duration::from_secs_f64(
            self.cfg.input_bytes as f64 / crucial_ml::cost::S3_READ_BW,
        ));
        let t1 = env.ctx().now();
        bb.record("a-s3", t1 - t0);
        env.compute(self.cfg.compute);
        let t2 = env.ctx().now();
        bb.record("a-compute", t2 - t1);
        Ok(())
    }
}

/// All iterations in one function, synchronized by a barrier (approach B).
#[derive(Clone, Serialize, Deserialize)]
pub struct BarrierTask {
    /// Thread index.
    pub id: u32,
    /// When the client called `start` (nanos).
    pub started_nanos: u64,
    /// Shared parameters.
    pub cfg: StagesConfig,
    /// The iteration barrier.
    pub barrier: CyclicBarrier,
    /// Whether to record phase stats (off during warm-up).
    pub record: bool,
}

impl Runnable for BarrierTask {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let bb = crate::stages::Recorder::new(env.blackboard().clone(), self.record);
        let t_enter = env.ctx().now();
        bb.record(
            "b-invocation",
            t_enter.saturating_duration_since(crucial::SimTime::from_nanos(self.started_nanos)),
        );
        // Input is fetched once.
        let t0 = env.ctx().now();
        let (ctx, s3) = env.s3_split();
        let _ = s3.get(ctx, &format!("input/{}", self.id));
        ctx.sleep(Duration::from_secs_f64(
            self.cfg.input_bytes as f64 / crucial_ml::cost::S3_READ_BW,
        ));
        let t1 = env.ctx().now();
        bb.record("b-s3", t1 - t0);
        for _ in 0..self.cfg.iterations {
            let c0 = env.ctx().now();
            env.compute(self.cfg.compute);
            let c1 = env.ctx().now();
            bb.record("b-compute", c1 - c0);
            let (ctx, dso) = env.dso();
            self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
            let c2 = env.ctx().now();
            bb.record("b-sync", c2 - c1);
        }
        Ok(())
    }
}

/// Result of the comparison.
#[derive(Clone, Debug)]
pub struct StagesReport {
    /// Approach A (one stage per iteration): per-thread breakdown.
    pub multi_stage: PhaseBreakdown,
    /// Approach A total wall time.
    pub multi_stage_total: Duration,
    /// Approach B (single stage + barrier): per-thread breakdown.
    pub single_stage: PhaseBreakdown,
    /// Approach B total wall time.
    pub single_stage_total: Duration,
}

/// Runs both approaches and collects the Fig. 7b breakdown.
pub fn run_stages(cfg: &StagesConfig) -> StagesReport {
    let mut sim = Sim::new(cfg.seed);
    let dep = Deployment::start(&sim, CrucialConfig::default());
    dep.register::<StageTask>();
    dep.register::<BarrierTask>();
    let threads = dep.threads();
    let bb = dep.blackboard().clone();
    let s3 = dep.s3.clone();
    let out: Arc<Mutex<Option<(Duration, Duration)>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg2 = cfg.clone();
    sim.spawn("stages-master", move |ctx| {
        // Stage inputs.
        for id in 0..cfg2.threads {
            s3.put(ctx, &format!("input/{id}"), vec![0u8; 1024]);
        }
        // Warm the platform so both approaches run on warm containers.
        let warm: Vec<StageTask> = (0..cfg2.threads)
            .map(|id| StageTask {
                id,
                started_nanos: ctx.now().as_nanos(),
                cfg: StagesConfig { compute: Duration::ZERO, input_bytes: 0, ..cfg2.clone() },
                record: false,
            })
            .collect();
        let handles = threads.start_all(ctx, &warm);
        join_all(ctx, handles).expect("warm-up");
        let warm_b: Vec<BarrierTask> = (0..cfg2.threads)
            .map(|id| BarrierTask {
                id,
                started_nanos: ctx.now().as_nanos(),
                cfg: StagesConfig {
                    compute: Duration::ZERO,
                    input_bytes: 0,
                    iterations: 1,
                    ..cfg2.clone()
                },
                barrier: CyclicBarrier::new("warm-barrier", cfg2.threads),
                record: false,
            })
            .collect();
        let handles = threads.start_all(ctx, &warm_b);
        join_all(ctx, handles).expect("warm-up b");

        // Approach A: a fresh stage per iteration.
        let t0 = ctx.now();
        for _ in 0..cfg2.iterations {
            let tasks: Vec<StageTask> = (0..cfg2.threads)
                .map(|id| StageTask {
                    id,
                    started_nanos: ctx.now().as_nanos(),
                    cfg: cfg2.clone(),
                    record: true,
                })
                .collect();
            let handles = threads.start_all(ctx, &tasks);
            join_all(ctx, handles).expect("stage A");
        }
        let a_total = ctx.now() - t0;

        // Approach B: one stage with a barrier.
        let t0 = ctx.now();
        let barrier = CyclicBarrier::new("iter-barrier", cfg2.threads);
        let tasks: Vec<BarrierTask> = (0..cfg2.threads)
            .map(|id| BarrierTask {
                id,
                started_nanos: ctx.now().as_nanos(),
                cfg: cfg2.clone(),
                barrier: barrier.clone(),
                record: true,
            })
            .collect();
        let handles = threads.start_all(ctx, &tasks);
        join_all(ctx, handles).expect("stage B");
        let b_total = ctx.now() - t0;
        *out2.lock() = Some((a_total, b_total));
    });
    sim.run_until_idle().expect_quiescent();
    let (a_total, b_total) = out.lock().take().expect("master finished");
    let per_thread = |name: &str, scale: u32| -> Duration {
        let s = bb.stats(name);
        if s.count() == 0 {
            Duration::ZERO
        } else {
            s.mean() * scale
        }
    };
    let n_iter = cfg.iterations;
    StagesReport {
        multi_stage: PhaseBreakdown {
            // Warm-up runs also recorded; means are per call, scaled by
            // the number of calls in the measured phase.
            invocation: per_thread("a-invocation", n_iter),
            s3_read: per_thread("a-s3", n_iter),
            compute: per_thread("a-compute", n_iter),
            sync: Duration::ZERO,
        },
        multi_stage_total: a_total,
        single_stage: PhaseBreakdown {
            invocation: per_thread("b-invocation", 1),
            s3_read: per_thread("b-s3", 1),
            compute: per_thread("b-compute", n_iter),
            sync: per_thread("b-sync", n_iter),
        },
        single_stage_total: b_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_with_barrier_beats_multi_stage() {
        let cfg = StagesConfig {
            seed: 4,
            threads: 6,
            iterations: 3,
            input_bytes: 8 * 1024 * 1024,
            compute: Duration::from_millis(500),
        };
        let r = run_stages(&cfg);
        assert!(
            r.single_stage_total < r.multi_stage_total,
            "B {:?} must beat A {:?} (Fig. 7b)",
            r.single_stage_total,
            r.multi_stage_total
        );
        // A pays the S3 read every iteration, B only once.
        assert!(r.multi_stage.s3_read > r.single_stage.s3_read * 2);
        // B's sync (barrier) must be a small fraction of its compute.
        assert!(
            r.single_stage.sync < r.single_stage.compute / 2,
            "sync {:?} vs compute {:?}",
            r.single_stage.sync,
            r.single_stage.compute
        );
    }
}
