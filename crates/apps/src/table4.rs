//! Table 4: lines of code changed to move each application from its
//! single-machine version to Crucial.
//!
//! The `ports/` directory holds side-by-side listings of both versions of
//! every application, mirroring this repository's real implementations
//! (and the paper's Listings 1–2). The diff below counts, like the paper,
//! how many lines of the Crucial version differ from the local one —
//! computed with a longest-common-subsequence line diff, whitespace
//! ignored.

/// One application's portability measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortReport {
    /// Application name.
    pub name: &'static str,
    /// Total lines of the Crucial version (non-empty lines).
    pub total_lines: usize,
    /// Lines changed or added relative to the local version.
    pub changed_lines: usize,
}

impl PortReport {
    /// Fraction of the program that had to change.
    pub fn changed_fraction(&self) -> f64 {
        self.changed_lines as f64 / self.total_lines.max(1) as f64
    }
}

const PORTS: [(&str, &str, &str); 4] = [
    (
        "Monte Carlo",
        include_str!("../ports/monte_carlo_local.rs"),
        include_str!("../ports/monte_carlo_crucial.rs"),
    ),
    (
        "Logistic Regression",
        include_str!("../ports/logreg_local.rs"),
        include_str!("../ports/logreg_crucial.rs"),
    ),
    (
        "k-means",
        include_str!("../ports/kmeans_local.rs"),
        include_str!("../ports/kmeans_crucial.rs"),
    ),
    (
        "Santa Claus problem",
        include_str!("../ports/santa_local.rs"),
        include_str!("../ports/santa_crucial.rs"),
    ),
];

fn significant_lines(src: &str) -> Vec<&str> {
    src.lines().map(str::trim).filter(|l| !l.is_empty()).collect()
}

/// Length of the longest common subsequence of two line sequences.
fn lcs_len(a: &[&str], b: &[&str]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            cur[j + 1] = if x == y { prev[j] + 1 } else { cur[j].max(prev[j + 1]) };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Lines of `ported` not shared (as a subsequence) with `original`: the
/// changed/added lines of the port.
pub fn changed_lines(original: &str, ported: &str) -> usize {
    let a = significant_lines(original);
    let b = significant_lines(ported);
    b.len() - lcs_len(&a, &b)
}

/// Computes Table 4 over the bundled port listings.
pub fn table4() -> Vec<PortReport> {
    PORTS
        .iter()
        .map(|(name, local, crucial_src)| PortReport {
            name,
            total_lines: significant_lines(crucial_src).len(),
            changed_lines: changed_lines(local, crucial_src),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basics() {
        assert_eq!(lcs_len(&["a", "b", "c"], &["a", "c"]), 2);
        assert_eq!(lcs_len(&[], &["a"]), 0);
        assert_eq!(lcs_len(&["x"], &["x"]), 1);
        assert_eq!(changed_lines("a\nb\nc", "a\nB\nc"), 1);
        assert_eq!(changed_lines("a\nb", "a\nb"), 0);
        assert_eq!(changed_lines("", "x\ny"), 2);
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(changed_lines("  foo();  ", "foo();"), 0);
        assert_eq!(changed_lines("foo();\n\n\n", "foo();"), 0);
    }

    #[test]
    fn ports_change_only_a_fraction_of_each_program() {
        let reports = table4();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.total_lines > 20, "{}: suspiciously short listing", r.name);
            assert!(r.changed_lines > 0, "{}: porting must change something", r.name);
            // The paper's Table 4 stays below ~16 lines (< 3 % of each
            // Java program): AspectJ weaves the @Shared fields invisibly.
            // Rust has no aspect weaving — handles, serde derives and
            // explicit error plumbing are real source lines — so our
            // honest bound is "well under two thirds", with the algorithm
            // itself (the LCS-shared part) untouched. EXPERIMENTS.md
            // discusses the gap.
            assert!(
                r.changed_fraction() < 0.65,
                "{}: {}/{} lines changed ({:.0}%)",
                r.name,
                r.changed_lines,
                r.total_lines,
                100.0 * r.changed_fraction()
            );
        }
    }
}
