//! The Santa Claus application replayed under perturbed schedules: the
//! paper's flagship synchronization workload must complete (no deadlock,
//! no lost group) under *every* explored schedule, not just the default
//! FIFO one.

use std::sync::Arc;
use std::time::Duration;

use crucial::explore::{explore_seeds, Check};
use crucial::{Sim, SimTime};
use parking_lot::Mutex;

use crucial::{CrucialConfig, Deployment};
use crucial_apps::santa::{
    entity_loop, register_santa_objects, santa_loop, DsoOps, Kind, SantaConfig,
};

/// A small Santa instance — one reindeer delivery round, one elf group —
/// spawned onto the explorer's simulation (the same shape as
/// `run_santa_dso`, minus the fixed seed and kernel).
fn santa_scenario(sim: &mut Sim) -> Check {
    let cfg = SantaConfig {
        deliveries: 1,
        consults_per_elf: 1,
        delivery_time: Duration::from_millis(5),
        consult_time: Duration::from_millis(2),
        max_work_time: Duration::from_millis(10),
        ..SantaConfig::default()
    };
    let mut ccfg = CrucialConfig::default();
    register_santa_objects(&mut ccfg.registry);
    let dep = Deployment::start(sim, ccfg);
    let handle = dep.dso_handle();
    for r in 0..9 {
        let handle = handle.clone();
        sim.spawn(&format!("reindeer-{r}"), move |ctx| {
            let mut ops = DsoOps::new(handle.connect());
            entity_loop(&mut ops, ctx, Kind::Reindeer, &cfg);
        });
    }
    for e in 0..10 {
        let handle = handle.clone();
        sim.spawn(&format!("elf-{e}"), move |ctx| {
            let mut ops = DsoOps::new(handle.connect());
            entity_loop(&mut ops, ctx, Kind::Elf, &cfg);
        });
    }
    let done: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    let done2 = done.clone();
    sim.spawn("santa", move |ctx| {
        let mut ops = DsoOps::new(handle.connect());
        *done2.lock() = Some(santa_loop(&mut ops, ctx, &cfg));
    });
    Box::new(move || {
        let _keep = dep;
        match done.lock().take() {
            Some(_) => Ok(()),
            None => Err("santa never finished".to_string()),
        }
    })
}

#[test]
fn santa_completes_under_explored_schedules() {
    explore_seeds(2, 4, santa_scenario).expect_clean();
}
