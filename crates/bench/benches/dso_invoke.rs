//! Criterion benchmark of the DSO invocation hot path: N independent reads
//! issued as N sequential round-trips vs. one batched invocation. Real
//! wall-clock time of the whole simulation — batching removes simulated
//! messages *and* real scheduler work (context switches, mailbox churn),
//! so it wins on both clocks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dso::api::AtomicLong;
use dso::{BatchOp, DsoCluster, DsoConfig, ObjectRegistry};
use simcore::Sim;

const COUNTERS: usize = 64;
const ROUNDS: usize = 10;

fn run_sim(batched: bool) -> i64 {
    let mut sim = Sim::new(7);
    let cluster = DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let out = std::sync::Arc::new(parking_lot::Mutex::new(0i64));
    let out2 = out.clone();
    sim.spawn("client", move |ctx| {
        let mut cli = handle.connect();
        let counters: Vec<AtomicLong> =
            (0..COUNTERS).map(|i| AtomicLong::new(&format!("c{i}"))).collect();
        for (i, c) in counters.iter().enumerate() {
            c.set(ctx, &mut cli, i as i64).expect("install");
        }
        let mut acc = 0i64;
        if batched {
            let ops: Vec<BatchOp> = counters.iter().map(|c| c.raw().read_op("get", &())).collect();
            for _ in 0..ROUNDS {
                for r in cli.invoke_batch(ctx, &ops) {
                    let bytes = r.expect("read");
                    let v: i64 = simcore::codec::from_bytes(&bytes).expect("decode");
                    acc += v;
                }
            }
        } else {
            for _ in 0..ROUNDS {
                for c in &counters {
                    acc += c.get(ctx, &mut cli).expect("read");
                }
            }
        }
        *out2.lock() = acc;
    });
    sim.run_until_idle();
    let acc = *out.lock();
    assert_eq!(
        acc,
        (ROUNDS * COUNTERS * (COUNTERS - 1) / 2) as i64,
        "both variants must read the same values"
    );
    acc
}

fn bench_invoke(c: &mut Criterion) {
    c.bench_function("dso_invoke/sequential_64x10", |b| b.iter(|| black_box(run_sim(false))));
    c.bench_function("dso_invoke/batched_64x10", |b| b.iter(|| black_box(run_sim(true))));
}

criterion_group!(benches, bench_invoke);
criterion_main!(benches);
