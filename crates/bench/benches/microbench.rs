//! Criterion micro-benchmarks of the hot data structures: these measure
//! the *real* CPU cost of the reproduction's building blocks (the
//! experiment harness measures *virtual* time instead).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dso::protocol::NodeId;
use dso::skeen::{Action, Skeen};
use dso::{ObjectRef, Ring};

fn bench_ring(c: &mut Criterion) {
    let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
    let ring = Ring::new(&nodes);
    let objs: Vec<ObjectRef> =
        (0..1024).map(|i| ObjectRef::new("AtomicLong", format!("key-{i}"))).collect();
    c.bench_function("ring/placement_rf2", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % objs.len();
            black_box(ring.placement(&objs[i], 2))
        })
    });
    c.bench_function("ring/build_8_nodes", |b| b.iter(|| black_box(Ring::new(&nodes))));
}

fn bench_codec(c: &mut Criterion) {
    let payload: Vec<f64> = (0..2500).map(|i| i as f64 * 0.5).collect();
    c.bench_function("codec/encode_20kb_f64", |b| {
        b.iter(|| black_box(simcore::codec::to_bytes(&payload).expect("encode")))
    });
    let bytes = simcore::codec::to_bytes(&payload).expect("encode");
    c.bench_function("codec/decode_20kb_f64", |b| {
        b.iter(|| black_box(simcore::codec::from_bytes::<Vec<f64>>(&bytes).expect("decode")))
    });
}

fn bench_skeen(c: &mut Criterion) {
    // One full rf=2 multicast round, including delivery.
    c.bench_function("skeen/rf2_round", |b| {
        b.iter_batched(
            || (Skeen::<u64>::new(NodeId(0)), Skeen::<u64>::new(NodeId(1))),
            |(mut a, mut bn)| {
                let group = vec![NodeId(0), NodeId(1)];
                let (_, actions) = a.multicast(group, 42);
                let mut queue: Vec<(NodeId, dso::skeen::SkeenMsg<u64>)> = actions
                    .into_iter()
                    .filter_map(|x| match x {
                        Action::Send { to, msg } => Some((to, msg)),
                        Action::Deliver { .. } => None,
                    })
                    .collect();
                let mut delivered = 0;
                while let Some((to, msg)) = queue.pop() {
                    let from = NodeId(1 - to.0); // two nodes only
                    let node = if to == NodeId(0) { &mut a } else { &mut bn };
                    for act in node.handle(from, msg) {
                        match act {
                            Action::Send { to, msg } => queue.push((to, msg)),
                            Action::Deliver { .. } => delivered += 1,
                        }
                    }
                }
                black_box(delivered)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_kmeans_math(c: &mut Criterion) {
    let part = crucial_ml::datagen::kmeans_partition(1, 0, 500, 100, 25);
    let centroids = crucial_ml::kmeans::initial_centroids(1, 25, 100);
    c.bench_function("kmeans/assign_500x100_k25", |b| {
        b.iter(|| black_box(crucial_ml::kmeans::assign_partials(&part.points, &centroids)))
    });
}

fn bench_sim_kernel(c: &mut Criterion) {
    // Real cost of one simulated RPC round trip (two context switches per
    // blocking operation).
    c.bench_function("simcore/rpc_round_trips_x100", |b| {
        b.iter(|| {
            let mut sim = simcore::Sim::new(1);
            let server = sim.mailbox("server");
            sim.spawn_daemon("server", move |ctx| loop {
                let req = ctx.recv(server).take::<simcore::Request>();
                let (reply_to, n) = req.take::<u64>();
                ctx.reply(reply_to, n + 1, std::time::Duration::from_micros(10));
            });
            sim.spawn("client", move |ctx| {
                for i in 0..100u64 {
                    let _: u64 = ctx.call(server, i, std::time::Duration::from_micros(10));
                }
            });
            sim.run_until_idle();
        })
    });
}

criterion_group!(
    benches,
    bench_ring,
    bench_codec,
    bench_skeen,
    bench_kmeans_math,
    bench_sim_kernel
);
criterion_main!(benches);
