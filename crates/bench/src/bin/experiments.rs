//! The experiment runner: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! experiments <target> [--paper]
//!
//! targets: table2 fig2a fig2b fig3 fig4 fig5 table3 fig6 fig7a fig7b
//!          fig7c fig8 table4 ablate-rf ablate-workers ablate-barrier
//!          ablate-read-path consistency-ablate trace-pi trace-kmeans
//!          elastic coldstart recovery kernel-bench all
//! ```
//!
//! `--paper` switches to the paper's full parameters (much slower).

use bench::experiments::{
    ablate, coldstart, consistency, elastic, kernelbench, micro, ml, readpath, recovery, state,
    sync, traced, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") { Scale::Paper } else { Scale::Quick };
    let target = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| {
        eprintln!("usage: experiments <target> [--paper]");
        eprintln!(
            "targets: table2 fig2a fig2b fig3 fig4 fig5 table3 fig6 fig7a \
                 fig7b fig7c fig8 table4 ablate-rf ablate-workers ablate-barrier \
                 ablate-read-path consistency-ablate trace-pi trace-kmeans \
                 elastic coldstart recovery kernel-bench all"
        );
        std::process::exit(2);
    });
    run(&target, scale);
}

fn run(target: &str, scale: Scale) {
    // simlint: allow(wall-clock, reason = "operator-facing host runtime of the bench driver, not simulated time")
    let t0 = std::time::Instant::now();
    match target {
        "table2" => micro::table2(scale).0.print(),
        "fig2a" => micro::fig2a(scale).0.print(),
        "fig2b" => micro::fig2b(scale).0.print(),
        "fig3" => ml::fig3(scale).0.print(),
        "fig4" => {
            let (t, r) = ml::fig4(scale);
            t.print();
            ml::fig4b_table(&r).print();
        }
        "fig5" => ml::fig5(scale).0.print(),
        "table3" => ml::table3(scale).print(),
        "fig6" => sync::fig6(scale).0.print(),
        "fig7a" => sync::fig7a(scale).0.print(),
        "fig7b" => sync::fig7b(scale).print(),
        "fig7c" => sync::fig7c(scale).0.print(),
        "fig8" => {
            let (t, series) = state::fig8(scale);
            t.print();
            println!("\nper-second series (t, inferences/s):");
            for (s, n) in &series {
                println!("  {s:>4}s  {n}");
            }
        }
        "table4" => state::table4().print(),
        "ablate-rf" => ablate::ablate_rf(scale).0.print(),
        "ablate-workers" => ablate::ablate_workers(scale).0.print(),
        "ablate-barrier" => ablate::ablate_barrier(scale).0.print(),
        "ablate-read-path" => readpath::ablate_read_path(scale).0.print(),
        "consistency-ablate" => consistency::consistency_ablate(scale).0.print(),
        "trace-pi" => traced::trace_pi(scale),
        "trace-kmeans" => traced::trace_kmeans(scale),
        "kernel-bench" => kernelbench::kernel_bench(scale).0.print(),
        "coldstart" => coldstart::coldstart(scale).0.print(),
        "recovery" => recovery::recovery(scale).0.print(),
        "elastic" => {
            let (t, auto, _) = elastic::elastic(scale);
            t.print();
            println!("\ncontrol-plane decisions:");
            for line in auto.decision_log.lines() {
                println!("  {line}");
            }
        }
        "all" => {
            for t in [
                "table2",
                "fig2a",
                "fig2b",
                "fig3",
                "fig4",
                "fig5",
                "table3",
                "fig6",
                "fig7a",
                "fig7b",
                "fig7c",
                "fig8",
                "table4",
                "ablate-rf",
                "ablate-workers",
                "ablate-barrier",
                "ablate-read-path",
            ] {
                run(t, scale);
            }
            return;
        }
        other => {
            eprintln!("unknown target: {other}");
            std::process::exit(2);
        }
    }
    eprintln!("[{target} finished in {:.1?}]", t0.elapsed());
}
