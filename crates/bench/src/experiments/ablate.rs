//! Ablations beyond the paper: the design choices DESIGN.md calls out.
//!
//! * `ablate-rf` — replication-factor sweep: what each extra replica costs
//!   in latency and complex-op throughput.
//! * `ablate-workers` — disjoint-access parallelism: complex-op throughput
//!   vs. the server worker-pool width (the mechanism behind Fig. 2a).
//! * `ablate-barrier` — push-based (parked call) barrier vs. a polling
//!   barrier built on the same DSO counter.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::{MetricsRegistry, Sim};

use dso::api::{Arithmetic, AtomicLong, CyclicBarrier};
use dso::{DsoCluster, DsoConfig, ObjectRegistry};

use super::Scale;
use crate::report::{fmt_dur, Table};

/// Sweeps the replication factor on a 3-node tier: per-op latency and
/// complex-op throughput.
pub fn ablate_rf(scale: Scale) -> (Table, Vec<(u8, Duration, f64)>) {
    let run = scale.pick(Duration::from_millis(400), Duration::from_secs(5));
    let mut rows = Vec::new();
    for rf in [1u8, 2, 3] {
        // Latency: sequential updates.
        let mut sim = Sim::new(900 + rf as u64);
        let reg = MetricsRegistry::new();
        sim.set_metrics(&reg);
        let cluster =
            DsoCluster::start(&sim, 3, DsoConfig::default(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        {
            let handle = handle.clone();
            sim.spawn("probe", move |ctx| {
                let mut cli = handle.connect();
                let c = AtomicLong::persistent("c", 0, rf);
                c.get(ctx, &mut cli).expect("warm");
                for _ in 0..200 {
                    let t0 = ctx.now();
                    c.add_and_get(ctx, &mut cli, 1).expect("dso");
                    ctx.metric_record("bench.update", ctx.now() - t0);
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        let latency = reg.histogram("bench.update").mean();

        // Throughput: 60 closed-loop threads on 120 objects, complex op.
        let mut sim = Sim::new(910 + rf as u64);
        let cluster =
            DsoCluster::start(&sim, 3, DsoConfig::default(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let count = Arc::new(Mutex::new(0u64));
        let deadline = simcore::SimTime::ZERO + Duration::from_secs(1) + run;
        for t in 0..60 {
            let handle = handle.clone();
            let count = count.clone();
            sim.spawn(&format!("t{t}"), move |ctx| {
                use rand::RngExt;
                let mut cli = handle.connect();
                let start = simcore::SimTime::ZERO + Duration::from_secs(1);
                loop {
                    if ctx.now() >= deadline {
                        break;
                    }
                    let i: u32 = ctx.rng().random_range(0..120);
                    let obj = if rf > 1 {
                        Arithmetic::persistent(&format!("o{i}"), 1.0, rf)
                    } else {
                        Arithmetic::new(&format!("o{i}"))
                    };
                    if obj.mul_n(ctx, &mut cli, 1.0000001, 10_000).is_ok()
                        && ctx.now() >= start
                        && ctx.now() < deadline
                    {
                        *count.lock() += 1;
                    }
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        let total = *count.lock();
        let throughput = total as f64 / run.as_secs_f64();
        rows.push((rf, latency, throughput));
    }
    let mut t = Table::new(
        "Ablation — replication factor (3 nodes)",
        &["rf", "Update latency", "Complex-op throughput (ops/s)"],
    );
    for (rf, lat, thr) in &rows {
        t.row(&[rf.to_string(), fmt_dur(*lat), format!("{thr:.0}")]);
    }
    (t, rows)
}

/// Sweeps the server worker-pool width: disjoint-access parallelism in
/// isolation.
pub fn ablate_workers(scale: Scale) -> (Table, Vec<(u32, f64)>) {
    let run = scale.pick(Duration::from_millis(400), Duration::from_secs(5));
    let mut rows = Vec::new();
    for workers in [1u32, 2, 4, 8, 16] {
        let mut sim = Sim::new(920 + workers as u64);
        let cfg = DsoConfig { workers_per_node: workers, ..DsoConfig::default() };
        let cluster = DsoCluster::start(&sim, 1, cfg, ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let count = Arc::new(Mutex::new(0u64));
        let deadline = simcore::SimTime::ZERO + Duration::from_secs(1) + run;
        for t in 0..60 {
            let handle = handle.clone();
            let count = count.clone();
            sim.spawn(&format!("t{t}"), move |ctx| {
                use rand::RngExt;
                let mut cli = handle.connect();
                let start = simcore::SimTime::ZERO + Duration::from_secs(1);
                loop {
                    if ctx.now() >= deadline {
                        break;
                    }
                    let i: u32 = ctx.rng().random_range(0..120);
                    let obj = Arithmetic::new(&format!("o{i}"));
                    if obj.mul_n(ctx, &mut cli, 1.0000001, 10_000).is_ok()
                        && ctx.now() >= start
                        && ctx.now() < deadline
                    {
                        *count.lock() += 1;
                    }
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        let total = *count.lock();
        rows.push((workers, total as f64 / run.as_secs_f64()));
    }
    let mut t = Table::new(
        "Ablation — worker-pool width (1 node, complex ops)",
        &["Workers", "Throughput (ops/s)", "Scaling"],
    );
    let base = rows[0].1;
    for (w, thr) in &rows {
        t.row(&[w.to_string(), format!("{thr:.0}"), format!("{:.1}x", thr / base)]);
    }
    (t, rows)
}

/// Push-based barrier (parked calls) vs. a polling barrier over the same
/// DSO counter: the mechanism behind Figs. 6/7a.
pub fn ablate_barrier(scale: Scale) -> (Table, (Duration, Duration)) {
    let threads: u32 = scale.pick(40, 80);
    let rounds = 3;
    // Push: the real CyclicBarrier.
    let push = {
        let mut sim = Sim::new(930);
        let reg = MetricsRegistry::new();
        sim.set_metrics(&reg);
        let cluster =
            DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        for i in 0..threads {
            let handle = handle.clone();
            sim.spawn(&format!("t{i}"), move |ctx| {
                let mut cli = handle.connect();
                let b = CyclicBarrier::new("b", threads);
                for _ in 0..rounds {
                    ctx.sleep(Duration::from_millis(300));
                    let t0 = ctx.now();
                    b.wait(ctx, &mut cli).expect("dso");
                    ctx.metric_record("bench.push_wait", ctx.now() - t0);
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        reg.histogram("bench.push_wait").mean()
    };
    // Poll: arrive by incrementing a counter, then poll until a round's
    // quota is reached.
    let poll = {
        let mut sim = Sim::new(931);
        let reg = MetricsRegistry::new();
        sim.set_metrics(&reg);
        let cluster =
            DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        for i in 0..threads {
            let handle = handle.clone();
            sim.spawn(&format!("t{i}"), move |ctx| {
                let mut cli = handle.connect();
                let c = AtomicLong::new("arrivals");
                for round in 1..=rounds {
                    ctx.sleep(Duration::from_millis(300));
                    let t0 = ctx.now();
                    c.add_and_get(ctx, &mut cli, 1).expect("dso");
                    let quota = (threads as i64) * round;
                    loop {
                        if c.get(ctx, &mut cli).expect("dso") >= quota {
                            break;
                        }
                        ctx.sleep(Duration::from_millis(100));
                    }
                    ctx.metric_record("bench.poll_wait", ctx.now() - t0);
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        reg.histogram("bench.poll_wait").mean()
    };
    let mut t = Table::new(
        "Ablation — barrier implementation (push vs poll)",
        &["Implementation", "Avg wait", "Ratio"],
    );
    t.row(&["push (parked call)".to_string(), fmt_dur(push), "1.0x".to_string()]);
    t.row(&[
        "poll (100 ms interval)".to_string(),
        fmt_dur(poll),
        format!("{:.1}x", poll.as_secs_f64() / push.as_secs_f64().max(1e-9)),
    ]);
    (t, (push, poll))
}
