//! `coldstart` — the cold-start tier comparison: classic provisioning vs
//! snapshot restore, each carried through the full elastic 3× ramp, plus
//! the fork fan-out microbench on a warm parent.
//!
//! The two elastic runs differ only in [`FaasConfig::cold_start_policy`]:
//! the classic run pays ~1.5 s provisioning boots (and its control plane
//! buys provisioned-concurrency floors to hide them), the snapshot run
//! pays ~200 ms dirty-page restores (and its control plane, seeing the
//! penalty under its threshold, buys none). The fork microbench forks a
//! warm parent into 8 CoW branches per round, so the branch latency is
//! the pure 10–50 ms fork cost. Start-latency CDFs come straight from
//! the `faas.start.{classic,restore,fork}` histograms; the cost table
//! carries execution, idle-pool, and snapshot-storage GB-seconds. The
//! headline numbers land in `BENCH_coldstart.json`, where `benchcheck`
//! holds the documented claims: a snapshot restore collapses the classic
//! cold start by ≥ 4×, and a fork undercuts the restore by ≥ 2×.

use std::time::Duration;

use simcore::{LatencyStats, MetricsRegistry, Sim};

use faas::{
    spawn_platform, ColdStartPolicy, FaasConfig, FnCtx, FunctionRegistry, SnapshotConfig,
    FULL_VCPU_MB,
};

use crucial_ml::elastic::{run_elastic, ElasticConfig, ElasticReport};

use super::Scale;
use crate::report::Table;

/// One tier's headline numbers, as written to `BENCH_coldstart.json`.
#[derive(Clone, Debug)]
pub struct ModeStats {
    /// Tier name: `classic`, `snapshot`, or `fork`.
    pub name: &'static str,
    /// Starts of this kind observed (CDF sample count).
    pub starts: usize,
    /// Mean start latency, milliseconds.
    pub mean_start_ms: f64,
    /// Median start latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile start latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile start latency, milliseconds.
    pub p99_ms: f64,
    /// Start-latency CDF: milliseconds at p10, p20, …, p100.
    pub cdf_ms: Vec<f64>,
    /// FaaS execution GB-seconds of the run that produced the starts.
    pub gb_seconds: f64,
    /// Idle-pool GB-seconds (warm floors and retired containers).
    pub idle_gb_seconds: f64,
    /// Snapshot-storage GB-seconds held (zero under classic).
    pub snapshot_gb_seconds: f64,
    /// FaaS dollar cost (execution + requests + idle + snapshot storage).
    pub faas_cost_usd: f64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn mode_stats(
    name: &'static str,
    hist: &LatencyStats,
    gb_seconds: f64,
    idle_gb_seconds: f64,
    snapshot_gb_seconds: f64,
    faas_cost_usd: f64,
) -> ModeStats {
    ModeStats {
        name,
        starts: hist.count(),
        mean_start_ms: ms(hist.mean()),
        p50_ms: ms(hist.percentile(50.0)),
        p90_ms: ms(hist.percentile(90.0)),
        p99_ms: ms(hist.percentile(99.0)),
        cdf_ms: (1..=10).map(|i| ms(hist.percentile(i as f64 * 10.0))).collect(),
        gb_seconds,
        idle_gb_seconds,
        snapshot_gb_seconds,
        faas_cost_usd,
    }
}

/// The platform under the snapshot tier: default cost model
/// (120 ms base + 10 µs/dirtied page ≈ 210 ms at one full vCPU).
fn snapshot_faas() -> FaasConfig {
    FaasConfig::builder()
        .cold_start_policy(ColdStartPolicy::SnapshotRestore)
        .snapshot(SnapshotConfig::default())
        .build()
        .expect("snapshot tier config is valid")
}

fn elastic_cfg(scale: Scale) -> ElasticConfig {
    ElasticConfig {
        phase: scale.pick(Duration::from_secs(15), Duration::from_secs(60)),
        ..ElasticConfig::default()
    }
}

/// The fork fan-out microbench: one warm parent forked into `fanout`
/// branches per round. Returns the run's metrics and the platform's
/// billing-derived cost columns.
fn fork_bench(scale: Scale) -> (MetricsRegistry, f64, f64, f64, f64) {
    let rounds = scale.pick(15u32, 60u32);
    let fanout = 8u8;
    let mut sim = Sim::new(97);
    let metrics = MetricsRegistry::new();
    sim.set_metrics(&metrics);
    let reg = FunctionRegistry::new();
    reg.register_with_policy(
        "burst",
        FULL_VCPU_MB,
        ColdStartPolicy::Fork,
        |env: &mut FnCtx<'_>, p: Vec<u8>| {
            env.compute(Duration::from_millis(1));
            Ok(p)
        },
    );
    let faas = spawn_platform(&sim, snapshot_faas(), reg);
    let f = faas.clone();
    sim.spawn("fork-driver", move |ctx| {
        // Warm the parent once, off the fork path, so every measured
        // branch pays only the fork itself.
        f.invoke(ctx, "burst", vec![0]).expect("warmup invoke");
        for r in 0..rounds {
            let payloads: Vec<Vec<u8>> = (0..fanout).map(|i| vec![r as u8, i]).collect();
            let results = f.invoke_forked(ctx, "burst", payloads);
            assert!(results.iter().all(Result::is_ok), "round {r}: {results:?}");
            ctx.sleep(Duration::from_millis(250));
        }
    });
    sim.run_until_idle().expect_quiescent();
    let expected = u64::from(rounds) * u64::from(fanout);
    assert_eq!(
        metrics.counter_value("faas.start.fork"),
        expected,
        "every branch must be a fork start"
    );
    let billing = faas.billing();
    let end = simcore::SimTime::ZERO + Duration::from_millis(260) * rounds;
    let pricing = FaasConfig::default().pricing;
    let snapshot_gb_s = billing.snapshot_gb_seconds(end);
    let cost = billing.cost(pricing) + billing.snapshot_cost(pricing, end);
    (metrics, billing.gb_seconds(), billing.idle_gb_seconds().max(0.0), snapshot_gb_s, cost)
}

/// Runs the three-tier comparison and renders the table. Returns the
/// per-mode stats (classic, snapshot, fork) for tests and the JSON.
pub fn coldstart(scale: Scale) -> (Table, Vec<ModeStats>) {
    let cfg = elastic_cfg(scale);
    let classic = run_elastic(&cfg);
    let snap = run_elastic(&ElasticConfig { faas: snapshot_faas(), ..cfg.clone() });
    let (fork_metrics, fork_gb, fork_idle, fork_snap_gb, fork_cost) = fork_bench(scale);

    // Acceptance checks (ci runs this target as the coldstart smoke).
    let classic_hist = classic.metrics.histogram("faas.start.classic");
    let restore_hist = snap.metrics.histogram("faas.start.restore");
    let fork_hist = fork_metrics.histogram("faas.start.fork");
    assert!(classic_hist.count() > 0, "classic run must pay classic starts");
    assert_eq!(
        classic.metrics.counter_value("faas.start.restore"),
        0,
        "classic run must never restore"
    );
    assert!(restore_hist.count() > 0, "snapshot run's ramp must pay restores");
    assert!(snap.snapshot_gb_seconds > 0.0, "snapshot storage must be billed");
    // The control-plane side of the trade: expensive classic starts buy
    // provisioned floors, cheap restores do not.
    assert!(
        classic.decision_log.contains("prewarm"),
        "classic starts must buy floors:\n{}",
        classic.decision_log
    );
    assert!(
        !snap.decision_log.contains("prewarm"),
        "restores under the floor threshold must not buy floors:\n{}",
        snap.decision_log
    );
    let (c_mean, r_mean, f_mean) =
        (ms(classic_hist.mean()), ms(restore_hist.mean()), ms(fork_hist.mean()));
    assert!(
        r_mean < c_mean * 0.25,
        "restore must collapse the classic start 4x: {r_mean:.1}ms vs {c_mean:.1}ms"
    );
    assert!(
        f_mean < r_mean * 0.5,
        "fork must undercut the restore 2x: {f_mean:.1}ms vs {r_mean:.1}ms"
    );

    let elastic_mode = |name: &'static str, hist: &LatencyStats, r: &ElasticReport| {
        mode_stats(
            name,
            hist,
            r.gb_seconds,
            r.idle_gb_seconds,
            r.snapshot_gb_seconds,
            r.faas_cost_usd,
        )
    };
    let modes = vec![
        elastic_mode("classic", &classic_hist, &classic),
        elastic_mode("snapshot", &restore_hist, &snap),
        mode_stats("fork", &fork_hist, fork_gb, fork_idle, fork_snap_gb, fork_cost),
    ];

    let mut t = Table::new(
        "coldstart — start tiers: classic vs snapshot restore vs fork",
        &["Metric", "classic", "snapshot", "fork"],
    );
    let row = |t: &mut Table, label: &str, f: &dyn Fn(&ModeStats) -> String| {
        let cells: Vec<String> =
            std::iter::once(label.to_string()).chain(modes.iter().map(f)).collect();
        t.row(&cells);
    };
    row(&mut t, "starts", &|m| m.starts.to_string());
    row(&mut t, "mean start (ms)", &|m| format!("{:.1}", m.mean_start_ms));
    row(&mut t, "p50 / p90 / p99 (ms)", &|m| {
        format!("{:.0} / {:.0} / {:.0}", m.p50_ms, m.p90_ms, m.p99_ms)
    });
    row(&mut t, "GB-seconds (exec + idle)", &|m| {
        format!("{:.1} + {:.1}", m.gb_seconds, m.idle_gb_seconds)
    });
    row(&mut t, "snapshot GB-seconds", &|m| format!("{:.2}", m.snapshot_gb_seconds));
    row(&mut t, "FaaS cost", &|m| format!("${:.5}", m.faas_cost_usd));

    if let Err(e) = write_outputs(&cfg, &modes) {
        eprintln!("could not write coldstart outputs: {e}");
    }
    (t, modes)
}

fn write_outputs(cfg: &ElasticConfig, modes: &[ModeStats]) -> std::io::Result<()> {
    let mode_json = |m: &ModeStats| {
        let cdf = m.cdf_ms.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>().join(", ");
        format!(
            "{{\"name\": \"{}\", \"starts\": {}, \"mean_start_ms\": {:.3}, \
             \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"cdf_ms\": [{cdf}], \
             \"gb_seconds\": {:.3}, \"idle_gb_seconds\": {:.3}, \
             \"snapshot_gb_seconds\": {:.3}, \"faas_cost_usd\": {:.6}}}",
            m.name,
            m.starts,
            m.mean_start_ms,
            m.p50_ms,
            m.p90_ms,
            m.p99_ms,
            m.gb_seconds,
            m.idle_gb_seconds,
            m.snapshot_gb_seconds,
            m.faas_cost_usd,
        )
    };
    let body = modes.iter().map(mode_json).collect::<Vec<_>>().join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"coldstart\",\n  \"phase_secs\": {},\n  \"modes\": [\n    {body}\n  ]\n}}\n",
        cfg.phase.as_secs(),
    );
    std::fs::write("BENCH_coldstart.json", &json)?;
    println!("wrote BENCH_coldstart.json");
    Ok(())
}
