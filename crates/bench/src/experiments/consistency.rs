//! `consistency-ablate` — the consistency spectrum × cache-tier matrix on
//! a hot, fully replicated, read-mostly workload served through *churning*
//! clients: every simulated invocation connects a fresh `DsoClient` (the
//! FaaS reality — a container's client dies with the invocation), does a
//! handful of reads, and drops it. Client-side warmth therefore dies every
//! iteration; the host-shared [`NodeCache`] is the only tier that survives
//! churn, which is exactly the ablation this table isolates.
//!
//! Results go to `BENCH_consistency.json`; `simcheck`'s `benchcheck` bin
//! gates CI on it — each row must show forward progress and the
//! `node_cache` row must beat the PR-1 `client_cache` baseline.

use std::sync::Arc;
use std::time::Duration;

use simcore::{MetricsRegistry, Sim};

use dso::api::AtomicByteArray;
use dso::{ConsistencyMode, DsoCluster, DsoConfig, NodeCache, ObjectRegistry};

use super::Scale;
use crate::report::{fmt_dur, Table};

/// One cell of the mode × cache matrix.
#[derive(Clone, Debug)]
pub struct ConsistencyRow {
    /// Section name (`<mode>/<cache>`), the key `benchcheck` gates on.
    pub name: String,
    /// Consistency-mode label.
    pub mode: &'static str,
    /// Cache-tier label: `none`, `client_cache`, or `node_cache`.
    pub cache: &'static str,
    /// Completed reads per second over the measurement window.
    pub reads_per_sec: f64,
    /// Mean read latency.
    pub read_latency: Duration,
}

// The readpath ablation's hot model, under churn: two 1 KB rf=3 objects,
// 40 invocation loops, 8 loops per simulated host.
const OBJECTS: u32 = 2;
const PAYLOAD: usize = 1024;
const READERS: u32 = 40;
const READERS_PER_HOST: u32 = 8;
const READS_PER_INVOCATION: u32 = 8;
const RF: u8 = 3;
const LEASE: Duration = Duration::from_millis(2);

/// Which cache tiers a row enables.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum CacheTier {
    None,
    /// PR-1 baseline: the per-client cache with a short lease. Dies with
    /// every churned client.
    Client,
    /// The client cache *plus* the host-shared node cache (as the
    /// deployment layer wires co-located containers).
    Node,
}

impl CacheTier {
    fn label(self) -> &'static str {
        match self {
            CacheTier::None => "none",
            CacheTier::Client => "client_cache",
            CacheTier::Node => "node_cache",
        }
    }
}

fn run_cell(seed: u64, scale: Scale, cfg: DsoConfig, tier: CacheTier) -> (f64, Duration) {
    let run = scale.pick(Duration::from_millis(400), Duration::from_secs(5));
    let mut sim = Sim::new(seed);
    let reg = MetricsRegistry::new();
    sim.set_metrics(&reg);
    // One worker per node: the storage tier is the bottleneck, so cache
    // hits (which never reach it) translate directly into throughput.
    let cfg = DsoConfig { workers_per_node: 1, ..cfg };
    let cluster = DsoCluster::start(&sim, 3, cfg, ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let start = simcore::SimTime::ZERO + Duration::from_secs(1);
    let deadline = start + run;
    // Writer: installs the model, then keeps mutating one object every
    // 2 ms — read-mostly, not read-only.
    {
        let handle = handle.clone();
        sim.spawn("writer", move |ctx| {
            use rand::RngExt;
            let mut cli = handle.connect();
            let payload = vec![7u8; PAYLOAD];
            for i in 0..OBJECTS {
                let o = AtomicByteArray::persistent(&format!("m{i}"), Vec::new(), RF);
                o.set(ctx, &mut cli, &payload).expect("install");
            }
            while ctx.now() < deadline {
                ctx.sleep(Duration::from_millis(2));
                let i: u32 = ctx.rng().random_range(0..OBJECTS);
                let o = AtomicByteArray::persistent(&format!("m{i}"), Vec::new(), RF);
                o.set(ctx, &mut cli, &payload).expect("update");
            }
        });
    }
    // One shared cache per simulated host, as `containers_per_host` packs
    // them in the FaaS tier.
    let hosts: Vec<Arc<NodeCache>> =
        (0..READERS.div_ceil(READERS_PER_HOST)).map(|_| Arc::new(NodeCache::new())).collect();
    for t in 0..READERS {
        let handle = handle.clone();
        let host_cache = hosts[(t / READERS_PER_HOST) as usize].clone();
        sim.spawn(&format!("inv{t}"), move |ctx| {
            use rand::RngExt;
            // Let the writer install the model first.
            ctx.sleep(Duration::from_millis(200));
            let objs: Vec<AtomicByteArray> = (0..OBJECTS)
                .map(|i| AtomicByteArray::persistent(&format!("m{i}"), Vec::new(), RF))
                .collect();
            while ctx.now() < deadline {
                // One invocation: a fresh client (container-lifetime
                // state), a burst of reads, then the client dies.
                let mut cli = match tier {
                    CacheTier::Node => handle.connect_with_node_cache(host_cache.clone()),
                    _ => handle.connect(),
                };
                for _ in 0..READS_PER_INVOCATION {
                    let i = ctx.rng().random_range(0..OBJECTS) as usize;
                    let t0 = ctx.now();
                    if objs[i].get(ctx, &mut cli).is_ok() && t0 >= start && ctx.now() < deadline {
                        ctx.metric_incr("bench.reads");
                        ctx.metric_record("bench.read_latency", ctx.now() - t0);
                    }
                    // Local work consuming each read.
                    ctx.sleep(Duration::from_micros(20));
                }
                // Invocation gap (dispatch + billing tail).
                ctx.sleep(Duration::from_micros(100));
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    let total = reg.counter_value("bench.reads");
    (total as f64 / run.as_secs_f64(), reg.histogram("bench.read_latency").mean())
}

/// The matrix. Invalid combinations of the config space (a lease without
/// the cache, `BoundedStaleness` without `read_cache`) are simply not
/// rows — the builder rejects them, which `dso`'s config tests pin.
fn cells() -> Vec<(&'static str, CacheTier, DsoConfig)> {
    let b = DsoConfig::builder;
    vec![
        ("linearizable", CacheTier::None, b().build().expect("valid")),
        (
            "replica-reads",
            CacheTier::None,
            b().consistency(ConsistencyMode::ReplicaReads).build().expect("valid"),
        ),
        (
            "causal",
            CacheTier::None,
            b().consistency(ConsistencyMode::Causal).build().expect("valid"),
        ),
        (
            "replica-reads",
            CacheTier::Client,
            b().consistency(ConsistencyMode::ReplicaReads)
                .read_cache(true)
                .cache_lease(LEASE)
                .build()
                .expect("valid"),
        ),
        (
            "bounded-staleness",
            CacheTier::Client,
            b().consistency(ConsistencyMode::BoundedStaleness)
                .staleness_bound(LEASE)
                .read_cache(true)
                .build()
                .expect("valid"),
        ),
        (
            "replica-reads",
            CacheTier::Node,
            b().consistency(ConsistencyMode::ReplicaReads)
                .read_cache(true)
                .cache_lease(LEASE)
                .node_cache(true)
                .build()
                .expect("valid"),
        ),
    ]
}

/// Runs the mode × cache matrix, writes `BENCH_consistency.json`.
pub fn consistency_ablate(scale: Scale) -> (Table, Vec<ConsistencyRow>) {
    let mut rows = Vec::new();
    for (i, (mode, tier, cfg)) in cells().into_iter().enumerate() {
        let (reads_per_sec, read_latency) = run_cell(960 + i as u64, scale, cfg, tier);
        rows.push(ConsistencyRow {
            name: format!("{mode}/{}", tier.label()),
            mode,
            cache: tier.label(),
            reads_per_sec,
            read_latency,
        });
    }
    let mut t = Table::new(
        "Ablation — consistency × cache tier (3 nodes, hot rf = 3 model, churning clients)",
        &["Mode", "Cache", "Reads/s", "Mean read latency", "Speedup"],
    );
    let base = rows[0].reads_per_sec;
    for r in &rows {
        t.row(&[
            r.mode.to_string(),
            r.cache.to_string(),
            format!("{:.0}", r.reads_per_sec),
            fmt_dur(r.read_latency),
            format!("{:.2}x", r.reads_per_sec / base.max(1e-9)),
        ]);
    }
    if let Err(e) = write_json(scale, &rows) {
        eprintln!("could not write BENCH_consistency.json: {e}");
    }
    (t, rows)
}

fn write_json(scale: Scale, rows: &[ConsistencyRow]) -> std::io::Result<()> {
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"mode\": \"{}\", \"cache\": \"{}\", \
                 \"reads_per_s\": {:.1}, \"mean_read_latency_s\": {:.9}}}",
                r.name,
                r.mode,
                r.cache,
                r.reads_per_sec,
                r.read_latency.as_secs_f64(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"consistency\",\n  \"scale\": \"{}\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        },
        body,
    );
    std::fs::write("BENCH_consistency.json", &json)?;
    println!("wrote BENCH_consistency.json");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_cache_beats_the_churned_client_cache() {
        let (_, rows) = consistency_ablate(Scale::Quick);
        let rate = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("row {name}"))
                .reads_per_sec
        };
        let lin = rate("linearizable/none");
        let replica = rate("replica-reads/none");
        let client = rate("replica-reads/client_cache");
        let node = rate("replica-reads/node_cache");
        assert!(
            replica > lin * 1.2,
            "replica reads must relieve the primaries: lin={lin:.0} replica={replica:.0}"
        );
        assert!(
            node > client * 1.2,
            "the host-shared cache must survive client churn that kills \
             the per-client cache: client={client:.0} node={node:.0}"
        );
        for r in &rows {
            assert!(r.reads_per_sec > 0.0, "{} made no progress", r.name);
        }
    }
}
