//! `elastic` — the control-plane elasticity experiment: a 3× traffic ramp
//! served by an autoscaled DSO fleet vs the same fleet held static.
//!
//! Runs [`crucial_ml::elastic::run_elastic`] twice (autoscale on/off),
//! prints the comparison table, exports the autoscaled run's trace to
//! `results/trace-elastic.{chrome.json,jsonl}` (reconcile/scale/drain
//! spans and shed instants included), and records the headline numbers in
//! `BENCH_elastic.json`. The run self-checks the acceptance criteria: the
//! autoscaler must scale out and drain at least once, track ≥ 90% of
//! offered load through the 3× phase, and the admission controller must
//! have shed under the ramp.

use std::time::Duration;

use simcore::Tracer;

use crucial_ml::elastic::{run_elastic, run_elastic_with, ElasticConfig, ElasticReport};

use super::Scale;
use crate::report::Table;

fn config(scale: Scale) -> ElasticConfig {
    ElasticConfig {
        phase: scale.pick(Duration::from_secs(15), Duration::from_secs(60)),
        ..ElasticConfig::default()
    }
}

fn usd(v: f64) -> String {
    format!("${v:.5}")
}

/// Runs the comparison and renders the table. Returns the reports for
/// tests.
pub fn elastic(scale: Scale) -> (Table, ElasticReport, ElasticReport) {
    let cfg = config(scale);
    let tracer = Tracer::new();
    let t2 = tracer.clone();
    let auto = run_elastic_with(&cfg, move |sim| sim.set_tracer(&t2));
    let stat = run_elastic(&ElasticConfig { autoscale: false, ..cfg.clone() });

    // Acceptance checks (ci runs this target as the elastic smoke).
    let auto_track = auto.peak_tracking(&cfg);
    let stat_track = stat.peak_tracking(&cfg);
    assert!(auto.scale_outs >= 1, "ramp must trigger a scale-out:\n{}", auto.decision_log);
    assert!(auto.drains >= 1, "ramp-down must trigger a drain:\n{}", auto.decision_log);
    assert!(
        auto_track >= 0.9,
        "autoscaled fleet must track >=90% of offered load in the 3x phase, got {auto_track:.2}"
    );
    assert!(auto.shed > 0, "the ramp must trip admission control before the scale-out lands");
    let spans = tracer.spans();
    for name in ["ctl.reconcile", "ctl.scale_out", "ctl.drain", "dso.shed"] {
        assert!(spans.iter().any(|s| s.name == name), "span {name} missing from the trace");
    }

    let phase = cfg.phase.as_secs();
    let mut t = Table::new(
        "elastic — 3x ramp: autoscaled vs static DSO fleet",
        &["Metric", "Autoscaled", "Static"],
    );
    t.row(&[
        "offered 1x / 3x (inf/s)".into(),
        format!("{:.0} / {:.0}", auto.offered.0, auto.offered.1),
        format!("{:.0} / {:.0}", stat.offered.0, stat.offered.1),
    ]);
    t.row(&[
        "delivered, 3x tail (inf/s)".into(),
        format!("{:.0}", auto.mean_rate(2 * phase - phase * 2 / 5, 2 * phase)),
        format!("{:.0}", stat.mean_rate(2 * phase - phase * 2 / 5, 2 * phase)),
    ]);
    t.row(&[
        "peak tracking".into(),
        format!("{:.0}%", auto_track * 100.0),
        format!("{:.0}%", stat_track * 100.0),
    ]);
    t.row(&["completed inferences".into(), auto.total.to_string(), stat.total.to_string()]);
    t.row(&[
        "scale-outs / drains".into(),
        format!("{} / {}", auto.scale_outs, auto.drains),
        "0 / 0".into(),
    ]);
    t.row(&["requests shed".into(), auto.shed.to_string(), stat.shed.to_string()]);
    t.row(&[
        "node-seconds".into(),
        format!("{:.0}", auto.node_seconds),
        format!("{:.0}", stat.node_seconds),
    ]);
    t.row(&[
        "FaaS GB-seconds (exec + idle)".into(),
        format!("{:.1} + {:.1}", auto.gb_seconds, auto.idle_gb_seconds),
        format!("{:.1} + {:.1}", stat.gb_seconds, stat.idle_gb_seconds),
    ]);
    t.row(&["FaaS cost".into(), usd(auto.faas_cost_usd), usd(stat.faas_cost_usd)]);
    t.row(&["DSO node cost".into(), usd(auto.node_cost_usd), usd(stat.node_cost_usd)]);
    t.row(&[
        "total cost".into(),
        usd(auto.faas_cost_usd + auto.node_cost_usd),
        usd(stat.faas_cost_usd + stat.node_cost_usd),
    ]);

    if let Err(e) = write_outputs(&tracer, &cfg, &auto, &stat, auto_track, stat_track) {
        eprintln!("could not write elastic outputs: {e}");
    }
    (t, auto, stat)
}

fn write_outputs(
    tracer: &Tracer,
    cfg: &ElasticConfig,
    auto: &ElasticReport,
    stat: &ElasticReport,
    auto_track: f64,
    stat_track: f64,
) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    std::fs::write("results/trace-elastic.chrome.json", tracer.export_chrome_json())?;
    std::fs::write("results/trace-elastic.jsonl", tracer.export_jsonl())?;
    println!("wrote results/trace-elastic.chrome.json");
    println!("wrote results/trace-elastic.jsonl");
    let side =
        |r: &ElasticReport, track: f64| {
            format!(
            "{{\"peak_tracking\": {track:.3}, \"total\": {}, \"scale_outs\": {}, \"drains\": {}, \
             \"shed\": {}, \"node_seconds\": {:.1}, \"gb_seconds\": {:.2}, \
             \"faas_cost_usd\": {:.6}, \"node_cost_usd\": {:.6}}}",
            r.total, r.scale_outs, r.drains, r.shed, r.node_seconds, r.gb_seconds,
            r.faas_cost_usd, r.node_cost_usd,
        )
        };
    let json = format!(
        "{{\n  \"bench\": \"elastic\",\n  \"offered_peak_per_s\": {:.1},\n  \"phase_secs\": {},\n  \
         \"autoscaled\": {},\n  \"static\": {}\n}}\n",
        auto.offered.1,
        cfg.phase.as_secs(),
        side(auto, auto_track),
        side(stat, stat_track),
    );
    std::fs::write("BENCH_elastic.json", &json)?;
    println!("wrote BENCH_elastic.json");
    Ok(())
}
