//! `kernel-bench` — raw kernel speed baseline, gated in CI.
//!
//! Four sections, coarse to fine:
//!
//! 1. **wheel_raw** — the timing wheel alone: pop an expiry, push a
//!    replacement, across seven delay magnitudes. No kernel, no threads;
//!    this is the data-structure ceiling.
//! 2. **timer_churn** — empty-cycle timer churn through the full kernel:
//!    eight daemons sleeping on co-prime periods. Every event is a wake,
//!    so the cost measured is queue + context-switch, no application work.
//! 3. **ping_ring** — message passing: a hop-countdown token circulating
//!    a ring of processes, one delivery event per hop.
//! 4. **dso_smoke** — end-to-end: a 2-node DSO cluster serving
//!    `AtomicLong` increments and reads, many kernel events per op.
//!
//! Each section is wall-clock timed (the one legitimate use of host time
//! in the workspace: measuring the simulator itself) and reports kernel
//! events/sec, computed from [`simcore::EventQueueStats`] — total pushes
//! (fresh allocations + free-list recycles) minus events still pending.
//! Results go to `BENCH_kernel.json`; `simcheck`'s `benchcheck` bin
//! asserts the file is well-formed and each section clears a conservative
//! sanity floor (~1/10 of typical release-build numbers), so a silent
//! 10x regression in kernel speed fails CI without flaking on host noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use simcore::{Msg, Sim, SimTime, TimingWheel};

use crucial::{AtomicLong, DsoCluster, DsoConfig, ObjectRegistry};

use super::Scale;
use crate::report::{fmt_dur, Table};

/// One measured section of the kernel bench.
#[derive(Clone, Debug)]
pub struct Section {
    /// Section name (stable; `benchcheck` keys on it).
    pub name: &'static str,
    /// Application-level work units and what they are.
    pub work: u64,
    /// What one work unit is.
    pub work_unit: &'static str,
    /// Kernel events processed (for `wheel_raw`: wheel pop/push cycles).
    pub events: u64,
    /// Host wall time for the timed region.
    pub elapsed: Duration,
}

impl Section {
    /// Events per wall-clock second.
    pub fn events_per_s(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// All sections, in run order.
#[derive(Clone, Debug)]
pub struct KernelBenchReport {
    /// Measured sections.
    pub sections: Vec<Section>,
}

impl KernelBenchReport {
    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> &Section {
        self.sections.iter().find(|s| s.name == name).expect("known section name")
    }
}

/// Times `f` on the host clock.
fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    // simlint: allow(wall-clock, reason = "kernel-bench measures the simulator's own host-time throughput; the reading never flows into simulated state")
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Kernel events fired so far: total pushes minus still-pending.
fn events_fired(sim: &Sim) -> u64 {
    let s = sim.event_queue_stats();
    (s.allocated_nodes + s.recycled_pushes).saturating_sub(s.len as u64)
}

/// Sleep periods for the churn daemons: co-prime-ish and spanning wheel
/// levels 0-3, so cascades and slot reuse both stay hot.
const PERIODS_NS: [u64; 8] = [700, 1_024, 3_000, 17_000, 65_536, 250_000, 1_000_000, 4_194_304];

fn wheel_raw(scale: Scale) -> Section {
    let cycles: u64 = scale.pick(500_000, 5_000_000);
    let delays_ns: [u64; 7] = [700, 1_024, 9_999, 65_536, 1_000_000, 33_554_432, 2_000_000_000];
    let mut wheel: TimingWheel<u64> = TimingWheel::new();
    let mut seq = 0u64;
    // Prime a realistic pending population before timing starts.
    for i in 0..4096u64 {
        wheel.push(SimTime::from_nanos(1 + i * 37), seq, i);
        seq += 1;
    }
    let (_, elapsed) = timed(|| {
        for i in 0..cycles {
            let (t, _, v) = wheel.pop().expect("wheel stays primed");
            let d = delays_ns[i as usize % delays_ns.len()];
            wheel.push(t + Duration::from_nanos(d), seq, v);
            seq += 1;
        }
    });
    let stats = wheel.stats();
    assert_eq!(stats.len, 4096, "pop/push pairs keep the population fixed");
    assert!(
        stats.recycled_pushes > cycles / 2,
        "steady-state churn must recycle slab nodes, got {stats:?}"
    );
    Section { name: "wheel_raw", work: cycles, work_unit: "timer cycles", events: cycles, elapsed }
}

fn timer_churn(scale: Scale) -> Section {
    let run = Duration::from_millis(scale.pick(150, 1_500));
    let mut sim = Sim::new(1);
    for (i, period_ns) in PERIODS_NS.into_iter().enumerate() {
        sim.spawn_daemon(&format!("tick-{i}"), move |ctx| loop {
            ctx.sleep(Duration::from_nanos(period_ns));
        });
    }
    let (_, elapsed) = timed(|| sim.run_for(run));
    let events = events_fired(&sim);
    assert!(events > 1_000, "churn must fire many timer events, got {events}");
    Section { name: "timer_churn", work: events, work_unit: "timer wakes", events, elapsed }
}

fn ping_ring(scale: Scale) -> Section {
    let nodes: usize = 16;
    let rounds: u64 = scale.pick(4_000, 40_000);
    let hops = rounds * nodes as u64;
    let lat = Duration::from_micros(1);
    let mut sim = Sim::new(2);
    let mbs: Vec<_> = (0..nodes).map(|i| sim.mailbox(&format!("ring-{i}"))).collect();
    for i in 0..nodes {
        let rx = mbs[i];
        let tx = mbs[(i + 1) % nodes];
        sim.spawn(&format!("node-{i}"), move |ctx| {
            if i == 0 {
                // The token counts remaining hops down to zero; each node
                // therefore receives it exactly `rounds` times.
                ctx.send(tx, Msg::new(hops - 1), lat);
            }
            for _ in 0..rounds {
                let v = ctx.recv(rx).take::<u64>();
                if v > 0 {
                    ctx.send(tx, Msg::new(v - 1), lat);
                }
            }
        });
    }
    let (out, elapsed) = timed(|| sim.run_until_idle());
    out.expect_quiescent();
    let events = events_fired(&sim);
    assert!(events >= hops, "every hop is at least one kernel event");
    Section { name: "ping_ring", work: hops, work_unit: "message hops", events, elapsed }
}

fn dso_smoke(scale: Scale) -> Section {
    let writers: u64 = 4;
    let readers: u64 = 2;
    let incs: u64 = scale.pick(300, 3_000);
    let reads: u64 = scale.pick(150, 1_500);
    let mut sim = Sim::new(3);
    let cluster = DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let high_water: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    for w in 0..writers {
        let handle = handle.clone();
        let high_water = high_water.clone();
        sim.spawn(&format!("writer-{w}"), move |ctx| {
            let mut cli = handle.connect();
            let counter = AtomicLong::new("bench-counter");
            for _ in 0..incs {
                let v = counter.increment_and_get(ctx, &mut cli).expect("cluster reachable");
                high_water.fetch_max(v as u64, Ordering::Relaxed);
            }
        });
    }
    for r in 0..readers {
        let handle = handle.clone();
        sim.spawn(&format!("reader-{r}"), move |ctx| {
            let mut cli = handle.connect();
            let counter = AtomicLong::new("bench-counter");
            for _ in 0..reads {
                counter.get(ctx, &mut cli).expect("cluster reachable");
            }
        });
    }
    let (out, elapsed) = timed(|| sim.run_until_idle());
    out.expect_quiescent();
    assert_eq!(
        high_water.load(Ordering::Relaxed),
        writers * incs,
        "every increment must land exactly once"
    );
    let ops = writers * incs + readers * reads;
    let events = events_fired(&sim);
    Section { name: "dso_smoke", work: ops, work_unit: "object ops", events, elapsed }
}

/// Runs every section, renders the table, writes `BENCH_kernel.json`.
pub fn kernel_bench(scale: Scale) -> (Table, KernelBenchReport) {
    let report = KernelBenchReport {
        sections: vec![wheel_raw(scale), timer_churn(scale), ping_ring(scale), dso_smoke(scale)],
    };
    let mut t = Table::new(
        "kernel-bench — event-queue and kernel throughput",
        &["Section", "Work", "Kernel events", "Wall time", "Events/sec"],
    );
    for s in &report.sections {
        t.row(&[
            s.name.into(),
            format!("{} {}", s.work, s.work_unit),
            s.events.to_string(),
            fmt_dur(s.elapsed),
            format!("{:.0}", s.events_per_s()),
        ]);
    }
    if let Err(e) = write_json(scale, &report) {
        eprintln!("could not write BENCH_kernel.json: {e}");
    }
    (t, report)
}

fn write_json(scale: Scale, report: &KernelBenchReport) -> std::io::Result<()> {
    let sections = report
        .sections
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"work\": {}, \"work_unit\": \"{}\", \
                 \"events\": {}, \"elapsed_s\": {:.6}, \"events_per_s\": {:.1}}}",
                s.name,
                s.work,
                s.work_unit,
                s.events,
                s.elapsed.as_secs_f64(),
                s.events_per_s(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"kernel\",\n  \"scale\": \"{}\",\n  \"sections\": [\n{}\n  ]\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        },
        sections,
    );
    std::fs::write("BENCH_kernel.json", &json)?;
    println!("wrote BENCH_kernel.json");
    Ok(())
}
