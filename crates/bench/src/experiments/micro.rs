//! Micro-benchmarks: Table 2 (latency), Fig. 2a (throughput), Fig. 2b
//! (Monte Carlo scalability).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::{MetricsRegistry, Sim};

use cloudstore::{spawn_redis, spawn_s3, RedisConfig, S3Config, ScriptRegistry};
use crucial_apps::pi::run_pi_crucial;
use dso::api::{Arithmetic as ArithmeticHandle, AtomicByteArray, RawHandle};
use dso::{
    costs, CallCtx, DsoCluster, DsoConfig, Effects, ObjectError, ObjectRegistry, SharedObject,
};

use super::Scale;
use crate::report::{fmt_dur, Table};

// ---------------------------------------------------------------------------
// Table 2 — latency
// ---------------------------------------------------------------------------

/// Raw key-value object modeling plain Infinispan (no Creson call-shipping
/// proxy stack): slightly cheaper per op than a Crucial shared object.
#[derive(Debug, Default, Clone, serde::Serialize, serde::Deserialize)]
pub struct RawKv {
    data: Vec<u8>,
}

impl RawKv {
    /// Registry type name.
    pub const TYPE: &'static str = "RawKv";

    /// Factory.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjectError> {
        let data = if args.is_empty() {
            Vec::new()
        } else {
            simcore::codec::from_bytes(args).map_err(|e| ObjectError::BadState(e.to_string()))?
        };
        Ok(Box::new(RawKv { data }))
    }

    fn kv_cost(&self, bytes: usize) -> Duration {
        // Infinispan's plain cache path, without the object-proxy layer.
        Duration::from_micros(22) + costs::PER_BYTE * bytes as u32
    }
}

impl SharedObject for RawKv {
    fn invoke(
        &mut self,
        _call: &CallCtx,
        method: &str,
        args: &[u8],
    ) -> Result<Effects, ObjectError> {
        match method {
            "get" => {
                let cost = self.kv_cost(self.data.len());
                Effects::value_with_cost(&self.data, cost)
            }
            "put" => {
                self.data = simcore::codec::from_bytes(args)
                    .map_err(|e| ObjectError::BadArgs(e.to_string()))?;
                let cost = self.kv_cost(self.data.len());
                Effects::value_with_cost(&(), cost)
            }
            other => Err(ObjectError::MethodNotFound(other.to_string())),
        }
    }

    fn save(&self) -> Vec<u8> {
        simcore::codec::to_bytes(&self.data).expect("bytes encode")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjectError> {
        self.data =
            simcore::codec::from_bytes(state).map_err(|e| ObjectError::BadState(e.to_string()))?;
        Ok(())
    }
}

/// Measured PUT/GET latencies for one system.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// System label.
    pub system: &'static str,
    /// Average PUT latency.
    pub put: Duration,
    /// Average GET latency.
    pub get: Duration,
}

/// Runs the Table 2 latency suite: sequential 1 KB accesses.
pub fn table2(scale: Scale) -> (Table, Vec<LatencyRow>) {
    let ops: u32 = scale.pick(1500, 30_000);
    let payload = vec![0u8; 1024];
    let mut rows = Vec::new();

    // S3. Latencies land in the sim-wide registry (no stats threading:
    // probes record through their Ctx, the harness reads the registry).
    {
        let mut sim = Sim::new(101);
        let reg = MetricsRegistry::new();
        sim.set_metrics(&reg);
        let s3 = spawn_s3(&sim, S3Config::default());
        let payload = payload.clone();
        sim.spawn("probe", move |ctx| {
            for i in 0..ops {
                let t0 = ctx.now();
                s3.put(ctx, &format!("k{i}"), payload.clone());
                ctx.metric_record("bench.put", ctx.now() - t0);
            }
            for i in 0..ops {
                let t0 = ctx.now();
                let _ = s3.get(ctx, &format!("k{i}"));
                ctx.metric_record("bench.get", ctx.now() - t0);
            }
        });
        sim.run_until_idle().expect_quiescent();
        rows.push(LatencyRow {
            system: "S3",
            put: reg.histogram("bench.put").mean(),
            get: reg.histogram("bench.get").mean(),
        });
    }

    // Redis.
    {
        let mut sim = Sim::new(102);
        let reg = MetricsRegistry::new();
        sim.set_metrics(&reg);
        let redis = spawn_redis(&sim, 2, RedisConfig::default(), ScriptRegistry::new());
        let payload = payload.clone();
        sim.spawn("probe", move |ctx| {
            for i in 0..ops {
                let t0 = ctx.now();
                redis.set(ctx, &format!("k{}", i % 64), payload.clone());
                ctx.metric_record("bench.put", ctx.now() - t0);
            }
            for i in 0..ops {
                let t0 = ctx.now();
                let _ = redis.get(ctx, &format!("k{}", i % 64));
                ctx.metric_record("bench.get", ctx.now() - t0);
            }
        });
        sim.run_until_idle().expect_quiescent();
        rows.push(LatencyRow {
            system: "Redis",
            put: reg.histogram("bench.put").mean(),
            get: reg.histogram("bench.get").mean(),
        });
    }

    // Infinispan (raw KV, no Creson stack), Crucial (rf=1), Crucial (rf=2).
    for (label, rf, raw_kv) in
        [("Infinispan", 1u8, true), ("Crucial", 1, false), ("Crucial (rf = 2)", 2, false)]
    {
        let mut sim = Sim::new(103 + rf as u64 + raw_kv as u64);
        let reg = MetricsRegistry::new();
        sim.set_metrics(&reg);
        let mut registry = ObjectRegistry::with_builtins();
        registry.register(RawKv::TYPE, RawKv::factory);
        let cluster = DsoCluster::start(&sim, 2, DsoConfig::default(), registry);
        let handle = cluster.client_handle();
        let payload = payload.clone();
        sim.spawn("probe", move |ctx| {
            let mut cli = handle.connect();
            // One object per key, as the paper's k/v-style accesses.
            for i in 0..ops {
                let key = format!("k{}", i % 64);
                let t0 = ctx.now();
                if raw_kv {
                    let h = RawHandle::new(RawKv::TYPE, &key, rf, &Vec::<u8>::new());
                    let _: () = h.call(ctx, &mut cli, "put", &payload).expect("dso");
                } else {
                    let h = AtomicByteArray::persistent(&key, Vec::new(), rf);
                    h.set(ctx, &mut cli, &payload).expect("dso");
                }
                ctx.metric_record("bench.put", ctx.now() - t0);
            }
            for i in 0..ops {
                let key = format!("k{}", i % 64);
                let t0 = ctx.now();
                if raw_kv {
                    let h = RawHandle::new(RawKv::TYPE, &key, rf, &Vec::<u8>::new());
                    let _: Vec<u8> = h.call(ctx, &mut cli, "get", &()).expect("dso");
                } else {
                    let h = AtomicByteArray::persistent(&key, Vec::new(), rf);
                    let _ = h.get(ctx, &mut cli).expect("dso");
                }
                ctx.metric_record("bench.get", ctx.now() - t0);
            }
        });
        sim.run_until_idle().expect_quiescent();
        rows.push(LatencyRow {
            system: label,
            put: reg.histogram("bench.put").mean(),
            get: reg.histogram("bench.get").mean(),
        });
    }

    let paper = [
        ("S3", "34,868 µs", "23,072 µs"),
        ("Redis", "232 µs", "229 µs"),
        ("Infinispan", "228 µs", "207 µs"),
        ("Crucial", "231 µs", "229 µs"),
        ("Crucial (rf = 2)", "512 µs", "505 µs"),
    ];
    let mut t = Table::new(
        "Table 2 — average latency, 1 KB payload",
        &["System", "PUT (sim)", "GET (sim)", "PUT (paper)", "GET (paper)"],
    );
    for (row, (_, pp, pg)) in rows.iter().zip(paper.iter()) {
        t.row(&[
            row.system.to_string(),
            fmt_dur(row.put),
            fmt_dur(row.get),
            pp.to_string(),
            pg.to_string(),
        ]);
    }
    (t, rows)
}

// ---------------------------------------------------------------------------
// Fig. 2a — throughput, simple vs complex operations
// ---------------------------------------------------------------------------

/// Throughput of one (system, op kind) cell.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// System label.
    pub system: &'static str,
    /// Simple-operation throughput (ops/s).
    pub simple: f64,
    /// Complex-operation throughput (ops/s).
    pub complex: f64,
}

fn crucial_throughput(
    seed: u64,
    rf: u8,
    complex: bool,
    threads: u32,
    objects: u32,
    run: Duration,
) -> f64 {
    let mut sim = Sim::new(seed);
    let cluster = DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let done = Arc::new(Mutex::new(0u64));
    let deadline = simcore::SimTime::ZERO + Duration::from_secs(2) + run;
    for t in 0..threads {
        let handle = handle.clone();
        let done = done.clone();
        sim.spawn(&format!("c{t}"), move |ctx| {
            use rand::RngExt;
            let mut cli = handle.connect();
            // Objects are shared across threads, accessed uniformly.
            let mut local = 0u64;
            // Warm-up until the measurement window opens.
            let start = simcore::SimTime::ZERO + Duration::from_secs(2);
            loop {
                let i: u32 = ctx.rng().random_range(0..objects);
                let obj = if rf > 1 {
                    ArithmeticHandle::persistent(&format!("o{i}"), 1.0, rf)
                } else {
                    ArithmeticHandle::new(&format!("o{i}"))
                };
                let now = ctx.now();
                if now >= deadline {
                    break;
                }
                let r = if complex {
                    obj.mul_n(ctx, &mut cli, 1.0000001, 10_000)
                } else {
                    obj.mul(ctx, &mut cli, 1.0000001)
                };
                if r.is_ok() && ctx.now() >= start && ctx.now() < deadline {
                    local += 1;
                }
            }
            *done.lock() += local;
        });
    }
    sim.run_until_idle().expect_quiescent();
    let total = *done.lock();
    total as f64 / run.as_secs_f64()
}

fn redis_throughput(seed: u64, complex: bool, threads: u32, objects: u32, run: Duration) -> f64 {
    let mut sim = Sim::new(seed);
    let mut scripts = ScriptRegistry::new();
    // Simple: one multiplication at C speed; complex: 10k of them,
    // executed serially on the single-threaded shard.
    scripts.register("mul", |cur, _args| {
        let v: f64 = cur.map(|b| simcore::codec::from_bytes(&b).expect("state")).unwrap_or(1.0);
        let out = v * 1.0000001;
        (
            simcore::codec::to_bytes(&out).expect("encode"),
            Some(simcore::codec::to_bytes(&out).expect("encode")),
            // A trivial Lua body: dispatch (base_op_cost) dominates.
            Duration::from_nanos(500),
        )
    });
    scripts.register("mul_n", |cur, _args| {
        let v: f64 = cur.map(|b| simcore::codec::from_bytes(&b).expect("state")).unwrap_or(1.0);
        let out = v * 1.0000001f64.powi(64);
        (
            simcore::codec::to_bytes(&out).expect("encode"),
            Some(simcore::codec::to_bytes(&out).expect("encode")),
            // 10k multiplications in optimized C ≈ 35 ns each.
            Duration::from_nanos(35) * 10_000,
        )
    });
    let redis = spawn_redis(&sim, 2, RedisConfig::default(), scripts);
    let done = Arc::new(Mutex::new(0u64));
    let deadline = simcore::SimTime::ZERO + Duration::from_secs(2) + run;
    for t in 0..threads {
        let redis = redis.clone();
        let done = done.clone();
        sim.spawn(&format!("c{t}"), move |ctx| {
            use rand::RngExt;
            let mut local = 0u64;
            let start = simcore::SimTime::ZERO + Duration::from_secs(2);
            loop {
                let i: u32 = ctx.rng().random_range(0..objects);
                if ctx.now() >= deadline {
                    break;
                }
                let script = if complex { "mul_n" } else { "mul" };
                let _ = redis.eval(ctx, script, &format!("o{i}"), Vec::new());
                if ctx.now() >= start && ctx.now() < deadline {
                    local += 1;
                }
            }
            *done.lock() += local;
        });
    }
    sim.run_until_idle().expect_quiescent();
    let total = *done.lock();
    total as f64 / run.as_secs_f64()
}

/// Runs Fig. 2a: 200 closed-loop threads over 800 objects on a two-node
/// tier; simple (1 multiplication) and complex (10 k multiplications) ops.
pub fn fig2a(scale: Scale) -> (Table, Vec<ThroughputRow>) {
    let run = scale.pick(Duration::from_millis(500), Duration::from_secs(30));
    let threads = 200;
    let objects = 800;
    let rows = vec![
        ThroughputRow {
            system: "Crucial",
            simple: crucial_throughput(201, 1, false, threads, objects, run),
            complex: crucial_throughput(202, 1, true, threads, objects, run),
        },
        ThroughputRow {
            system: "Crucial (rf = 2)",
            simple: crucial_throughput(203, 2, false, threads, objects, run),
            complex: crucial_throughput(204, 2, true, threads, objects, run),
        },
        ThroughputRow {
            system: "Redis",
            simple: redis_throughput(205, false, threads, objects, run),
            complex: redis_throughput(206, true, threads, objects, run),
        },
    ];
    let mut t = Table::new(
        "Fig. 2a — throughput (ops/s), 200 threads, 800 objects",
        &["System", "Simple op", "Complex op (10k mults)"],
    );
    for r in &rows {
        t.row(&[r.system.to_string(), format!("{:.0}", r.simple), format!("{:.0}", r.complex)]);
    }
    t.row(&[
        "paper shape".to_string(),
        "Redis ≈ 1.5× Crucial".to_string(),
        "Crucial ≈ 5× Redis; rf=2 ≈ 1.7× Redis".to_string(),
    ]);
    (t, rows)
}

// ---------------------------------------------------------------------------
// Fig. 2b — Monte Carlo scalability
// ---------------------------------------------------------------------------

/// One point of the scalability curve.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Thread count.
    pub threads: u32,
    /// Measured duration of the sampling phase.
    pub duration: Duration,
    /// Aggregate points/s.
    pub points_per_sec: f64,
    /// Speed-up over one thread.
    pub speedup: f64,
}

/// Runs Fig. 2b: π samples per second as threads scale to 800.
pub fn fig2b(scale: Scale) -> (Table, Vec<ScalePoint>) {
    let points: u64 = 100_000_000;
    let thread_counts: Vec<u32> =
        scale.pick(vec![1, 50, 200, 800], vec![1, 50, 100, 200, 400, 800]);
    let mut curve = Vec::new();
    let mut t1 = None;
    for &n in &thread_counts {
        let r = run_pi_crucial(210 + n as u64, n, points);
        let t1v = *t1.get_or_insert(r.duration.as_secs_f64());
        curve.push(ScalePoint {
            threads: n,
            duration: r.duration,
            points_per_sec: r.points_per_sec,
            speedup: n as f64 * t1v / r.duration.as_secs_f64() / 1.0,
        });
    }
    // speedup definition: T1/Tn × n would be ideal-n; use throughput ratio.
    let base = curve[0].points_per_sec;
    for p in &mut curve {
        p.speedup = p.points_per_sec / base;
    }
    let mut t = Table::new(
        "Fig. 2b — Monte Carlo scalability (100 M points/thread)",
        &["Threads", "Duration", "Points/s", "Speed-up"],
    );
    for p in &curve {
        t.row(&[
            p.threads.to_string(),
            fmt_dur(p.duration),
            format!("{:.2e}", p.points_per_sec),
            format!("{:.0}x", p.speedup),
        ]);
    }
    t.row(&[
        "paper".to_string(),
        "-".to_string(),
        "8.4e9 @ 800".to_string(),
        "512x @ 800".to_string(),
    ]);
    (t, curve)
}
