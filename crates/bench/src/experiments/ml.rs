//! ML experiments: Fig. 3 (k-means scale-up), Fig. 4 (logistic
//! regression vs Spark), Fig. 5 (k-means vs Spark vs Redis), Table 3
//! (costs).

use std::time::Duration;

use crucial_ml::cost::DatasetScale;
use crucial_ml::kmeans::{
    run_crucial_kmeans, run_local_kmeans, run_redis_kmeans, run_spark_kmeans, KMeansConfig,
};
use crucial_ml::logreg::{run_crucial_logreg, run_spark_logreg, LogRegConfig};
use sparklite::ClusterPricing;

use super::Scale;
use crate::report::{fmt_dur, Table};

fn kmeans_cfg(scale: Scale, workers: u32, k: u32, include_load: bool) -> KMeansConfig {
    KMeansConfig {
        seed: 31,
        workers,
        k,
        iterations: 10,
        sample_points: scale.pick(40, 200),
        dims: 100,
        scale: DatasetScale {
            total_points: 695_000 * workers as u64,
            dims: 100,
            partitions: workers,
        },
        include_load,
        dso_nodes: 1,
        memory_mb: 2048,
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — k-means scale-up
// ---------------------------------------------------------------------------

/// One scale-up measurement.
#[derive(Clone, Debug)]
pub struct ScaleUpPoint {
    /// Threads.
    pub threads: u32,
    /// `T1 / Tn` — 1.0 is a perfect scale-up.
    pub crucial: f64,
    /// Single VM with 8 cores (m5.2xlarge).
    pub vm8: f64,
    /// Single VM with 16 cores (m5.4xlarge).
    pub vm16: f64,
}

/// Runs Fig. 3: input grows with the thread count; `scale-up = T1/Tn`.
pub fn fig3(scale: Scale) -> (Table, Vec<ScaleUpPoint>) {
    let counts: Vec<u32> = scale.pick(vec![1, 8, 40, 160], vec![1, 8, 16, 40, 80, 160, 320]);
    let mut t1_crucial = None;
    let mut t1_vm8 = None;
    let mut t1_vm16 = None;
    let mut points = Vec::new();
    for &n in &counts {
        let cfg = kmeans_cfg(scale, n, 10, false);
        let c = run_crucial_kmeans(&cfg).iteration_phase.as_secs_f64();
        let v8 = run_local_kmeans(&cfg, 8).iteration_phase.as_secs_f64();
        let v16 = run_local_kmeans(&cfg, 16).iteration_phase.as_secs_f64();
        let b_c = *t1_crucial.get_or_insert(c);
        let b8 = *t1_vm8.get_or_insert(v8);
        let b16 = *t1_vm16.get_or_insert(v16);
        points.push(ScaleUpPoint { threads: n, crucial: b_c / c, vm8: b8 / v8, vm16: b16 / v16 });
    }
    let mut t = Table::new(
        "Fig. 3 — k-means scale-up (input ∝ threads; 1.0 = perfect)",
        &["Threads", "Crucial/FaaS", "m5.2xlarge (8c)", "m5.4xlarge (16c)"],
    );
    for p in &points {
        t.row(&[
            p.threads.to_string(),
            format!("{:.2}", p.crucial),
            format!("{:.2}", p.vm8),
            format!("{:.2}", p.vm16),
        ]);
    }
    t.row(&[
        "paper".to_string(),
        "0.94 @ 160, 0.90 @ 320".to_string(),
        "collapses past 8 threads".to_string(),
        "collapses past 16 threads".to_string(),
    ]);
    (t, points)
}

// ---------------------------------------------------------------------------
// Fig. 4 — logistic regression vs Spark
// ---------------------------------------------------------------------------

/// The two logistic-regression runs.
#[derive(Clone, Debug)]
pub struct Fig4Result {
    /// Crucial iteration phase.
    pub crucial_time: Duration,
    /// Spark iteration phase.
    pub spark_time: Duration,
    /// Loss series (crucial).
    pub crucial_loss: Vec<f64>,
    /// Loss series (spark).
    pub spark_loss: Vec<f64>,
    /// Crucial total/cost (for Table 3).
    pub crucial_total: Duration,
    /// Spark total (for Table 3).
    pub spark_total: Duration,
    /// Crucial total cost in dollars.
    pub crucial_cost: f64,
    /// Spark total cost in dollars.
    pub spark_cost: f64,
    /// Workers and memory used (for iteration-cost accounting).
    pub cfg: LogRegConfig,
}

/// Runs Fig. 4: 100 iterations of logistic regression on 80 workers.
pub fn fig4(scale: Scale) -> (Table, Fig4Result) {
    let cfg = LogRegConfig {
        seed: 41,
        workers: 80,
        iterations: scale.pick(30, 100),
        sample_points: scale.pick(60, 250),
        dims: 100,
        learning_rate: 2.0,
        scale: DatasetScale::default(),
        include_load: true,
        dso_nodes: 1,
        memory_mb: 1792,
    };
    let c = run_crucial_logreg(&cfg);
    let s = run_spark_logreg(&cfg);
    let result = Fig4Result {
        crucial_time: c.iteration_phase,
        spark_time: s.iteration_phase,
        crucial_loss: c.loss_per_iteration.clone(),
        spark_loss: s.loss_per_iteration.clone(),
        crucial_total: c.total,
        spark_total: s.total,
        crucial_cost: c.cost_dollars,
        spark_cost: s.cost_dollars,
        cfg,
    };
    let mut t = Table::new(
        "Fig. 4a — logistic regression, iteration phase",
        &["System", "Iteration phase (sim)", "Paper (100 iter)"],
    );
    t.row(&["Crucial".to_string(), fmt_dur(result.crucial_time), "62.3 s".to_string()]);
    t.row(&["Spark".to_string(), fmt_dur(result.spark_time), "75.9 s".to_string()]);
    let gain = 100.0 * (1.0 - result.crucial_time.as_secs_f64() / result.spark_time.as_secs_f64());
    t.row(&["Crucial gain".to_string(), format!("{gain:.0}%"), "18%".to_string()]);
    (t, result)
}

/// Renders the Fig. 4b loss-vs-time series of a [`fig4`] result.
pub fn fig4b_table(r: &Fig4Result) -> Table {
    let mut t = Table::new(
        "Fig. 4b — logistic loss over time",
        &["Iteration", "Crucial t (s)", "Crucial loss", "Spark t (s)", "Spark loss"],
    );
    let n = r.crucial_loss.len();
    let c_per = r.crucial_time.as_secs_f64() / n.max(1) as f64;
    let s_per = r.spark_time.as_secs_f64() / n.max(1) as f64;
    let step = (n / 10).max(1);
    for i in (0..n).step_by(step) {
        t.row(&[
            (i + 1).to_string(),
            format!("{:.1}", c_per * (i + 1) as f64),
            format!("{:.4}", r.crucial_loss[i]),
            format!("{:.1}", s_per * (i + 1) as f64),
            format!("{:.4}", r.spark_loss.get(i).copied().unwrap_or(f64::NAN)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Fig. 5 — k-means completion time vs k
// ---------------------------------------------------------------------------

/// One k-sweep measurement (10 iterations).
#[derive(Clone, Debug)]
pub struct Fig5Point {
    /// Number of clusters.
    pub k: u32,
    /// Crucial iteration phase.
    pub crucial: Duration,
    /// Spark iteration phase.
    pub spark: Duration,
    /// Redis-backed Crucial iteration phase.
    pub redis: Duration,
    /// Crucial totals and cost (for Table 3).
    pub crucial_total: Duration,
    /// Spark total.
    pub spark_total: Duration,
    /// Crucial cost (dollars).
    pub crucial_cost: f64,
    /// Spark cost (dollars).
    pub spark_cost: f64,
}

/// Runs Fig. 5: 10 k-means iterations for k ∈ {25, 50, 100, 200}.
pub fn fig5(scale: Scale) -> (Table, Vec<Fig5Point>) {
    let ks: Vec<u32> = scale.pick(vec![25, 200], vec![25, 50, 100, 200]);
    let mut points = Vec::new();
    for &k in &ks {
        let cfg = kmeans_cfg(scale, 80, k, true);
        let c = run_crucial_kmeans(&cfg);
        let s = run_spark_kmeans(&cfg);
        let r = run_redis_kmeans(&cfg);
        points.push(Fig5Point {
            k,
            crucial: c.iteration_phase,
            spark: s.iteration_phase,
            redis: r.iteration_phase,
            crucial_total: c.total,
            spark_total: s.total,
            crucial_cost: c.cost_dollars,
            spark_cost: s.cost_dollars,
        });
    }
    let mut t = Table::new(
        "Fig. 5 — k-means, 10 iterations, completion time vs k",
        &["k", "Crucial", "Spark", "Crucial+Redis", "paper (Crucial/Spark)"],
    );
    for p in &points {
        let paper = match p.k {
            25 => "20.4 s / 34 s",
            200 => "~175 s / ~192 s",
            _ => "-",
        };
        t.row(&[
            p.k.to_string(),
            fmt_dur(p.crucial),
            fmt_dur(p.spark),
            fmt_dur(p.redis),
            paper.to_string(),
        ]);
    }
    (t, points)
}

// ---------------------------------------------------------------------------
// Table 3 — monetary costs
// ---------------------------------------------------------------------------

/// Cost of the iteration phase alone: Lambda bills workers × memory ×
/// time; EMR bills the whole cluster × time.
fn crucial_iteration_cost(iteration: Duration, workers: u32, memory_mb: u32) -> f64 {
    let gb_s = iteration.as_secs_f64() * workers as f64 * (memory_mb as f64 / 1024.0);
    gb_s * faas::Pricing::default().per_gb_second
}

/// Runs Table 3 from fresh Fig. 4/Fig. 5 measurements.
pub fn table3(scale: Scale) -> Table {
    let (_, f5) = fig5(scale);
    let (_, f4) = fig4(scale);
    let pricing = ClusterPricing::default();
    let mut t = Table::new(
        "Table 3 — monetary costs",
        &["Experiment", "System", "Total time", "Total cost ($)", "Iterations cost ($)"],
    );
    for p in &f5 {
        if p.k != 25 && p.k != 200 {
            continue;
        }
        t.row(&[
            format!("k-means (k = {})", p.k),
            "Spark".to_string(),
            fmt_dur(p.spark_total),
            format!("{:.3}", p.spark_cost),
            format!("{:.3}", pricing.cost_for(p.spark)),
        ]);
        t.row(&[
            String::new(),
            "Crucial".to_string(),
            fmt_dur(p.crucial_total),
            format!("{:.3}", p.crucial_cost),
            format!("{:.3}", crucial_iteration_cost(p.crucial, 80, 2048)),
        ]);
    }
    t.row(&[
        "Logistic regression".to_string(),
        "Spark".to_string(),
        fmt_dur(f4.spark_total),
        format!("{:.3}", f4.spark_cost),
        format!("{:.3}", pricing.cost_for(f4.spark_time)),
    ]);
    t.row(&[
        String::new(),
        "Crucial".to_string(),
        fmt_dur(f4.crucial_total),
        format!("{:.3}", f4.crucial_cost),
        format!("{:.3}", crucial_iteration_cost(f4.crucial_time, f4.cfg.workers, f4.cfg.memory_mb)),
    ]);
    t.row(&[
        "paper: k=25".to_string(),
        "Spark 168 s/$0.246/$0.050".to_string(),
        "Crucial 87 s/$0.244/$0.057".to_string(),
        String::new(),
        String::new(),
    ]);
    t.row(&[
        "paper: k=200".to_string(),
        "Spark 330 s/$0.484/$0.288".to_string(),
        "Crucial 234 s/$0.657/$0.492".to_string(),
        String::new(),
        String::new(),
    ]);
    t.row(&[
        "paper: logreg".to_string(),
        "Spark 192 s/$0.282/$0.111".to_string(),
        "Crucial 122 s/$0.302/$0.154".to_string(),
        String::new(),
        String::new(),
    ]);
    t
}
