//! The per-table / per-figure experiment implementations.
//!
//! Every function takes a [`Scale`] choosing between quick defaults and
//! the paper's full parameters, and returns a rendered [`crate::Table`]
//! (plus structured data where tests need it).

pub mod ablate;
pub mod coldstart;
pub mod consistency;
pub mod elastic;
pub mod kernelbench;
pub mod micro;
pub mod ml;
pub mod readpath;
pub mod recovery;
pub mod state;
pub mod sync;
pub mod traced;

/// Experiment scale.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Slimmed parameters: the whole suite finishes in minutes.
    Quick,
    /// The paper's parameters (slow; hours for the full suite).
    Paper,
}

impl Scale {
    /// Picks `q` under `Quick`, `p` under `Paper`.
    pub fn pick<T>(self, q: T, p: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Paper => p,
        }
    }
}
