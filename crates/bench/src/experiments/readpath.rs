//! `ablate-read-path` — the read fast path on a Fig. 8-style read-mostly
//! workload: a replicated model served by a saturated storage tier, under
//! the three read configurations of DESIGN.md §4:
//!
//! * `linearizable` — reads go to the primary only (the default),
//! * `replica-reads` — reads rotate over the placement set,
//! * `replica-reads + cache` — plus the client cache with a short lease.

use std::time::Duration;

use simcore::{MetricsRegistry, Sim};

use dso::api::AtomicByteArray;
use dso::{ConsistencyMode, DsoCluster, DsoConfig, ObjectRegistry};

use super::Scale;
use crate::report::{fmt_dur, Table};

/// One configuration of the sweep.
#[derive(Clone, Debug)]
pub struct ReadPathRow {
    /// Human-readable mode label.
    pub mode: &'static str,
    /// Completed reads per second over the measurement window.
    pub reads_per_sec: f64,
    /// Mean read latency.
    pub read_latency: Duration,
}

// A small, hot, fully replicated model: with only two objects the
// primaries occupy at most two of the three nodes, so primary-only reads
// leave serving capacity idle that replica reads can recruit.
const OBJECTS: u32 = 2;
const PAYLOAD: usize = 1024;
const READERS: u32 = 40;
const RF: u8 = 3;

fn run_mode(seed: u64, scale: Scale, cfg: DsoConfig) -> (f64, Duration) {
    let run = scale.pick(Duration::from_millis(400), Duration::from_secs(5));
    let mut sim = Sim::new(seed);
    let reg = MetricsRegistry::new();
    sim.set_metrics(&reg);
    // One worker per node: the tier is the bottleneck, so spreading reads
    // over replicas (or eliding them at the client) is visible.
    let cfg = DsoConfig { workers_per_node: 1, ..cfg };
    let cluster = DsoCluster::start(&sim, 3, cfg, ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let start = simcore::SimTime::ZERO + Duration::from_secs(1);
    let deadline = start + run;
    // Writer: installs the 1 KB objects, then keeps mutating one object
    // every 2 ms — read-mostly, not read-only.
    {
        let handle = handle.clone();
        sim.spawn("writer", move |ctx| {
            use rand::RngExt;
            let mut cli = handle.connect();
            let payload = vec![7u8; PAYLOAD];
            for i in 0..OBJECTS {
                let o = AtomicByteArray::persistent(&format!("m{i}"), Vec::new(), RF);
                o.set(ctx, &mut cli, &payload).expect("install");
            }
            while ctx.now() < deadline {
                ctx.sleep(Duration::from_millis(2));
                let i: u32 = ctx.rng().random_range(0..OBJECTS);
                let o = AtomicByteArray::persistent(&format!("m{i}"), Vec::new(), RF);
                o.set(ctx, &mut cli, &payload).expect("update");
            }
        });
    }
    for t in 0..READERS {
        let handle = handle.clone();
        sim.spawn(&format!("r{t}"), move |ctx| {
            use rand::RngExt;
            // Let the writer install the model first.
            ctx.sleep(Duration::from_millis(200));
            let mut cli = handle.connect();
            let objs: Vec<AtomicByteArray> = (0..OBJECTS)
                .map(|i| AtomicByteArray::persistent(&format!("m{i}"), Vec::new(), RF))
                .collect();
            while ctx.now() < deadline {
                let i = ctx.rng().random_range(0..OBJECTS) as usize;
                let t0 = ctx.now();
                if objs[i].get(ctx, &mut cli).is_ok() && t0 >= start && ctx.now() < deadline {
                    ctx.metric_incr("bench.reads");
                    ctx.metric_record("bench.read_latency", ctx.now() - t0);
                }
                // Local work consuming each read (distance computation in
                // the Fig. 8 analogue).
                ctx.sleep(Duration::from_micros(20));
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    let total = reg.counter_value("bench.reads");
    (total as f64 / run.as_secs_f64(), reg.histogram("bench.read_latency").mean())
}

/// Runs the three-way read-path comparison.
pub fn ablate_read_path(scale: Scale) -> (Table, Vec<ReadPathRow>) {
    let configs: [(&'static str, DsoConfig); 3] = [
        ("linearizable (primary reads)", DsoConfig::default()),
        (
            "replica-reads",
            DsoConfig { consistency: ConsistencyMode::ReplicaReads, ..DsoConfig::default() },
        ),
        (
            "replica-reads + cache (2 ms lease)",
            DsoConfig {
                consistency: ConsistencyMode::ReplicaReads,
                read_cache: true,
                cache_lease: Some(Duration::from_millis(2)),
                ..DsoConfig::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (i, (mode, cfg)) in configs.into_iter().enumerate() {
        let (reads_per_sec, read_latency) = run_mode(940 + i as u64, scale, cfg);
        rows.push(ReadPathRow { mode, reads_per_sec, read_latency });
    }
    let mut t = Table::new(
        "Ablation — read path (3 nodes, 1 worker each, hot rf = 3 model, 1 KB objects, read-mostly)",
        &["Mode", "Reads/s", "Mean read latency", "Speedup"],
    );
    let base = rows[0].reads_per_sec;
    for r in &rows {
        t.row(&[
            r.mode.to_string(),
            format!("{:.0}", r.reads_per_sec),
            fmt_dur(r.read_latency),
            format!("{:.2}x", r.reads_per_sec / base.max(1e-9)),
        ]);
    }
    (t, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_and_cached_reads_beat_primary_only() {
        let (_, rows) = ablate_read_path(Scale::Quick);
        let lin = rows[0].reads_per_sec;
        let replica = rows[1].reads_per_sec;
        let cached = rows[2].reads_per_sec;
        assert!(
            replica > lin * 1.3,
            "replica reads must relieve the primaries: lin={lin:.0} replica={replica:.0}"
        );
        assert!(
            cached > replica,
            "the cache must beat plain replica reads: replica={replica:.0} cached={cached:.0}"
        );
    }
}
