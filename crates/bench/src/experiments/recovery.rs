//! `recovery` — the durability subsystem's two headline curves, reported
//! in `BENCH_recovery.json` and gated by `simcheck`'s `benchcheck` bin:
//!
//! 1. **Recovery time vs checkpoint cadence.** A fixed Sync-durability
//!    workload runs against a 3-node cluster with a scheduled
//!    checkpointer at various intervals (including none), then every node
//!    crashes and [`DsoCluster::recover_from`] rebuilds the deployment
//!    from the store. More frequent checkpoints garbage-collect more of
//!    the WAL, so both the replayed log bytes and the recovery time must
//!    shrink as the cadence tightens — `benchcheck` holds the endpoints
//!    (the fastest cadence beats no checkpoints ≥ 1.2× on time and
//!    strictly on replayed bytes).
//! 2. **Write-latency overhead per durability level.** The same write
//!    loop under [`DurabilityLevel::None`], `Async`, and `Sync`. Async
//!    logs off the write path, so its mean client-observed write latency
//!    must stay within 1.2× of the undurable baseline; Sync pays the
//!    group commit + segment PUT on every acknowledgement and is reported
//!    for the docs' loss-window table.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::{MetricsRegistry, Sim};

use dso::api::AtomicLong;
use dso::{
    Checkpointer, DsoCluster, DsoConfig, DurabilityConfig, DurabilityLevel, DurabilityStore,
    ObjectRegistry, RecoveryReport,
};

use cloudstore::{spawn_s3, S3Config};

use super::Scale;
use crate::report::{fmt_dur, Table};

/// One point of the recovery-time-vs-cadence curve.
#[derive(Clone, Debug)]
pub struct RecoveryRow {
    /// Section name (`none` or `ckpt_<interval>ms`), the key `benchcheck`
    /// gates on.
    pub name: String,
    /// Checkpoint interval; zero means no checkpointing.
    pub checkpoint_ms: u64,
    /// Virtual time from the start of [`DsoCluster::recover_from`] to the
    /// recovered view serving reads.
    pub recovery: Duration,
    /// Encoded bytes of WAL segments fetched and replayed.
    pub replayed_bytes: usize,
    /// WAL segments replayed.
    pub wal_segments: usize,
    /// Distinct objects installed.
    pub objects: usize,
}

/// One row of the durability-level overhead table.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Section name: `none`, `async`, or `sync`.
    pub name: &'static str,
    /// Mean client-observed write latency.
    pub mean_write: Duration,
    /// Acknowledged writes over the run.
    pub writes: u64,
}

const NODES: u32 = 3;
const OBJECTS: u32 = 16;
const WRITERS: u32 = 4;
const GROUP_COMMIT: Duration = Duration::from_millis(25);
/// The cadence sweep; fixed across scales so the `benchcheck` section
/// names stay stable (`Scale` only stretches the workload).
const CADENCES_MS: [u64; 3] = [2000, 1000, 500];

fn durability(s3: &cloudstore::S3Handle, level: DurabilityLevel) -> DurabilityConfig {
    let mut d = DurabilityConfig::new(DurabilityStore::new(s3.clone(), "bench"));
    d.level = level;
    d.group_commit = GROUP_COMMIT;
    d
}

/// Spawns the write loop: `WRITERS` processes spreading increments over
/// `OBJECTS` counters until `deadline`, recording acknowledgement latency.
fn spawn_writers(sim: &Sim, cluster: &DsoCluster, deadline: simcore::SimTime) {
    for w in 0..WRITERS {
        let handle = cluster.client_handle();
        sim.spawn(&format!("writer-{w}"), move |ctx| {
            use rand::RngExt;
            let mut cli = handle.connect();
            while ctx.now() < deadline {
                let i: u32 = ctx.rng().random_range(0..OBJECTS);
                let c = AtomicLong::persistent(&format!("c{i}"), 0, 2);
                let t0 = ctx.now();
                if c.increment_and_get(ctx, &mut cli).is_err() {
                    break; // cluster crashed under us
                }
                ctx.metric_incr("bench.writes");
                ctx.metric_record("bench.write_latency", ctx.now() - t0);
                ctx.sleep(Duration::from_millis(5));
            }
        });
    }
}

/// Runs the workload under Sync durability with an optional scheduled
/// checkpointer, crashes every node, recovers, and reports how long the
/// rebuild took and how much log it replayed.
fn run_recovery_cell(
    seed: u64,
    checkpoint: Option<Duration>,
    run: Duration,
) -> (Duration, RecoveryReport) {
    let mut sim = Sim::new(seed);
    let reg = MetricsRegistry::new();
    sim.set_metrics(&reg);
    let s3 = spawn_s3(&sim, S3Config::default());
    let d = durability(&s3, DurabilityLevel::Sync);
    let cfg = DsoConfig { durability: Some(d.clone()), ..DsoConfig::default() };
    let mut cluster = DsoCluster::start(&sim, NODES, cfg.clone(), ObjectRegistry::with_builtins());
    let deadline = simcore::SimTime::ZERO + run;
    spawn_writers(&sim, &cluster, deadline);
    let out: Arc<Mutex<Option<(Duration, RecoveryReport)>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    sim.spawn("injector", move |ctx| {
        // Drive checkpoints synchronously rather than via
        // `spawn_checkpointer`, so the last round (and its WAL garbage
        // collection) always completes before the plug is pulled — a
        // checkpoint left in flight at crash time would keep deleting
        // segments *during* the recovery scan, churning the listing and
        // measuring scheduler racing instead of the cadence curve. The
        // crash-concurrent-GC case is covered by `dso`'s own tests.
        if let Some(interval) = checkpoint {
            let mut cp = Checkpointer::new(d);
            let mut cli = cluster.client_handle().connect();
            let mut tick = simcore::Ticker::new(ctx.now(), interval);
            loop {
                let now = tick.wait(ctx);
                if now >= deadline {
                    break;
                }
                // Failed rounds surface via `dso.checkpoint` spans.
                let _ = cp.run_once(ctx, &mut cli);
            }
        }
        let crash_at = deadline + Duration::from_millis(100);
        ctx.sleep(crash_at.saturating_duration_since(ctx.now()));
        for idx in 0..NODES as usize {
            cluster.crash_node_from(ctx, idx);
        }
        ctx.sleep(Duration::from_millis(50));
        let t0 = ctx.now();
        let (recovered, report) =
            DsoCluster::recover_from(ctx, NODES, cfg, ObjectRegistry::with_builtins())
                .expect("recovery succeeds");
        // The clock stops once the recovered view serves a read again.
        let mut cli = recovered.client_handle().connect();
        AtomicLong::persistent("c0", 0, 2).get(ctx, &mut cli).expect("read after recovery");
        *out2.lock() = Some((ctx.now() - t0, report));
    });
    sim.run_until_idle().expect_quiescent();
    let got = out.lock().clone();
    // invariant: the injector either panics or stores its measurement.
    got.expect("injector ran")
}

/// Runs the write loop at `level` (no crash) and reports the mean
/// acknowledgement latency.
fn run_overhead_cell(seed: u64, level: Option<DurabilityLevel>, run: Duration) -> (Duration, u64) {
    let mut sim = Sim::new(seed);
    let reg = MetricsRegistry::new();
    sim.set_metrics(&reg);
    let s3 = spawn_s3(&sim, S3Config::default());
    let cfg = DsoConfig { durability: level.map(|l| durability(&s3, l)), ..DsoConfig::default() };
    let cluster = DsoCluster::start(&sim, NODES, cfg, ObjectRegistry::with_builtins());
    spawn_writers(&sim, &cluster, simcore::SimTime::ZERO + run);
    sim.run_until_idle().expect_quiescent();
    (reg.histogram("bench.write_latency").mean(), reg.counter_value("bench.writes"))
}

/// Runs both curves, prints the tables, writes `BENCH_recovery.json`.
pub fn recovery(scale: Scale) -> (Table, Vec<RecoveryRow>, Vec<OverheadRow>) {
    let run = scale.pick(Duration::from_secs(4), Duration::from_secs(8));
    let mut rows = Vec::new();
    let cells: Vec<(String, Option<Duration>)> = std::iter::once(("none".to_string(), None))
        .chain(
            CADENCES_MS.iter().map(|&ms| (format!("ckpt_{ms}ms"), Some(Duration::from_millis(ms)))),
        )
        .collect();
    for (i, (name, cadence)) in cells.into_iter().enumerate() {
        let (recovery, report) = run_recovery_cell(1300 + i as u64, cadence, run);
        rows.push(RecoveryRow {
            name,
            checkpoint_ms: cadence.map_or(0, |d| d.as_millis() as u64),
            recovery,
            replayed_bytes: report.wal_bytes,
            wal_segments: report.wal_segments,
            objects: report.objects,
        });
    }
    let overhead: Vec<OverheadRow> = [
        ("none", None),
        ("async", Some(DurabilityLevel::Async)),
        ("sync", Some(DurabilityLevel::Sync)),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (name, level))| {
        let (mean_write, writes) =
            run_overhead_cell(1400 + i as u64, level, scale.pick(Duration::from_secs(2), run));
        OverheadRow { name, mean_write, writes }
    })
    .collect();

    let mut t = Table::new(
        "Durability — full-cluster crash recovery vs checkpoint cadence (3 nodes, Sync WAL)",
        &["Checkpoint", "Recovery", "Replayed log", "WAL segments", "Objects"],
    );
    for r in &rows {
        t.row(&[
            r.name.clone(),
            fmt_dur(r.recovery),
            format!("{} B", r.replayed_bytes),
            r.wal_segments.to_string(),
            r.objects.to_string(),
        ]);
    }
    let mut t2 = Table::new(
        "Durability — write-latency overhead per level",
        &["Level", "Mean write latency", "Writes"],
    );
    for r in &overhead {
        t2.row(&[r.name.to_string(), fmt_dur(r.mean_write), r.writes.to_string()]);
    }
    t2.print();
    if let Err(e) = write_json(scale, &rows, &overhead) {
        eprintln!("could not write BENCH_recovery.json: {e}");
    }
    (t, rows, overhead)
}

fn write_json(scale: Scale, rows: &[RecoveryRow], overhead: &[OverheadRow]) -> std::io::Result<()> {
    let body = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"checkpoint_ms\": {}, \"recovery_ms\": {:.3}, \
                 \"replayed_bytes\": {}, \"wal_segments\": {}, \"objects\": {}}}",
                r.name,
                r.checkpoint_ms,
                r.recovery.as_secs_f64() * 1e3,
                r.replayed_bytes,
                r.wal_segments,
                r.objects,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let oh = overhead
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"mean_write_ms\": {:.4}, \"writes\": {}}}",
                r.name,
                r.mean_write.as_secs_f64() * 1e3,
                r.writes,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"scale\": \"{}\",\n  \"rows\": [\n{}\n  ],\n  \
         \"overhead\": [\n{}\n  ]\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        },
        body,
        oh,
    );
    std::fs::write("BENCH_recovery.json", &json)?;
    println!("wrote BENCH_recovery.json");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_buy_down_recovery_and_async_logging_is_off_the_write_path() {
        let (_, rows, overhead) = recovery(Scale::Quick);
        let row = |name: &str| {
            rows.iter().find(|r| r.name == name).unwrap_or_else(|| panic!("row {name}"))
        };
        let none = row("none");
        let fast = row("ckpt_500ms");
        assert!(
            none.recovery.as_secs_f64() >= fast.recovery.as_secs_f64() * 1.2,
            "frequent checkpoints must shrink recovery: none={:?} ckpt_500ms={:?}",
            none.recovery,
            fast.recovery
        );
        assert!(
            fast.replayed_bytes < none.replayed_bytes,
            "frequent checkpoints must shrink the replayed log: none={} ckpt_500ms={}",
            none.replayed_bytes,
            fast.replayed_bytes
        );
        for r in &rows {
            assert!(r.objects as u32 == OBJECTS, "{}: all counters recovered", r.name);
        }
        let mean = |name: &str| {
            overhead
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("overhead {name}"))
                .mean_write
                .as_secs_f64()
        };
        assert!(
            mean("async") < mean("none") * 1.2,
            "async logging must stay off the write path: none={:.4}ms async={:.4}ms",
            mean("none") * 1e3,
            mean("async") * 1e3
        );
        assert!(
            mean("sync") > mean("async"),
            "sync acks ride the segment PUT and cannot be cheaper than async"
        );
    }
}
