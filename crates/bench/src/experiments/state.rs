//! Persistent-state experiments: Fig. 8 (elastic, fault-tolerant serving)
//! and Table 4 (lines changed per ported application).

use std::time::Duration;

use crucial_apps::table4::table4 as port_reports;
use crucial_ml::inference::{run_inference_serving, InferenceConfig};

use super::Scale;
use crate::report::Table;

/// Runs Fig. 8: throughput over time with a node crash and a node join.
///
/// The quick scale shrinks everything proportionally (fewer threads and
/// centroids, fewer workers per storage node) so the tier stays the
/// bottleneck and the −30% crash dip remains visible.
pub fn fig8(scale: Scale) -> (Table, Vec<(u64, u64)>) {
    let cfg = match scale {
        Scale::Quick => InferenceConfig {
            seed: 81,
            threads: 24,
            centroids: 24,
            dims: 100,
            rf: 2,
            dso_nodes: 3,
            dso_workers_per_node: 1,
            duration: Duration::from_secs(36),
            crash_at: Some(Duration::from_secs(12)),
            add_at: Some(Duration::from_secs(24)),
            per_inference_compute: Duration::ZERO,
            ..InferenceConfig::default()
        },
        Scale::Paper => InferenceConfig {
            seed: 81,
            threads: 100,
            centroids: 200,
            dims: 100,
            rf: 2,
            dso_nodes: 3,
            dso_workers_per_node: 8,
            duration: Duration::from_secs(360),
            crash_at: Some(Duration::from_secs(120)),
            add_at: Some(Duration::from_secs(240)),
            per_inference_compute: Duration::ZERO,
            ..InferenceConfig::default()
        },
    };
    let crash_s = cfg.crash_at.expect("crash scheduled").as_secs();
    let add_s = cfg.add_at.expect("join scheduled").as_secs();
    let end_s = cfg.duration.as_secs();
    let report = run_inference_serving(&cfg);
    let before = report.mean_rate(crash_s / 2, crash_s);
    let during = report.mean_rate(crash_s + 3, add_s);
    let after = report.mean_rate(add_s + 6, end_s);
    let mut t = Table::new(
        "Fig. 8 — inference serving with a crash and a join (rf = 2)",
        &["Window", "Mean inferences/s", "Relative"],
    );
    t.row(&[format!("steady state (t < {crash_s}s)"), format!("{before:.0}"), "100%".to_string()]);
    t.row(&[
        format!("after crash ({}..{add_s}s)", crash_s + 3),
        format!("{during:.0}"),
        format!("{:.0}%", 100.0 * during / before.max(1e-9)),
    ]);
    t.row(&[
        format!("after join ({}..{end_s}s)", add_s + 6),
        format!("{after:.0}"),
        format!("{:.0}%", 100.0 * after / before.max(1e-9)),
    ]);
    t.row(&[
        "paper".to_string(),
        "490/s baseline; crash −30%; restored ~20 s after join".to_string(),
        String::new(),
    ]);
    (t, report.per_second)
}

/// Renders Table 4 from the bundled port listings.
pub fn table4() -> Table {
    let reports = port_reports();
    let mut t = Table::new(
        "Table 4 — lines changed to port each application to Crucial",
        &["Application", "Total lines", "Changed lines", "Changed %", "paper (total/changed)"],
    );
    let paper = ["44 / 2", "430 / 10", "329 / 8", "255 / 15"];
    for (r, p) in reports.iter().zip(paper.iter()) {
        t.row(&[
            r.name.to_string(),
            r.total_lines.to_string(),
            r.changed_lines.to_string(),
            format!("{:.0}%", 100.0 * r.changed_fraction()),
            p.to_string(),
        ]);
    }
    t.row(&[
        "note".to_string(),
        "Rust ports change a larger fraction than the paper's Java:".to_string(),
        "AspectJ wove @Shared fields invisibly; Rust handles and".to_string(),
        "error plumbing are real lines (see EXPERIMENTS.md)".to_string(),
        String::new(),
    ]);
    t
}
