//! Coordination experiments: Fig. 6 (map-phase synchronization), Fig. 7a
//! (barrier scalability), Fig. 7b (stage breakdown), Fig. 7c (Santa Claus).

use std::time::Duration;

use simcore::{MetricsRegistry, Sim};

use cloudstore::{spawn_sns, spawn_sqs, QueueConfig};
use crucial_apps::mapsync::{run_mapsync, MapSyncConfig, SyncStrategy};
use crucial_apps::santa::{run_santa_cloud, run_santa_dso, run_santa_local, SantaConfig};
use crucial_apps::stages::{run_stages, StagesConfig};
use dso::api::CyclicBarrier;
use dso::{DsoCluster, DsoConfig, ObjectRegistry};

use super::Scale;
use crate::report::{fmt_dur, Table};

// ---------------------------------------------------------------------------
// Fig. 6 — synchronizing a map phase
// ---------------------------------------------------------------------------

/// Runs Fig. 6: one bar per strategy.
pub fn fig6(scale: Scale) -> (Table, Vec<(SyncStrategy, Duration)>) {
    let cfg = MapSyncConfig {
        seed: 61,
        mappers: scale.pick(40, 100),
        points: 100_000_000,
        poll_interval: Duration::from_millis(500),
    };
    let mut results = Vec::new();
    for strategy in SyncStrategy::ALL {
        let r = run_mapsync(strategy, &cfg);
        results.push((strategy, r.sync_time));
    }
    let mut t = Table::new(
        "Fig. 6 — map-phase synchronization time",
        &["Strategy", "Sync time (sim)", "paper ordering"],
    );
    let notes = [
        "slow, high variance",
        "faster, still polling",
        "slowest (queue polling)",
        "fast (push)",
        "fastest (no reduce)",
    ];
    for ((s, d), note) in results.iter().zip(notes.iter()) {
        t.row(&[s.label().to_string(), fmt_dur(*d), note.to_string()]);
    }
    (t, results)
}

// ---------------------------------------------------------------------------
// Fig. 7a — barrier scalability
// ---------------------------------------------------------------------------

/// Average time a thread spends waiting on a barrier.
#[derive(Clone, Debug)]
pub struct BarrierPoint {
    /// Threads at the barrier.
    pub threads: u32,
    /// Crucial's DSO barrier.
    pub crucial: Duration,
    /// The SNS+SQS rendezvous baseline.
    pub sns_sqs: Duration,
}

fn crucial_barrier_wait(seed: u64, threads: u32, rounds: u32) -> Duration {
    let mut sim = Sim::new(seed);
    let reg = MetricsRegistry::new();
    sim.set_metrics(&reg);
    let cluster = DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    for i in 0..threads {
        let handle = handle.clone();
        sim.spawn(&format!("t{i}"), move |ctx| {
            let mut cli = handle.connect();
            let barrier = CyclicBarrier::new("b", threads);
            for _ in 0..rounds {
                // Short computations in lock step (§6.3.2).
                ctx.sleep(Duration::from_secs(1));
                let t0 = ctx.now();
                barrier.wait(ctx, &mut cli).expect("dso");
                ctx.metric_record("bench.barrier_wait", ctx.now() - t0);
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    reg.histogram("bench.barrier_wait").mean()
}

fn sns_sqs_barrier_wait(seed: u64, threads: u32, rounds: u32) -> Duration {
    let mut sim = Sim::new(seed);
    let reg = MetricsRegistry::new();
    sim.set_metrics(&reg);
    let sqs = spawn_sqs(&sim, QueueConfig::default());
    let sns = spawn_sns(&sim, QueueConfig::default(), &sqs);
    // Coordinator: collects arrivals, then broadcasts the release.
    {
        let sqs = sqs.clone();
        let sns = sns.clone();
        sim.spawn_daemon("coordinator", move |ctx| {
            for round in 0..rounds {
                let mut seen = 0u32;
                while seen < threads {
                    let msgs = sqs.receive(ctx, "arrivals", 10);
                    if msgs.is_empty() {
                        ctx.sleep(Duration::from_millis(200));
                    }
                    seen += msgs.len() as u32;
                }
                sns.publish(ctx, "release", vec![round as u8]);
            }
        });
    }
    for i in 0..threads {
        let sqs = sqs.clone();
        let sns = sns.clone();
        sim.spawn(&format!("t{i}"), move |ctx| {
            sns.subscribe(ctx, "release", &format!("rel-{i}"));
            for round in 0..rounds {
                ctx.sleep(Duration::from_secs(1));
                let t0 = ctx.now();
                sqs.send(ctx, "arrivals", vec![round as u8]);
                loop {
                    let msgs = sqs.receive(ctx, &format!("rel-{i}"), 1);
                    if !msgs.is_empty() {
                        break;
                    }
                    ctx.sleep(Duration::from_millis(200));
                }
                ctx.metric_record("bench.barrier_wait", ctx.now() - t0);
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    reg.histogram("bench.barrier_wait").mean()
}

/// Runs Fig. 7a: average barrier wait for Crucial vs SNS+SQS.
pub fn fig7a(scale: Scale) -> (Table, Vec<BarrierPoint>) {
    let counts: Vec<u32> = scale.pick(vec![20, 80], vec![20, 80, 320, 1800]);
    let rounds = 4;
    let mut points = Vec::new();
    for &n in &counts {
        points.push(BarrierPoint {
            threads: n,
            crucial: crucial_barrier_wait(701 + n as u64, n, rounds),
            sns_sqs: sns_sqs_barrier_wait(801 + n as u64, n, rounds),
        });
    }
    let mut t = Table::new(
        "Fig. 7a — average barrier wait",
        &["Threads", "Crucial barrier", "SNS+SQS", "Ratio"],
    );
    for p in &points {
        t.row(&[
            p.threads.to_string(),
            fmt_dur(p.crucial),
            fmt_dur(p.sns_sqs),
            format!("{:.0}x", p.sns_sqs.as_secs_f64() / p.crucial.as_secs_f64().max(1e-9)),
        ]);
    }
    t.row(&[
        "paper".to_string(),
        "68 ms @ 1800".to_string(),
        "~10x slower @ 320".to_string(),
        String::new(),
    ]);
    (t, points)
}

// ---------------------------------------------------------------------------
// Fig. 7b — phase breakdown
// ---------------------------------------------------------------------------

/// Runs Fig. 7b and renders the per-phase breakdown.
pub fn fig7b(scale: Scale) -> Table {
    let cfg = StagesConfig {
        seed: 71,
        threads: 10,
        iterations: scale.pick(3, 5),
        input_bytes: 8 * 1024 * 1024,
        compute: Duration::from_secs(1),
    };
    let r = run_stages(&cfg);
    let mut t = Table::new(
        "Fig. 7b — iterative task, per-thread phase breakdown",
        &["Approach", "Invocation", "S3 read", "Compute", "Sync", "Total wall"],
    );
    t.row(&[
        "A: stage per iteration".to_string(),
        fmt_dur(r.multi_stage.invocation),
        fmt_dur(r.multi_stage.s3_read),
        fmt_dur(r.multi_stage.compute),
        fmt_dur(r.multi_stage.sync),
        fmt_dur(r.multi_stage_total),
    ]);
    t.row(&[
        "B: one stage + barrier".to_string(),
        fmt_dur(r.single_stage.invocation),
        fmt_dur(r.single_stage.s3_read),
        fmt_dur(r.single_stage.compute),
        fmt_dur(r.single_stage.sync),
        fmt_dur(r.single_stage_total),
    ]);
    t.row(&[
        "paper".to_string(),
        "per-iteration in A, once in B".to_string(),
        "per-iteration in A, once in B".to_string(),
        "equal".to_string(),
        "low (barrier)".to_string(),
        "B lower".to_string(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Fig. 7c — Santa Claus
// ---------------------------------------------------------------------------

/// Runs Fig. 7c: the three solutions' completion times.
pub fn fig7c(scale: Scale) -> (Table, [Duration; 3]) {
    let cfg = SantaConfig {
        seed: 72,
        deliveries: scale.pick(15, 15),
        consults_per_elf: 3,
        ..SantaConfig::default()
    };
    let local = run_santa_local(&cfg).completion;
    let dso = run_santa_dso(&cfg).completion;
    let cloud = run_santa_cloud(&cfg).completion;
    let mut t = Table::new(
        "Fig. 7c — Santa Claus problem, 15 deliveries",
        &["Solution", "Completion (sim)", "vs local"],
    );
    let base = local.as_secs_f64();
    for (name, d) in
        [("single machine (POJO)", local), ("@Shared objects (DSO)", dso), ("cloud threads", cloud)]
    {
        t.row(&[
            name.to_string(),
            fmt_dur(d),
            format!("{:+.1}%", 100.0 * (d.as_secs_f64() / base - 1.0)),
        ]);
    }
    t.row(&["paper".to_string(), "DSO ≈ +8% vs POJO; cloud ≈ DSO".to_string(), String::new()]);
    (t, [local, dso, cloud])
}
