//! `trace-pi` / `trace-kmeans` — run an application with the observability
//! subsystem installed and export its traces.
//!
//! Each run installs a [`Tracer`] and a [`MetricsRegistry`] on the fresh
//! `Sim` (via the `run_*_with` setup hooks), then writes
//!
//! * `results/trace-<app>.chrome.json` — Chrome trace-event JSON; open it
//!   in `chrome://tracing` / Perfetto to see the causal span tree
//!   (client `dso.call` → per-attempt `dso.attempt` → server `dso.exec`,
//!   with `dso.smr_round` children for replicated writes),
//! * `results/trace-<app>.jsonl` — one span per line with integer
//!   nanosecond timestamps, for scripted analysis,
//!
//! and prints a table of the registry's counters. Everything is stamped
//! with simulated time only, so identical seeds produce byte-identical
//! exports.

use simcore::{MetricsRegistry, Tracer};

use crucial_apps::pi::run_pi_crucial_with;
use crucial_ml::kmeans::{run_crucial_kmeans_with, KMeansConfig};

use super::Scale;
use crate::report::Table;

/// Counter names worth a row in the summary table, with labels.
const COUNTERS: &[(&str, &str)] = &[
    ("core.thread_starts", "cloud threads started"),
    ("core.thread_retries", "cloud-thread retries"),
    ("faas.invocations", "function invocations"),
    ("faas.cold_starts", "cold starts"),
    ("dso.invokes", "DSO calls"),
    ("dso.retries", "DSO retries"),
    ("dso.smr_rounds", "SMR rounds"),
    ("dso.view_changes", "view changes"),
];

fn summary_table(title: &str, reg: &MetricsRegistry, tracer: &Tracer) -> Table {
    let mut t = Table::new(title, &["Metric", "Value"]);
    for (name, label) in COUNTERS {
        t.row(&[label.to_string(), reg.counter_value(name).to_string()]);
    }
    t.row(&["spans recorded".to_string(), tracer.len().to_string()]);
    t
}

fn write_exports(app: &str, tracer: &Tracer) -> std::io::Result<(String, String)> {
    std::fs::create_dir_all("results")?;
    let chrome = format!("results/trace-{app}.chrome.json");
    let jsonl = format!("results/trace-{app}.jsonl");
    std::fs::write(&chrome, tracer.export_chrome_json())?;
    std::fs::write(&jsonl, tracer.export_jsonl())?;
    Ok((chrome, jsonl))
}

fn report(app: &str, reg: &MetricsRegistry, tracer: &Tracer) {
    match write_exports(app, tracer) {
        Ok((chrome, jsonl)) => {
            println!("wrote {chrome}");
            println!("wrote {jsonl}");
        }
        Err(e) => eprintln!("could not write trace exports: {e}"),
    }
    summary_table(&format!("{app} — observability summary"), reg, tracer).print();
}

/// Traced π estimation (Listing 1): exports the trace and prints the
/// metric counters of the run.
pub fn trace_pi(scale: Scale) {
    let threads = scale.pick(8, 200);
    let points = scale.pick(1_000_000, 100_000_000);
    let tracer = Tracer::new();
    let reg = MetricsRegistry::new();
    let (t2, r2) = (tracer.clone(), reg.clone());
    let r = run_pi_crucial_with(42, threads, points, move |sim| {
        sim.set_tracer(&t2);
        sim.set_metrics(&r2);
    });
    println!("pi ≈ {:.6} in {:?} of simulated time", r.estimate, r.duration);
    report("pi", &reg, &tracer);
}

/// Traced k-means training (Listing 2): exports the trace and prints the
/// metric counters of the run.
pub fn trace_kmeans(scale: Scale) {
    let cfg = KMeansConfig {
        seed: 42,
        workers: scale.pick(10, 80),
        iterations: scale.pick(3, 10),
        ..KMeansConfig::default()
    };
    let tracer = Tracer::new();
    let reg = MetricsRegistry::new();
    let (t2, r2) = (tracer.clone(), reg.clone());
    let r = run_crucial_kmeans_with(&cfg, move |sim| {
        sim.set_tracer(&t2);
        sim.set_metrics(&r2);
    });
    println!(
        "k-means: {} iterations in {:?} (total {:?})",
        r.sse_per_iteration.len(),
        r.iteration_phase,
        r.total
    );
    report("kmeans", &reg, &tracer);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_pi_produces_causal_spans() {
        let tracer = Tracer::new();
        let reg = MetricsRegistry::new();
        let (t2, r2) = (tracer.clone(), reg.clone());
        run_pi_crucial_with(7, 4, 100_000, move |sim| {
            sim.set_tracer(&t2);
            sim.set_metrics(&r2);
        });
        assert_eq!(reg.counter_value("core.thread_starts"), 4);
        assert_eq!(reg.counter_value("faas.invocations"), 4);
        assert!(reg.counter_value("dso.invokes") > 0);
        let spans = tracer.spans();
        assert!(spans.iter().any(|s| s.name == "cloud.thread"));
        assert!(spans.iter().any(|s| s.name == "faas.exec"));
        // Every faas.exec span hangs under a faas.invoke or cloud.thread.
        for s in spans.iter().filter(|s| s.name == "faas.exec") {
            assert!(!s.parent.is_none(), "faas.exec without a parent");
        }
    }
}
