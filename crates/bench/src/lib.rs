//! # bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§6), each
//! returning a structured result and able to print itself next to the
//! paper's reported numbers. The `experiments` binary dispatches on a
//! subcommand (`table2`, `fig2a`, …, `all`).
//!
//! Scale note: the default parameters are slimmed so the whole suite runs
//! in minutes; `--paper` switches every experiment to the paper's full
//! parameters (slower, same shapes).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;

pub use report::Table;
