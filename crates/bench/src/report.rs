//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(c.len());
                } else {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Formats a `Duration` as engineering-friendly text.
pub fn fmt_dur(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0} µs")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(&["xxxxx".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("xxxxx"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_micros(231)), "231 µs");
        assert_eq!(fmt_dur(Duration::from_micros(34_868)), "34.87 ms");
        assert_eq!(fmt_dur(Duration::from_secs(62)), "62.00 s");
    }
}
