//! Smoke tests of the experiment harness: the cheap experiments run at
//! quick scale and their headline invariants hold.

use bench::experiments::{ablate, state, sync, Scale};

#[test]
fn fig7b_single_stage_beats_multi_stage() {
    let t = sync::fig7b(Scale::Quick);
    let rendered = t.render();
    assert!(rendered.contains("stage per iteration"));
    assert!(rendered.contains("one stage + barrier"));
}

#[test]
fn fig7c_orders_the_three_solutions() {
    let (_, [local, dso, cloud]) = sync::fig7c(Scale::Quick);
    assert!(local <= dso * 2, "local {local:?} vs dso {dso:?}");
    assert!(dso <= cloud * 2, "dso {dso:?} vs cloud {cloud:?}");
    // The DSO overhead is small, not an order of magnitude.
    let ratio = dso.as_secs_f64() / local.as_secs_f64();
    assert!((0.95..1.5).contains(&ratio), "dso/local = {ratio}");
}

#[test]
fn ablate_barrier_push_beats_poll() {
    let (_, (push, poll)) = ablate::ablate_barrier(Scale::Quick);
    assert!(
        poll > push * 5,
        "polling ({poll:?}) must be far slower than the parked-call barrier ({push:?})"
    );
}

#[test]
fn table4_renders_all_four_apps() {
    let t = state::table4();
    let rendered = t.render();
    for app in ["Monte Carlo", "Logistic Regression", "k-means", "Santa Claus"] {
        assert!(rendered.contains(app), "missing {app} in:\n{rendered}");
    }
}
