//! # cloudstore — the storage baselines the paper compares against
//!
//! Simulated equivalents of the AWS services used in the evaluation:
//!
//! * [`s3`] — a disaggregated object store with ~23–35 ms operations, long
//!   latency tails and an optional eventual-consistency window (Table 2,
//!   Fig. 6's PyWren/S3 synchronization baseline).
//! * [`redis`] — a sharded, single-threaded in-memory KV store with
//!   server-side scripts (Table 2's Redis row, Fig. 2a, the Redis tier of
//!   Fig. 5).
//! * [`queue`] — SQS-like polling queues and an SNS-like topic service
//!   (the synchronization baselines of Fig. 6 and Fig. 7a).
//!
//! Each service is a handful of simulated processes with a calibrated
//! latency/cost profile; see `DESIGN.md` for the calibration table.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod queue;
pub mod redis;
pub mod s3;

pub use queue::{spawn_sns, spawn_sqs, QueueConfig, SnsHandle, SqsHandle};
pub use redis::{spawn_redis, RedisConfig, RedisHandle, RedisScript, ScriptRegistry};
pub use s3::{spawn_s3, S3Config, S3Handle};
