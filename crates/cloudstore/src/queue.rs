//! SQS-like polling queues and an SNS-like notification topic service.
//!
//! These are the "standard AWS toolkit" baselines of §6.3: coordination
//! built on them pays tens of milliseconds per hop *and* needs active
//! polling, which is exactly what Fig. 6 and Fig. 7a hold against them.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use simcore::{Addr, Ctx, LatencyModel, Msg, Request, Sim, WaitKind};

/// Latency profile of the queue/notification services.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct QueueConfig {
    /// One-way latency of an SQS API call (send/receive leg).
    pub sqs_half: LatencyModel,
    /// Extra delivery delay from an SNS publish to the subscribed queues.
    pub sns_fanout: LatencyModel,
    /// Time before a sent message becomes receivable: SQS delivery is
    /// eventually consistent across its storage hosts, so fresh messages
    /// routinely miss the next few `Receive` calls (the "significant
    /// latency, sometimes hundreds of milliseconds" of §1).
    pub delivery_delay: LatencyModel,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            // SQS round trip ≈ 2*9ms*(1+0.4 tail) ≈ 15–40 ms.
            sqs_half: LatencyModel::exp_tail(Duration::from_millis(9), 0.4),
            // SNS→SQS propagation: tens of ms with a long tail.
            sns_fanout: LatencyModel::exp_tail(Duration::from_millis(40), 0.8),
            delivery_delay: LatencyModel::exp_tail(Duration::from_millis(300), 1.0),
        }
    }
}

#[derive(Debug)]
enum SqsReq {
    Send { queue: String, body: Vec<u8> },
    Receive { queue: String, max: usize },
    Purge { queue: String },
}

#[derive(Debug)]
enum SqsResp {
    Ok,
    Messages(Vec<Vec<u8>>),
}

/// Internal message used by the SNS service to enqueue into SQS without a
/// reply (fire-and-forget fan-out).
#[derive(Debug)]
struct FanoutDeliver {
    queue: String,
    body: Vec<u8>,
}

/// Spawns the SQS-like service.
pub fn spawn_sqs(sim: &Sim, cfg: QueueConfig) -> SqsHandle {
    let inbox = sim.mailbox("sqs");
    let service_cfg = cfg.clone();
    sim.spawn_daemon("sqs", move |ctx| sqs_loop(ctx, inbox, service_cfg));
    SqsHandle { addr: inbox, cfg }
}

/// Cheap, `Send` handle to the SQS-like service; serializable so it can
/// ship inside a cloud-function payload.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SqsHandle {
    addr: Addr,
    cfg: QueueConfig,
}

impl SqsHandle {
    /// Tells the deadlock detector this process is about to block on the
    /// queue daemon.
    fn annotate(&self, ctx: &mut Ctx, op: &str) {
        ctx.annotate_wait(self.addr.into_raw(), WaitKind::Call, "sqs", format!("SqsHandle::{op}"));
    }

    /// Enqueues a message.
    pub fn send(&self, ctx: &mut Ctx, queue: &str, body: Vec<u8>) {
        let lat = self.cfg.sqs_half.sample(ctx.rng());
        self.annotate(ctx, "send");
        match ctx.call::<SqsReq, SqsResp>(
            self.addr,
            SqsReq::Send { queue: queue.to_string(), body },
            lat,
        ) {
            SqsResp::Ok => {}
            other => panic!("protocol: SEND must return Ok, got {other:?}"),
        }
    }

    /// Polls up to `max` messages; may return an empty batch (short poll).
    pub fn receive(&self, ctx: &mut Ctx, queue: &str, max: usize) -> Vec<Vec<u8>> {
        let lat = self.cfg.sqs_half.sample(ctx.rng());
        self.annotate(ctx, "receive");
        match ctx.call::<SqsReq, SqsResp>(
            self.addr,
            SqsReq::Receive { queue: queue.to_string(), max },
            lat,
        ) {
            SqsResp::Messages(m) => m,
            other => panic!("protocol: RECEIVE must return Messages, got {other:?}"),
        }
    }

    /// Drops all messages in a queue.
    pub fn purge(&self, ctx: &mut Ctx, queue: &str) {
        let lat = self.cfg.sqs_half.sample(ctx.rng());
        match ctx.call::<SqsReq, SqsResp>(
            self.addr,
            SqsReq::Purge { queue: queue.to_string() },
            lat,
        ) {
            SqsResp::Ok => {}
            other => panic!("protocol: PURGE must return Ok, got {other:?}"),
        }
    }
}

fn sqs_loop(ctx: &mut Ctx, inbox: Addr, cfg: QueueConfig) {
    // (visible_at, body) per queue; messages are receivable only once
    // their delivery delay has elapsed.
    let mut queues: HashMap<String, VecDeque<(simcore::SimTime, Vec<u8>)>> = HashMap::new();
    loop {
        let msg = ctx.recv(inbox);
        // Fan-out deliveries from SNS arrive as plain messages, already
        // delayed by the fan-out latency.
        let msg = match msg.try_take::<FanoutDeliver>() {
            Ok(f) => {
                let at = ctx.now();
                queues.entry(f.queue).or_default().push_back((at, f.body));
                continue;
            }
            Err(m) => m,
        };
        let (reply_to, req) = msg.take::<Request>().take::<SqsReq>();
        let resp = match req {
            SqsReq::Send { queue, body } => {
                let visible_at = ctx.now() + cfg.delivery_delay.sample(ctx.rng());
                queues.entry(queue).or_default().push_back((visible_at, body));
                SqsResp::Ok
            }
            SqsReq::Receive { queue, max } => {
                let now = ctx.now();
                let q = queues.entry(queue).or_default();
                let mut out = Vec::new();
                let mut i = 0;
                while i < q.len() && out.len() < max {
                    if q[i].0 <= now {
                        let (_, body) = q.remove(i).expect("index in range");
                        out.push(body);
                    } else {
                        i += 1;
                    }
                }
                SqsResp::Messages(out)
            }
            SqsReq::Purge { queue } => {
                queues.remove(&queue);
                SqsResp::Ok
            }
        };
        let lat = cfg.sqs_half.sample(ctx.rng());
        ctx.reply(reply_to, resp, lat);
    }
}

// ---------------------------------------------------------------------------
// SNS
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum SnsReq {
    Subscribe { topic: String, queue: String },
    Publish { topic: String, body: Vec<u8> },
}

#[derive(Debug)]
struct SnsAck;

/// Spawns the SNS-like topic service, delivering into the given SQS.
pub fn spawn_sns(sim: &Sim, cfg: QueueConfig, sqs: &SqsHandle) -> SnsHandle {
    let inbox = sim.mailbox("sns");
    let sqs_addr = sqs.addr;
    let service_cfg = cfg.clone();
    sim.spawn_daemon("sns", move |ctx| sns_loop(ctx, inbox, sqs_addr, service_cfg));
    SnsHandle { addr: inbox, cfg }
}

/// Cheap, `Send` handle to the SNS-like service.
#[derive(Clone, Debug)]
pub struct SnsHandle {
    addr: Addr,
    cfg: QueueConfig,
}

impl SnsHandle {
    /// Tells the deadlock detector this process is about to block on the
    /// topic daemon.
    fn annotate(&self, ctx: &mut Ctx, op: &str) {
        ctx.annotate_wait(self.addr.into_raw(), WaitKind::Call, "sns", format!("SnsHandle::{op}"));
    }

    /// Subscribes an SQS queue to a topic.
    pub fn subscribe(&self, ctx: &mut Ctx, topic: &str, queue: &str) {
        let lat = self.cfg.sqs_half.sample(ctx.rng());
        self.annotate(ctx, "subscribe");
        let SnsAck = ctx.call(
            self.addr,
            SnsReq::Subscribe { topic: topic.to_string(), queue: queue.to_string() },
            lat,
        );
    }

    /// Publishes to a topic; the message fans out to subscribed queues.
    pub fn publish(&self, ctx: &mut Ctx, topic: &str, body: Vec<u8>) {
        let lat = self.cfg.sqs_half.sample(ctx.rng());
        self.annotate(ctx, "publish");
        let SnsAck = ctx.call(self.addr, SnsReq::Publish { topic: topic.to_string(), body }, lat);
    }
}

fn sns_loop(ctx: &mut Ctx, inbox: Addr, sqs: Addr, cfg: QueueConfig) {
    let mut subs: HashMap<String, Vec<String>> = HashMap::new();
    loop {
        let (reply_to, req) = ctx.recv(inbox).take::<Request>().take::<SnsReq>();
        match req {
            SnsReq::Subscribe { topic, queue } => {
                let entry = subs.entry(topic).or_default();
                if !entry.contains(&queue) {
                    entry.push(queue);
                }
            }
            SnsReq::Publish { topic, body } => {
                for q in subs.get(&topic).into_iter().flatten() {
                    let lat = cfg.sns_fanout.sample(ctx.rng());
                    ctx.send(
                        sqs,
                        Msg::new(FanoutDeliver { queue: q.clone(), body: body.clone() }),
                        lat,
                    );
                }
            }
        }
        let lat = cfg.sqs_half.sample(ctx.rng());
        ctx.reply(reply_to, SnsAck, lat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use simcore::SimTime;
    use std::sync::Arc;

    fn fast_cfg() -> QueueConfig {
        QueueConfig {
            sqs_half: LatencyModel::fixed(Duration::from_millis(5)),
            sns_fanout: LatencyModel::fixed(Duration::from_millis(20)),
            delivery_delay: LatencyModel::fixed(Duration::ZERO),
        }
    }

    #[test]
    fn send_receive_fifo() {
        let mut sim = Sim::new(1);
        let sqs = spawn_sqs(&sim, fast_cfg());
        sim.spawn("app", move |ctx| {
            assert!(sqs.receive(ctx, "q", 10).is_empty());
            sqs.send(ctx, "q", vec![1]);
            sqs.send(ctx, "q", vec![2]);
            sqs.send(ctx, "q", vec![3]);
            assert_eq!(sqs.receive(ctx, "q", 2), vec![vec![1], vec![2]]);
            assert_eq!(sqs.receive(ctx, "q", 2), vec![vec![3]]);
            sqs.send(ctx, "q", vec![4]);
            sqs.purge(ctx, "q");
            assert!(sqs.receive(ctx, "q", 10).is_empty());
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn polling_pays_latency_per_attempt() {
        let mut sim = Sim::new(2);
        let sqs = spawn_sqs(&sim, fast_cfg());
        sim.spawn("poller", move |ctx| {
            for _ in 0..10 {
                assert!(sqs.receive(ctx, "empty", 1).is_empty());
            }
            // Each empty receive costs a full 10 ms round trip.
            assert_eq!(ctx.now(), SimTime::from_millis(100));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn sns_fans_out_to_subscribed_queues() {
        let mut sim = Sim::new(3);
        let sqs = spawn_sqs(&sim, fast_cfg());
        let sns = spawn_sns(&sim, fast_cfg(), &sqs);
        let got = Arc::new(Mutex::new(Vec::<String>::new()));
        {
            let (sqs, sns, got) = (sqs.clone(), sns.clone(), got.clone());
            sim.spawn("app", move |ctx| {
                sns.subscribe(ctx, "t", "qa");
                sns.subscribe(ctx, "t", "qb");
                sns.subscribe(ctx, "t", "qa"); // duplicate ignored
                sns.publish(ctx, "t", b"hello".to_vec());
                ctx.sleep(Duration::from_millis(100));
                for q in ["qa", "qb"] {
                    let msgs = sqs.receive(ctx, q, 10);
                    assert_eq!(msgs.len(), 1, "queue {q}");
                    got.lock().push(q.to_string());
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        assert_eq!(got.lock().len(), 2);
    }

    #[test]
    fn default_latencies_are_tens_of_ms() {
        let mut sim = Sim::new(4);
        let sqs = spawn_sqs(&sim, QueueConfig::default());
        let avg = Arc::new(Mutex::new(Duration::ZERO));
        let avg2 = avg.clone();
        sim.spawn("probe", move |ctx| {
            const N: u32 = 100;
            let t0 = ctx.now();
            for _ in 0..N {
                sqs.send(ctx, "q", vec![0]);
            }
            *avg2.lock() = (ctx.now() - t0) / N;
        });
        sim.run_until_idle().expect_quiescent();
        let a = *avg.lock();
        assert!(a > Duration::from_millis(18) && a < Duration::from_millis(40), "{a:?}");
    }
}
