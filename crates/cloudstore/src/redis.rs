//! A Redis-like in-memory store: sharded, **single-threaded per shard**,
//! with registered server-side scripts (the stand-in for Lua).
//!
//! Two properties matter for the paper's comparisons (Fig. 2a, Fig. 5):
//!
//! * its optimized C core makes *simple* operations cheaper than the
//!   JVM-based DSO servers (Redis wins the simple-op throughput race by
//!   ~50 %), and
//! * each shard executes commands **serially**, so CPU-heavy scripts
//!   queue behind each other — no disjoint-access parallelism — which is
//!   why Crucial wins the complex-op race ~5×.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use simcore::{Addr, Ctx, LatencyModel, Request, Sim, WaitKind};

/// A server-side script: `(current value, args) -> (reply, new value)`.
/// The returned [`Duration`] is the CPU time the script burns on the
/// single-threaded shard.
pub type RedisScript =
    Arc<dyn Fn(Option<Vec<u8>>, &[u8]) -> (Vec<u8>, Option<Vec<u8>>, Duration) + Send + Sync>;

/// Registry of scripts, loaded into every shard (like `SCRIPT LOAD`).
#[derive(Clone, Default)]
pub struct ScriptRegistry {
    scripts: HashMap<String, RedisScript>,
}

impl std::fmt::Debug for ScriptRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.scripts.keys().collect();
        names.sort();
        f.debug_struct("ScriptRegistry").field("scripts", &names).finish()
    }
}

impl ScriptRegistry {
    /// Creates an empty registry.
    pub fn new() -> ScriptRegistry {
        ScriptRegistry::default()
    }

    /// Registers a script under `name`.
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(Option<Vec<u8>>, &[u8]) -> (Vec<u8>, Option<Vec<u8>>, Duration)
            + Send
            + Sync
            + 'static,
    {
        self.scripts.insert(name.to_string(), Arc::new(f));
    }
}

/// Cost/latency profile, calibrated against Table 2 and Fig. 2a.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RedisConfig {
    /// One-way client↔shard latency.
    pub net: LatencyModel,
    /// CPU cost of a small GET/SET/EVAL dispatch on the shard.
    pub base_op_cost: Duration,
    /// Marginal CPU cost per payload byte (protocol + copy).
    pub per_byte_cost: Duration,
}

impl Default for RedisConfig {
    fn default() -> Self {
        RedisConfig {
            net: LatencyModel::uniform(Duration::from_micros(65), 0.10),
            base_op_cost: Duration::from_micros(3),
            // 1 KB payload ≈ 95 µs of shard CPU: GET(1KB) ≈ 65+98+65 ≈
            // 230 µs end-to-end, Table 2's Redis row.
            per_byte_cost: Duration::from_nanos(93),
        }
    }
}

#[derive(Debug)]
enum RedisReq {
    Get { key: String },
    Set { key: String, value: Vec<u8> },
    Eval { script: String, key: String, args: Vec<u8> },
}

#[derive(Debug)]
enum RedisResp {
    Value(Option<Vec<u8>>),
    Ok,
    ScriptReply(Vec<u8>),
    NoScript(String),
}

/// A running Redis-like deployment (one process per shard). Serializable
/// so it can ship inside a cloud-function payload.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RedisHandle {
    shards: Vec<Addr>,
    cfg: RedisConfig,
}

/// Spawns `shards` single-threaded shard processes.
pub fn spawn_redis(
    sim: &Sim,
    shards: u32,
    cfg: RedisConfig,
    scripts: ScriptRegistry,
) -> RedisHandle {
    assert!(shards >= 1, "need at least one shard");
    let mut addrs = Vec::new();
    for s in 0..shards {
        let inbox = sim.mailbox(&format!("redis-{s}"));
        addrs.push(inbox);
        let cfg = cfg.clone();
        let scripts = scripts.clone();
        sim.spawn_daemon(&format!("redis-{s}"), move |ctx| {
            shard_loop(ctx, inbox, cfg, scripts);
        });
    }
    RedisHandle { shards: addrs, cfg }
}

impl RedisHandle {
    fn shard_of(&self, key: &str) -> Addr {
        let h = fnv(key);
        self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Tells the deadlock detector this process is about to block on a
    /// shard daemon.
    fn annotate(&self, ctx: &mut Ctx, shard: Addr, op: &str) {
        ctx.annotate_wait(shard.into_raw(), WaitKind::Call, "redis", format!("RedisHandle::{op}"));
    }

    /// Reads a key.
    pub fn get(&self, ctx: &mut Ctx, key: &str) -> Option<Vec<u8>> {
        let lat = self.cfg.net.sample(ctx.rng());
        self.annotate(ctx, self.shard_of(key), "get");
        match ctx.call::<RedisReq, RedisResp>(
            self.shard_of(key),
            RedisReq::Get { key: key.to_string() },
            lat,
        ) {
            RedisResp::Value(v) => v,
            other => panic!("protocol: GET must return Value, got {other:?}"),
        }
    }

    /// Writes a key.
    pub fn set(&self, ctx: &mut Ctx, key: &str, value: Vec<u8>) {
        let lat = self.cfg.net.sample(ctx.rng());
        self.annotate(ctx, self.shard_of(key), "set");
        match ctx.call::<RedisReq, RedisResp>(
            self.shard_of(key),
            RedisReq::Set { key: key.to_string(), value },
            lat,
        ) {
            RedisResp::Ok => {}
            other => panic!("protocol: SET must return Ok, got {other:?}"),
        }
    }

    /// Runs a registered script against a key.
    ///
    /// # Panics
    ///
    /// Panics if the script is not registered (a deployment error).
    pub fn eval(&self, ctx: &mut Ctx, script: &str, key: &str, args: Vec<u8>) -> Vec<u8> {
        let lat = self.cfg.net.sample(ctx.rng());
        self.annotate(ctx, self.shard_of(key), "eval");
        match ctx.call::<RedisReq, RedisResp>(
            self.shard_of(key),
            RedisReq::Eval { script: script.to_string(), key: key.to_string(), args },
            lat,
        ) {
            RedisResp::ScriptReply(v) => v,
            RedisResp::NoScript(s) => panic!("script {s} not loaded"),
            other => panic!("protocol: EVAL must return ScriptReply, got {other:?}"),
        }
    }
}

fn fnv(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Avalanche, for the same short-key reasons as the DSO ring.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

fn shard_loop(ctx: &mut Ctx, inbox: Addr, cfg: RedisConfig, scripts: ScriptRegistry) {
    let mut store: HashMap<String, Vec<u8>> = HashMap::new();
    loop {
        let (reply_to, req) = ctx.recv(inbox).take::<Request>().take::<RedisReq>();
        // Single-threaded: the shard is busy for the op's full CPU cost.
        let (resp, cost) = match req {
            RedisReq::Get { key } => {
                let v = store.get(&key).cloned();
                let bytes = v.as_ref().map_or(0, Vec::len);
                (RedisResp::Value(v), cfg.base_op_cost + cfg.per_byte_cost * bytes as u32)
            }
            RedisReq::Set { key, value } => {
                let cost = cfg.base_op_cost + cfg.per_byte_cost * value.len() as u32;
                store.insert(key, value);
                (RedisResp::Ok, cost)
            }
            RedisReq::Eval { script, key, args } => match scripts.scripts.get(&script) {
                Some(f) => {
                    let cur = store.remove(&key);
                    let (reply, new, script_cost) = f(cur, &args);
                    if let Some(n) = new {
                        store.insert(key, n);
                    }
                    (RedisResp::ScriptReply(reply), cfg.base_op_cost + script_cost)
                }
                None => (RedisResp::NoScript(script), cfg.base_op_cost),
            },
        };
        if !cost.is_zero() {
            ctx.compute(cost);
        }
        let lat = cfg.net.sample(ctx.rng());
        ctx.reply(reply_to, resp, lat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use simcore::SimTime;

    fn mul_scripts() -> ScriptRegistry {
        let mut reg = ScriptRegistry::new();
        // Simple: one multiplication on an f64 register.
        reg.register("mul", |cur, args| {
            let x: f64 = simcore::codec::from_bytes(args).expect("args");
            let v: f64 = cur.map(|b| simcore::codec::from_bytes(&b).expect("state")).unwrap_or(1.0);
            let out = v * x;
            (
                simcore::codec::to_bytes(&out).expect("encode"),
                Some(simcore::codec::to_bytes(&out).expect("encode")),
                Duration::from_micros(1),
            )
        });
        // Complex: n sequential multiplications at C speed (~35 ns each).
        reg.register("mul_n", |cur, args| {
            let (x, n): (f64, u32) = simcore::codec::from_bytes(args).expect("args");
            let v: f64 = cur.map(|b| simcore::codec::from_bytes(&b).expect("state")).unwrap_or(1.0);
            let mut out = v * x.powi(n.min(64) as i32);
            if !out.is_finite() || out == 0.0 {
                out = 1.0;
            }
            (
                simcore::codec::to_bytes(&out).expect("encode"),
                Some(simcore::codec::to_bytes(&out).expect("encode")),
                Duration::from_nanos(35) * n,
            )
        });
        reg
    }

    #[test]
    fn get_set_round_trip() {
        let mut sim = Sim::new(1);
        let redis = spawn_redis(&sim, 2, RedisConfig::default(), ScriptRegistry::new());
        sim.spawn("app", move |ctx| {
            assert_eq!(redis.get(ctx, "k"), None);
            redis.set(ctx, "k", vec![1, 2, 3]);
            assert_eq!(redis.get(ctx, "k"), Some(vec![1, 2, 3]));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn kv_latency_matches_table2() {
        let mut sim = Sim::new(2);
        let redis = spawn_redis(&sim, 2, RedisConfig::default(), ScriptRegistry::new());
        let out = std::sync::Arc::new(Mutex::new(Duration::ZERO));
        let out2 = out.clone();
        sim.spawn("probe", move |ctx| {
            let payload = vec![0u8; 1024];
            redis.set(ctx, "warm", payload.clone());
            const N: u32 = 200;
            let t0 = ctx.now();
            for _ in 0..N {
                let _ = redis.get(ctx, "warm");
            }
            *out2.lock() = (ctx.now() - t0) / N;
        });
        sim.run_until_idle().expect_quiescent();
        let get = *out.lock();
        // Paper Table 2: ~229 µs for 1 KB GET.
        assert!(
            get > Duration::from_micros(190) && get < Duration::from_micros(280),
            "redis 1KB GET latency {get:?}"
        );
    }

    #[test]
    fn scripts_execute_serially_per_shard() {
        // Two 10ms scripts on the same shard finish at ~10ms and ~20ms:
        // single-threaded execution, unlike the DSO worker pool.
        let mut sim = Sim::new(3);
        let mut reg = ScriptRegistry::new();
        reg.register("slow", |_cur, _args| (Vec::new(), None, Duration::from_millis(10)));
        let redis = spawn_redis(&sim, 1, RedisConfig::default(), reg);
        let ends = std::sync::Arc::new(Mutex::new(Vec::<SimTime>::new()));
        for i in 0..2 {
            let redis = redis.clone();
            let ends = ends.clone();
            sim.spawn(&format!("c{i}"), move |ctx| {
                let _ = redis.eval(ctx, "slow", "k", Vec::new());
                ends.lock().push(ctx.now());
            });
        }
        sim.run_until_idle().expect_quiescent();
        let ends = ends.lock();
        let (a, b) = (ends[0].min(ends[1]), ends[0].max(ends[1]));
        assert!(a >= SimTime::from_millis(10) && a < SimTime::from_millis(12), "{a}");
        assert!(b >= SimTime::from_millis(20) && b < SimTime::from_millis(22), "{b}");
    }

    #[test]
    fn eval_scripts_update_state() {
        let mut sim = Sim::new(4);
        let redis = spawn_redis(&sim, 2, RedisConfig::default(), mul_scripts());
        sim.spawn("app", move |ctx| {
            let args = simcore::codec::to_bytes(&2.0f64).expect("encode");
            let r = redis.eval(ctx, "mul", "x", args.clone());
            assert_eq!(simcore::codec::from_bytes::<f64>(&r).expect("decode"), 2.0);
            let r = redis.eval(ctx, "mul", "x", args);
            assert_eq!(simcore::codec::from_bytes::<f64>(&r).expect("decode"), 4.0);
            let args = simcore::codec::to_bytes(&(1.0f64, 10u32)).expect("encode");
            let r = redis.eval(ctx, "mul_n", "x", args);
            assert_eq!(simcore::codec::from_bytes::<f64>(&r).expect("decode"), 4.0);
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    #[should_panic(expected = "not loaded")]
    fn missing_script_panics_at_client() {
        let mut sim = Sim::new(5);
        let redis = spawn_redis(&sim, 1, RedisConfig::default(), ScriptRegistry::new());
        sim.spawn("app", move |ctx| {
            let _ = redis.eval(ctx, "nope", "k", Vec::new());
        });
        sim.run_until_idle();
    }

    #[test]
    fn keys_spread_across_shards() {
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[(fnv(&format!("key-{i}")) % 4) as usize] += 1;
        }
        for c in counts {
            assert!(c > 150, "shard imbalance: {counts:?}");
        }
    }
}
