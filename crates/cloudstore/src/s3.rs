//! An S3-like disaggregated object store.
//!
//! Calibrated against Table 2 of the paper: ~35 ms PUT and ~23 ms GET for
//! 1 KB payloads, with a long latency tail (Fig. 6's "high variability")
//! and optional read-after-write visibility delay (S3 was eventually
//! consistent for overwrites and LISTs in 2019).
//!
//! The service itself is infinitely parallel — the latency lives in the
//! request path, not in a server queue — which matches how S3 behaves for
//! the request rates of the paper's experiments.

use std::collections::BTreeMap;
use std::time::Duration;

use simcore::{Addr, Ctx, LatencyModel, Request, Sim, SimTime, WaitKind};

/// Latency/consistency profile of the store.
#[derive(Clone, Debug)]
pub struct S3Config {
    /// One-way request latency (half of the service time; applied on both
    /// legs of each call).
    pub half_put: LatencyModel,
    /// One-way latency for GETs.
    pub half_get: LatencyModel,
    /// One-way latency for LISTs.
    pub half_list: LatencyModel,
    /// Delay before a newly PUT object becomes visible to GET/LIST
    /// (eventual consistency window); zero disables it.
    pub visibility_delay: LatencyModel,
}

impl Default for S3Config {
    fn default() -> Self {
        // base*(1+tail) means: PUT ≈ 15.5ms*(1+0.12)*2 ≈ 34.8ms average,
        // GET ≈ 10.3ms*(1+0.12)*2 ≈ 23.0ms average (Table 2).
        S3Config {
            half_put: LatencyModel::exp_tail(Duration::from_micros(15_500), 0.12),
            half_get: LatencyModel::exp_tail(Duration::from_micros(10_300), 0.12),
            half_list: LatencyModel::exp_tail(Duration::from_micros(11_000), 0.25),
            visibility_delay: LatencyModel::exp_tail(Duration::from_millis(20), 1.0),
        }
    }
}

#[derive(Debug)]
enum S3Req {
    Put { key: String, value: Vec<u8> },
    Get { key: String },
    Delete { key: String },
    DeleteMany { keys: Vec<String> },
    List { prefix: String },
}

#[derive(Debug)]
enum S3Resp {
    Ok,
    Value(Option<Vec<u8>>),
    Keys(Vec<String>),
}

/// Spawns the store; returns a client factory handle.
pub fn spawn_s3(sim: &Sim, cfg: S3Config) -> S3Handle {
    let inbox = sim.mailbox("s3");
    let service_cfg = cfg.clone();
    sim.spawn_daemon("s3", move |ctx| {
        s3_loop(ctx, inbox, service_cfg);
    });
    S3Handle { addr: inbox, cfg }
}

/// Cheap, `Send` handle to the store.
#[derive(Clone, Debug)]
pub struct S3Handle {
    addr: Addr,
    cfg: S3Config,
}

impl S3Handle {
    /// Tells the deadlock detector this process is about to block on the
    /// store daemon.
    fn annotate(&self, ctx: &mut Ctx, op: &str) {
        ctx.annotate_wait(self.addr.into_raw(), WaitKind::Call, "s3", format!("S3Handle::{op}"));
    }

    /// Stores an object (ignores any previous value).
    pub fn put(&self, ctx: &mut Ctx, key: &str, value: Vec<u8>) {
        let lat = self.cfg.half_put.sample(ctx.rng());
        self.annotate(ctx, "put");
        let S3Resp::Ok =
            ctx.call::<S3Req, S3Resp>(self.addr, S3Req::Put { key: key.to_string(), value }, lat)
        else {
            panic!("protocol: PUT must return Ok");
        };
    }

    /// Fetches an object; `None` if absent (or not yet visible).
    pub fn get(&self, ctx: &mut Ctx, key: &str) -> Option<Vec<u8>> {
        let lat = self.cfg.half_get.sample(ctx.rng());
        self.annotate(ctx, "get");
        match ctx.call::<S3Req, S3Resp>(self.addr, S3Req::Get { key: key.to_string() }, lat) {
            S3Resp::Value(v) => v,
            other => panic!("protocol: GET must return Value, got {other:?}"),
        }
    }

    /// Deletes an object (idempotent).
    pub fn delete(&self, ctx: &mut Ctx, key: &str) {
        let lat = self.cfg.half_put.sample(ctx.rng());
        self.annotate(ctx, "delete");
        let S3Resp::Ok =
            ctx.call::<S3Req, S3Resp>(self.addr, S3Req::Delete { key: key.to_string() }, lat)
        else {
            panic!("protocol: DELETE must return Ok");
        };
    }

    /// Deletes a batch of objects in one request (the `DeleteObjects`
    /// API): one round trip regardless of the batch size, which is what
    /// keeps log garbage collection from scaling per-key. Idempotent;
    /// no-op on an empty batch.
    pub fn delete_many(&self, ctx: &mut Ctx, keys: Vec<String>) {
        if keys.is_empty() {
            return;
        }
        let lat = self.cfg.half_put.sample(ctx.rng());
        self.annotate(ctx, "delete_many");
        let S3Resp::Ok = ctx.call::<S3Req, S3Resp>(self.addr, S3Req::DeleteMany { keys }, lat)
        else {
            panic!("protocol: DELETE must return Ok");
        };
    }

    /// Lists visible keys with the given prefix, sorted.
    pub fn list(&self, ctx: &mut Ctx, prefix: &str) -> Vec<String> {
        let lat = self.cfg.half_list.sample(ctx.rng());
        self.annotate(ctx, "list");
        match ctx.call::<S3Req, S3Resp>(self.addr, S3Req::List { prefix: prefix.to_string() }, lat)
        {
            S3Resp::Keys(k) => k,
            other => panic!("protocol: LIST must return Keys, got {other:?}"),
        }
    }
}

fn s3_loop(ctx: &mut Ctx, inbox: Addr, cfg: S3Config) {
    let mut store: BTreeMap<String, (Vec<u8>, SimTime)> = BTreeMap::new();
    loop {
        let (reply_to, req) = ctx.recv(inbox).take::<Request>().take::<S3Req>();
        let now = ctx.now();
        let (resp, half) = match req {
            S3Req::Put { key, value } => {
                let visible_at = now + cfg.visibility_delay.sample(ctx.rng());
                store.insert(key, (value, visible_at));
                (S3Resp::Ok, &cfg.half_put)
            }
            S3Req::Get { key } => {
                let v = store.get(&key).filter(|(_, vis)| *vis <= now).map(|(v, _)| v.clone());
                (S3Resp::Value(v), &cfg.half_get)
            }
            S3Req::Delete { key } => {
                store.remove(&key);
                (S3Resp::Ok, &cfg.half_put)
            }
            S3Req::DeleteMany { keys } => {
                for key in keys {
                    store.remove(&key);
                }
                (S3Resp::Ok, &cfg.half_put)
            }
            S3Req::List { prefix } => {
                let keys = store
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .filter(|(_, (_, vis))| *vis <= now)
                    .map(|(k, _)| k.clone())
                    .collect();
                (S3Resp::Keys(keys), &cfg.half_list)
            }
        };
        let lat = half.sample(ctx.rng());
        ctx.reply(reply_to, resp, lat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn immediate_cfg() -> S3Config {
        S3Config { visibility_delay: LatencyModel::fixed(Duration::ZERO), ..S3Config::default() }
    }

    #[test]
    fn put_get_delete_list() {
        let mut sim = Sim::new(1);
        let s3 = spawn_s3(&sim, immediate_cfg());
        sim.spawn("app", move |ctx| {
            assert_eq!(s3.get(ctx, "a/1"), None);
            s3.put(ctx, "a/1", vec![1]);
            s3.put(ctx, "a/2", vec![2]);
            s3.put(ctx, "b/1", vec![3]);
            assert_eq!(s3.get(ctx, "a/1"), Some(vec![1]));
            assert_eq!(s3.list(ctx, "a/"), vec!["a/1".to_string(), "a/2".to_string()]);
            s3.delete(ctx, "a/1");
            assert_eq!(s3.get(ctx, "a/1"), None);
            assert_eq!(s3.list(ctx, "a/"), vec!["a/2".to_string()]);
            // Batched delete: one round trip clears the rest.
            let t0 = ctx.now();
            s3.delete_many(ctx, vec!["a/2".to_string(), "b/1".to_string()]);
            assert!(ctx.now() - t0 < Duration::from_millis(100), "one request, not per-key");
            assert!(s3.list(ctx, "").is_empty());
            s3.delete_many(ctx, Vec::new()); // empty batch is a free no-op
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn latency_matches_table2_magnitudes() {
        let mut sim = Sim::new(2);
        let s3 = spawn_s3(&sim, S3Config::default());
        let stats = Arc::new(Mutex::new((Duration::ZERO, Duration::ZERO)));
        let stats2 = stats.clone();
        sim.spawn("probe", move |ctx| {
            let payload = vec![0u8; 1024];
            const N: u32 = 300;
            let t0 = ctx.now();
            for i in 0..N {
                s3.put(ctx, &format!("k{i}"), payload.clone());
            }
            let put_avg = (ctx.now() - t0) / N;
            let t0 = ctx.now();
            for i in 0..N {
                let _ = s3.get(ctx, &format!("k{i}"));
            }
            let get_avg = (ctx.now() - t0) / N;
            *stats2.lock() = (put_avg, get_avg);
        });
        sim.run_until_idle().expect_quiescent();
        let (put, get) = *stats.lock();
        // Paper: 34.9 ms / 23.1 ms. Allow generous tolerance.
        assert!(put > Duration::from_millis(28) && put < Duration::from_millis(42), "put {put:?}");
        assert!(get > Duration::from_millis(18) && get < Duration::from_millis(29), "get {get:?}");
    }

    #[test]
    fn eventual_consistency_window_hides_fresh_puts() {
        let mut sim = Sim::new(3);
        let cfg = S3Config {
            visibility_delay: LatencyModel::fixed(Duration::from_secs(1)),
            ..S3Config::default()
        };
        let s3 = spawn_s3(&sim, cfg);
        sim.spawn("app", move |ctx| {
            s3.put(ctx, "fresh", vec![1]);
            // Right after the PUT completes the object is still invisible.
            assert_eq!(s3.get(ctx, "fresh"), None);
            assert!(s3.list(ctx, "").is_empty());
            ctx.sleep(Duration::from_secs(2));
            assert_eq!(s3.get(ctx, "fresh"), Some(vec![1]));
            assert_eq!(s3.list(ctx, ""), vec!["fresh".to_string()]);
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn concurrent_clients_do_not_queue() {
        // 50 parallel GETs should take about one GET latency, not 50.
        let mut sim = Sim::new(4);
        let s3 = spawn_s3(&sim, immediate_cfg());
        let end = Arc::new(Mutex::new(SimTime::ZERO));
        for i in 0..50 {
            let s3 = s3.clone();
            let end = end.clone();
            sim.spawn(&format!("c{i}"), move |ctx| {
                let _ = s3.get(ctx, "missing");
                let mut e = end.lock();
                if ctx.now() > *e {
                    *e = ctx.now();
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        assert!(*end.lock() < SimTime::from_millis(100), "S3 must not serialize requests");
    }
}
