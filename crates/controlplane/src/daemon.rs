//! The reconcile daemon: observe → decide → actuate, once per tick.
//!
//! The daemon is an ordinary simulated process on a [`Ticker`], so its
//! schedule is pure virtual time. Each tick it summarizes the metrics
//! registry into an [`Observed`] (counter deltas over the tick, series
//! means over the tick window), asks the [`ScalingPolicy`] for a
//! [`ScaleDecision`], and actuates: `DsoCluster::add_node_from` on `Out`,
//! graceful drain via `DsoCluster::remove_node_from` on `In`, and the
//! FaaS provisioned-concurrency floor from observed cold starts. Every
//! actuation is trace-spanned (`ctl.reconcile` → `ctl.scale_out` /
//! `ctl.drain`) and appended to the [`CtlHandle`] decision log, whose
//! rendering is byte-identical across identically-seeded runs.

use std::sync::Arc;
use std::time::Duration;

use dso::{Checkpointer, DsoClient, DsoCluster};
use faas::{FaasHandle, InvokeOpts};
use parking_lot::Mutex;
use simcore::{MetricsRegistry, Sim, SimTime, Ticker};

use crate::policy::{Observed, ScaleDecision, ScalingPolicy};

/// Configuration of the reconcile daemon.
#[derive(Clone, Debug)]
pub struct CtlConfig {
    /// Time between reconcile ticks.
    pub reconcile_interval: Duration,
    /// Never drain below this many live nodes.
    pub min_nodes: u32,
    /// Never scale out beyond this many live nodes.
    pub max_nodes: u32,
    /// Minimum spacing between scale-outs, so a freshly added node gets a
    /// chance to absorb load before the fleet grows again.
    pub scale_out_cooldown: Duration,
    /// Minimum spacing between drains, also counted from the last
    /// scale-out (never tear down what just went up).
    pub drain_cooldown: Duration,
    /// The FaaS pre-warming lever; `None` leaves provisioned concurrency
    /// alone.
    pub prewarm: Option<PrewarmConfig>,
    /// The durability lever: run a cluster checkpoint
    /// ([`dso::Checkpointer::run_once`]) whenever at least this much time
    /// has passed since the previous one, bounding both crash-recovery
    /// replay and WAL storage growth. `None` disables scheduling; it is
    /// also ignored when the cluster has no
    /// [`dso::DsoConfig::durability`] configured (there is no store to
    /// checkpoint to).
    pub checkpoint_interval: Option<Duration>,
}

impl Default for CtlConfig {
    fn default() -> CtlConfig {
        CtlConfig {
            reconcile_interval: Duration::from_secs(1),
            min_nodes: 1,
            max_nodes: 8,
            scale_out_cooldown: Duration::from_secs(3),
            drain_cooldown: Duration::from_secs(10),
            prewarm: None,
            checkpoint_interval: None,
        }
    }
}

/// The FaaS pre-warming lever: keep a floor of warm containers for one
/// function, sized from observed cold starts — but only while a cold
/// start is actually expensive.
///
/// Each tick that cold starts occurred, the floor rises by the number
/// observed (capped at `max_provisioned`); after `decay_ticks` quiet
/// ticks it decays by one, releasing warm capacity the workload no
/// longer needs. The rise is gated on the cost model: floors trade idle
/// GB-seconds against start latency, a trade that only pays while the
/// start `penalty` is at least `floor_threshold`. Under the snapshot
/// tier (restore ≈ 150–250 ms instead of 1.5 s) the gate closes and the
/// daemon stops buying floors — [`PrewarmConfig::for_platform`] wires
/// the platform's [`FaasConfig::expected_start_penalty`] in.
///
/// [`FaasConfig::expected_start_penalty`]: faas::FaasConfig::expected_start_penalty
#[derive(Clone, Debug)]
pub struct PrewarmConfig {
    /// Function whose pool the daemon manages.
    pub function: String,
    /// Hard cap on the provisioned floor.
    pub max_provisioned: u32,
    /// Cold-start-free ticks before the floor decays by one (default 5).
    pub decay_ticks: u32,
    /// What one cold start of this function costs its invoker (classic
    /// provision, snapshot restore, or fork, per the platform's policy).
    pub penalty: Duration,
    /// Floors only rise while `penalty >= floor_threshold`; below it,
    /// paying the start at the door is cheaper than idling containers
    /// (default 500 ms).
    pub floor_threshold: Duration,
}

impl PrewarmConfig {
    /// A pre-warm lever for `function` capped at `max_provisioned`,
    /// assuming classic 1.5 s cold starts (the pre-snapshot-tier
    /// behavior).
    pub fn new(function: &str, max_provisioned: u32) -> PrewarmConfig {
        PrewarmConfig {
            function: function.to_string(),
            max_provisioned,
            decay_ticks: 5,
            penalty: Duration::from_millis(1500),
            floor_threshold: Duration::from_millis(500),
        }
    }

    /// A pre-warm lever sized from `cfg`'s actual cold-start tier: the
    /// penalty is [`FaasConfig::expected_start_penalty`] at `memory_mb`,
    /// so a platform on snapshot restores (≈ 210 ms < the 500 ms
    /// threshold) disables floor raises entirely.
    ///
    /// [`FaasConfig::expected_start_penalty`]: faas::FaasConfig::expected_start_penalty
    pub fn for_platform(
        cfg: &faas::FaasConfig,
        memory_mb: u32,
        function: &str,
        max_provisioned: u32,
    ) -> PrewarmConfig {
        PrewarmConfig {
            penalty: cfg.expected_start_penalty(memory_mb),
            ..PrewarmConfig::new(function, max_provisioned)
        }
    }
}

/// One tick of the floor controller, as a pure function (unit-testable
/// without a simulation): given the current floor, quiet-tick count, and
/// the tick's observed cold starts, returns the next `(floor, calm_ticks)`.
///
/// Raising is gated on the cost model ([`PrewarmConfig::penalty`] vs
/// [`PrewarmConfig::floor_threshold`]); when starts are cheap, observed
/// cold starts no longer buy floors and an existing floor decays away.
pub fn next_floor(cfg: &PrewarmConfig, floor: u32, calm_ticks: u32, cold_delta: u32) -> (u32, u32) {
    let worth_prewarming = cfg.penalty >= cfg.floor_threshold;
    if cold_delta > 0 && worth_prewarming {
        ((floor + cold_delta).min(cfg.max_provisioned), 0)
    } else if floor > 0 {
        let calm = calm_ticks + 1;
        if calm >= cfg.decay_ticks {
            (floor - 1, 0)
        } else {
            (floor, calm)
        }
    } else {
        (0, 0)
    }
}

/// One actuation, as recorded in the decision log.
#[derive(Clone, Debug, PartialEq)]
pub enum CtlEvent {
    /// A node was added; `nodes` is the live count afterwards.
    ScaleOut {
        /// Tick time of the decision.
        at: SimTime,
        /// Live nodes after the add.
        nodes: u32,
    },
    /// A node began a graceful drain; `nodes` is the live count afterwards.
    Drain {
        /// Tick time of the decision.
        at: SimTime,
        /// Index of the drained node in `DsoCluster::servers`.
        node: usize,
        /// Live nodes after the drain.
        nodes: u32,
    },
    /// A scheduled cluster checkpoint completed.
    Checkpoint {
        /// Tick time of the decision.
        at: SimTime,
        /// Objects captured in the checkpoint blob.
        objects: usize,
        /// Marshalled bytes written to the store.
        bytes: usize,
    },
    /// The provisioned-concurrency floor changed.
    Prewarm {
        /// Tick time of the decision.
        at: SimTime,
        /// Function whose floor moved.
        function: String,
        /// The new floor.
        provisioned: u32,
    },
}

/// Handle to a running control plane: the decision log.
///
/// Cloneable; all clones observe the same log. [`CtlHandle::decision_log`]
/// renders the log deterministically, so two identically-seeded runs can
/// be compared byte-for-byte.
#[derive(Clone, Debug, Default)]
pub struct CtlHandle {
    events: Arc<Mutex<Vec<CtlEvent>>>,
}

impl CtlHandle {
    /// Snapshot of all actuations in decision order.
    pub fn events(&self) -> Vec<CtlEvent> {
        self.events.lock().clone()
    }

    /// Number of scale-outs so far.
    pub fn scale_outs(&self) -> usize {
        self.events.lock().iter().filter(|e| matches!(e, CtlEvent::ScaleOut { .. })).count()
    }

    /// Number of drains so far.
    pub fn drains(&self) -> usize {
        self.events.lock().iter().filter(|e| matches!(e, CtlEvent::Drain { .. })).count()
    }

    /// One line per actuation, e.g. `t=12.000s scale_out nodes=3`. The
    /// rendering is a pure function of the log, so identically-seeded runs
    /// produce byte-identical output — the determinism tests diff this.
    pub fn decision_log(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().iter() {
            match e {
                CtlEvent::ScaleOut { at, nodes } => {
                    out.push_str(&format!("t={at} scale_out nodes={nodes}\n"));
                }
                CtlEvent::Drain { at, node, nodes } => {
                    out.push_str(&format!("t={at} drain node={node} nodes={nodes}\n"));
                }
                CtlEvent::Checkpoint { at, objects, bytes } => {
                    out.push_str(&format!("t={at} checkpoint objects={objects} bytes={bytes}\n"));
                }
                CtlEvent::Prewarm { at, function, provisioned } => {
                    out.push_str(&format!("t={at} prewarm fn={function} n={provisioned}\n"));
                }
            }
        }
        out
    }
}

/// Counter values the daemon differentiates between ticks.
#[derive(Clone, Copy)]
struct CounterSnap {
    invokes: u64,
    shed: u64,
    cold_starts: u64,
}

impl CounterSnap {
    fn take(m: &MetricsRegistry) -> CounterSnap {
        CounterSnap {
            invokes: m.counter_value("dso.invokes"),
            shed: m.counter_value("dso.shed"),
            cold_starts: m.counter_value("faas.cold_starts"),
        }
    }
}

struct PrewarmState {
    cfg: PrewarmConfig,
    floor: u32,
    calm_ticks: u32,
}

/// Scheduling state of the checkpoint lever. Owns its own [`DsoClient`]
/// so checkpoint rounds never hold the cluster lock across blocking
/// calls, and the [`Checkpointer`] so sequence numbers stay monotonic
/// across rounds.
struct CkptState {
    interval: Duration,
    last: SimTime,
    cp: Checkpointer,
    cli: DsoClient,
}

/// Spawns the reconcile daemon.
///
/// The daemon owns no state of its own beyond the policy: it reads
/// `registry`, locks `cluster` only around actuations (never across a
/// blocking call), and optionally moves the provisioned-concurrency floor
/// of `faas`. It runs forever as a daemon process — the simulation stays
/// quiescible.
pub fn spawn_controlplane(
    sim: &Sim,
    cluster: Arc<Mutex<DsoCluster>>,
    faas: Option<FaasHandle>,
    registry: MetricsRegistry,
    mut policy: Box<dyn ScalingPolicy>,
    cfg: CtlConfig,
) -> CtlHandle {
    let handle = CtlHandle::default();
    let events = handle.events.clone();
    sim.spawn_daemon("controlplane", move |ctx| {
        let mut tick = Ticker::new(ctx.now(), cfg.reconcile_interval);
        let mut prev = CounterSnap::take(&registry);
        let mut prev_t = ctx.now();
        let mut last_scale_out: Option<SimTime> = None;
        let mut last_drain: Option<SimTime> = None;
        let mut prewarm =
            cfg.prewarm.clone().map(|cfg| PrewarmState { cfg, floor: 0, calm_ticks: 0 });
        let mut ckpt = cfg.checkpoint_interval.and_then(|interval| {
            let cl = cluster.lock();
            let d = cl.config().durability.clone()?;
            Some(CkptState {
                interval,
                last: ctx.now(),
                cp: Checkpointer::new(d),
                cli: cl.client_handle().connect(),
            })
        });
        loop {
            let now = tick.wait(ctx);
            let dt = now.saturating_duration_since(prev_t).as_secs_f64().max(1e-9);
            let snap = CounterSnap::take(&registry);
            let obs = Observed {
                request_rate: (snap.invokes - prev.invokes) as f64 / dt,
                shed_rate: (snap.shed - prev.shed) as f64 / dt,
                queue_depth: registry.series("dso.queue_depth").mean_in(prev_t, now).unwrap_or(0.0),
                cold_start_rate: (snap.cold_starts - prev.cold_starts) as f64 / dt,
                nodes: cluster.lock().live_nodes() as u32,
            };
            let span = ctx.span_begin("ctl.reconcile", "ctl");
            let decision = policy.decide(&obs);
            ctx.span_annotate(span, "policy", policy.name());
            ctx.span_annotate(span, "rate", format!("{:.1}", obs.request_rate));
            ctx.span_annotate(span, "shed_rate", format!("{:.1}", obs.shed_rate));
            ctx.span_annotate(span, "queue_depth", format!("{:.1}", obs.queue_depth));
            ctx.span_annotate(span, "nodes", format!("{}", obs.nodes));
            ctx.span_annotate(span, "decision", format!("{decision:?}"));
            match decision {
                ScaleDecision::Out => {
                    let cooling = last_scale_out
                        .is_some_and(|t| now.saturating_duration_since(t) < cfg.scale_out_cooldown);
                    let mut cl = cluster.lock();
                    if !cooling && (cl.live_nodes() as u32) < cfg.max_nodes {
                        let s = ctx.span_begin_under(span, "ctl.scale_out", "ctl");
                        cl.add_node_from(ctx);
                        let nodes = cl.live_nodes() as u32;
                        drop(cl);
                        ctx.metric_incr("ctl.scale_outs");
                        ctx.span_annotate(s, "nodes", format!("{nodes}"));
                        ctx.span_end(s);
                        events.lock().push(CtlEvent::ScaleOut { at: now, nodes });
                        last_scale_out = Some(now);
                    }
                }
                ScaleDecision::In => {
                    let cooling = last_drain
                        .into_iter()
                        .chain(last_scale_out)
                        .any(|t| now.saturating_duration_since(t) < cfg.drain_cooldown);
                    let mut cl = cluster.lock();
                    if !cooling && (cl.live_nodes() as u32) > cfg.min_nodes {
                        if let Some(idx) = cl.newest_live() {
                            let s = ctx.span_begin_under(span, "ctl.drain", "ctl");
                            cl.remove_node_from(ctx, idx);
                            let nodes = cl.live_nodes() as u32;
                            drop(cl);
                            ctx.metric_incr("ctl.drains");
                            ctx.span_annotate(s, "node", format!("{idx}"));
                            ctx.span_annotate(s, "nodes", format!("{nodes}"));
                            ctx.span_end(s);
                            events.lock().push(CtlEvent::Drain { at: now, node: idx, nodes });
                            last_drain = Some(now);
                        }
                    }
                }
                ScaleDecision::Hold => {}
            }
            if let (Some(f), Some(pw)) = (&faas, prewarm.as_mut()) {
                let cold_delta = (snap.cold_starts - prev.cold_starts) as u32;
                let (target, calm) = next_floor(&pw.cfg, pw.floor, pw.calm_ticks, cold_delta);
                pw.calm_ticks = calm;
                if target != pw.floor {
                    pw.floor = target;
                    f.invoke_with(ctx, &pw.cfg.function, Vec::new(), InvokeOpts::provision(target));
                    ctx.metric_push("ctl.provisioned", f64::from(target));
                    events.lock().push(CtlEvent::Prewarm {
                        at: now,
                        function: pw.cfg.function.clone(),
                        provisioned: target,
                    });
                }
            }
            if let Some(ck) = ckpt.as_mut() {
                if now.saturating_duration_since(ck.last) >= ck.interval {
                    ck.last = now;
                    let s = ctx.span_begin_under(span, "ctl.checkpoint", "ctl");
                    match ck.cp.run_once(ctx, &mut ck.cli) {
                        Ok(report) => {
                            ctx.span_annotate(s, "objects", report.objects.to_string());
                            ctx.span_annotate(s, "bytes", report.bytes.to_string());
                            events.lock().push(CtlEvent::Checkpoint {
                                at: now,
                                objects: report.objects,
                                bytes: report.bytes,
                            });
                        }
                        Err(e) => {
                            ctx.metric_incr("ctl.checkpoint_failures");
                            ctx.span_annotate(s, "outcome", format!("{e:?}"));
                        }
                    }
                    ctx.span_end(s);
                }
            }
            ctx.metric_push("ctl.nodes", cluster.lock().live_nodes() as f64);
            ctx.span_end(span);
            prev = snap;
            prev_t = now;
        }
    });
    handle
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas::{ColdStartPolicy, FaasConfig, SnapshotConfig, FULL_VCPU_MB};

    #[test]
    fn checkpoint_lever_runs_on_its_own_cadence() {
        use cloudstore::{spawn_s3, S3Config};
        use dso::{api, DsoConfig, DurabilityConfig, DurabilityStore, ObjectRegistry};

        let mut sim = Sim::new(7);
        let registry = MetricsRegistry::new();
        sim.set_metrics(&registry);
        let s3 = spawn_s3(&sim, S3Config::default());
        let d = DurabilityConfig::new(DurabilityStore::new(s3, "ctl"));
        let cfg = DsoConfig { durability: Some(d), ..DsoConfig::default() };
        let cluster =
            Arc::new(Mutex::new(DsoCluster::start(&sim, 2, cfg, ObjectRegistry::with_builtins())));
        let handle = cluster.lock().client_handle();
        let ctl = spawn_controlplane(
            &sim,
            cluster,
            None,
            registry,
            Box::new(crate::policy::TargetTracking::new(1e6)),
            CtlConfig {
                reconcile_interval: Duration::from_millis(100),
                checkpoint_interval: Some(Duration::from_millis(400)),
                ..CtlConfig::default()
            },
        );
        sim.spawn("app", move |ctx| {
            let mut cli = handle.connect();
            for i in 0..8 {
                api::AtomicLong::new(&format!("c{i}")).set(ctx, &mut cli, i).expect("dso");
            }
        });
        sim.run_until(SimTime::from_secs(2));
        let ckpts: Vec<_> = ctl
            .events()
            .into_iter()
            .filter_map(|e| match e {
                CtlEvent::Checkpoint { objects, .. } => Some(objects),
                _ => None,
            })
            .collect();
        // 2 s of run at one checkpoint per 400 ms, minus start-up slack.
        assert!(ckpts.len() >= 3, "expected several scheduled checkpoints, got {ckpts:?}");
        assert!(ckpts.contains(&8), "a checkpoint captured the full dataset");
        assert!(ctl.decision_log().contains(" checkpoint objects="), "log renders the lever");
    }

    #[test]
    fn floor_rises_with_cold_starts_and_decays_when_calm() {
        let cfg = PrewarmConfig::new("f", 4);
        assert_eq!(next_floor(&cfg, 0, 0, 3), (3, 0), "raise by the delta");
        assert_eq!(next_floor(&cfg, 3, 0, 5), (4, 0), "capped at max_provisioned");
        // Four calm ticks hold, the fifth decays by one and resets calm.
        let (mut floor, mut calm) = (4, 0);
        for _ in 0..4 {
            let next = next_floor(&cfg, floor, calm, 0);
            floor = next.0;
            calm = next.1;
        }
        assert_eq!((floor, calm), (4, 4));
        assert_eq!(next_floor(&cfg, floor, calm, 0), (3, 0));
        assert_eq!(next_floor(&cfg, 0, 0, 0), (0, 0), "no floor, nothing to decay");
    }

    #[test]
    fn cheap_starts_close_the_floor_gate() {
        let cfg =
            PrewarmConfig { penalty: Duration::from_millis(210), ..PrewarmConfig::new("f", 4) };
        // Cold starts no longer buy floors; they count as calm ticks, so
        // an existing floor drifts down even under sustained cold starts.
        assert_eq!(next_floor(&cfg, 0, 0, 3), (0, 0));
        assert_eq!(next_floor(&cfg, 2, 3, 1), (2, 4));
        assert_eq!(next_floor(&cfg, 2, 4, 1), (1, 0));
    }

    #[test]
    fn for_platform_sizes_the_penalty_from_the_tier() {
        let classic = FaasConfig::default();
        let pw = PrewarmConfig::for_platform(&classic, FULL_VCPU_MB, "f", 8);
        assert_eq!(pw.penalty, classic.cold_start.base);
        assert!(pw.penalty >= pw.floor_threshold, "classic starts are worth prewarming");

        let snap = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::SnapshotRestore)
            .snapshot(SnapshotConfig::default())
            .build()
            .expect("valid config");
        let pw = PrewarmConfig::for_platform(&snap, FULL_VCPU_MB, "f", 8);
        assert!(
            pw.penalty < pw.floor_threshold,
            "a ~210 ms restore is cheaper than idling a floor: {:?}",
            pw.penalty
        );
    }
}
