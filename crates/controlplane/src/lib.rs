//! # controlplane — the elastic control plane of the Crucial reproduction
//!
//! Crucial's evaluation (Fig. 8) scales the DSO tier by hand: the harness
//! adds a node mid-run and watches throughput recover. This crate closes
//! the loop. A simulated daemon ([`spawn_controlplane`]) runs a periodic
//! reconcile tick on a virtual-time [`simcore::Ticker`], reads the shared
//! [`simcore::MetricsRegistry`] (request rate, shed rate, dispatcher queue
//! depth, FaaS cold starts), and actuates three levers:
//!
//! 1. **DSO horizontal scaling** — `DsoCluster::add_node_from` on
//!    sustained overload, graceful drain (`remove_node_from`) on sustained
//!    underload, bounded by min/max fleet sizes and cooldowns.
//! 2. **FaaS pre-warming** — a provisioned-concurrency floor per function,
//!    raised from observed cold starts and decayed when they stop
//!    ([`PrewarmConfig`]).
//! 3. **Admission control** — the token-bucket load-shedder lives in the
//!    DSO servers (`dso::AdmissionConfig`); the daemon observes its shed
//!    rate as an overload signal, closing the feedback loop.
//! 4. **Durability checkpoints** — when the cluster persists a WAL
//!    (`dso::DurabilityConfig`), the daemon can run
//!    `dso::Checkpointer::run_once` on its own cadence
//!    ([`CtlConfig::checkpoint_interval`]), bounding crash-recovery replay
//!    and garbage-collecting subsumed log segments.
//!
//! Policies are pluggable ([`ScalingPolicy`]): [`TargetTracking`] sizes
//! the fleet to a per-node request rate, [`StepScaling`] reacts to queue
//! depth. Both are deterministic hysteresis machines, so identically
//! seeded runs make byte-identical decisions ([`CtlHandle::decision_log`]).
//! Every actuation is trace-spanned (`ctl.reconcile`, `ctl.scale_out`,
//! `ctl.drain`) for the Chrome-trace export.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! use controlplane::{spawn_controlplane, CtlConfig, TargetTracking};
//! use dso::{api, DsoCluster, DsoConfig, ObjectRegistry};
//! use parking_lot::Mutex;
//! use simcore::{MetricsRegistry, Sim};
//!
//! let mut sim = Sim::new(1);
//! let registry = MetricsRegistry::new();
//! sim.set_metrics(&registry);
//! let cluster = Arc::new(Mutex::new(DsoCluster::start(
//!     &sim, 1, DsoConfig::default(), ObjectRegistry::with_builtins())));
//! let handle = cluster.lock().client_handle();
//! let ctl = spawn_controlplane(
//!     &sim,
//!     cluster,
//!     None,
//!     registry,
//!     Box::new(TargetTracking::new(50.0)),
//!     CtlConfig { reconcile_interval: Duration::from_millis(500), ..CtlConfig::default() },
//! );
//! sim.spawn("app", move |ctx| {
//!     let mut cli = handle.connect();
//!     let c = api::AtomicLong::new("hits");
//!     for _ in 0..200 {
//!         c.increment_and_get(ctx, &mut cli).expect("dso");
//!     }
//! });
//! sim.run_until_idle().expect_quiescent();
//! // A single steady client does not trip the scaler.
//! assert_eq!(ctl.scale_outs() + ctl.drains(), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod daemon;
mod policy;

pub use daemon::{next_floor, spawn_controlplane, CtlConfig, CtlEvent, CtlHandle, PrewarmConfig};
pub use policy::{Observed, ScaleDecision, ScalingPolicy, StepScaling, TargetTracking};
