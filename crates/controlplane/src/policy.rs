//! Pluggable scaling policies: the *decision* half of the reconcile loop.
//!
//! A policy sees one [`Observed`] summary per tick and answers with a
//! [`ScaleDecision`]. Policies are plain deterministic state machines —
//! hysteresis counters, no clocks, no randomness — so identically-seeded
//! runs make identical decisions. Two classics are provided:
//! [`TargetTracking`] (size the fleet to a per-node request rate, the
//! default) and [`StepScaling`] (react to queue-depth thresholds).

/// One reconcile tick's observations, computed by the daemon from the
/// metrics registry (counter deltas over the tick interval, series means
/// over the tick window).
#[derive(Clone, Debug, PartialEq)]
pub struct Observed {
    /// DSO invocations per second since the previous tick.
    pub request_rate: f64,
    /// Admission-shed DSO requests per second since the previous tick.
    pub shed_rate: f64,
    /// Mean dispatcher queue depth over the tick window (0 when no node
    /// reported).
    pub queue_depth: f64,
    /// FaaS cold starts per second since the previous tick.
    pub cold_start_rate: f64,
    /// Live DSO storage nodes.
    pub nodes: u32,
}

/// What to do with the DSO tier this tick.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Add a node.
    Out,
    /// Drain (gracefully remove) a node.
    In,
    /// Leave the fleet alone.
    Hold,
}

/// A scaling policy: a deterministic map from observations to decisions.
///
/// Implementations keep their own hysteresis state (e.g. "overloaded for
/// N consecutive ticks") and must not consult anything but the passed
/// [`Observed`] — wall clocks or ambient randomness would break the
/// simulation's determinism guarantee.
pub trait ScalingPolicy: Send {
    /// Decides this tick.
    fn decide(&mut self, obs: &Observed) -> ScaleDecision;

    /// Short name used in trace annotations.
    fn name(&self) -> &'static str;
}

/// Target tracking: keep the per-node request rate near a target, the
/// moral equivalent of AWS's target-tracking scaling on a utilization
/// metric.
///
/// Overload means the observed rate exceeds `high × target × nodes` (or
/// requests are being shed at all — shedding is overload by definition);
/// underload means the rate would comfortably fit on one fewer node
/// (below `low × target × (nodes − 1)`). Either condition must hold for
/// `sustain` consecutive ticks before the policy acts, so transient
/// spikes do not flap the fleet.
#[derive(Clone, Debug)]
pub struct TargetTracking {
    /// Requests per second one node serves comfortably.
    pub target_per_node: f64,
    /// Overload ratio (default 0.9): scale out above
    /// `high × target × nodes`.
    pub high: f64,
    /// Underload ratio (default 0.6): scale in below
    /// `low × target × (nodes − 1)`.
    pub low: f64,
    /// Consecutive ticks a condition must hold before acting (default 3).
    pub sustain: u32,
    hot: u32,
    cold: u32,
}

impl TargetTracking {
    /// A policy targeting `target_per_node` requests/s per node with the
    /// default hysteresis (high 0.9, low 0.6, sustain 3).
    pub fn new(target_per_node: f64) -> TargetTracking {
        TargetTracking { target_per_node, high: 0.9, low: 0.6, sustain: 3, hot: 0, cold: 0 }
    }
}

impl ScalingPolicy for TargetTracking {
    fn decide(&mut self, obs: &Observed) -> ScaleDecision {
        let nodes = obs.nodes.max(1) as f64;
        let overloaded =
            obs.shed_rate > 0.0 || obs.request_rate > self.high * self.target_per_node * nodes;
        let underloaded = obs.nodes > 1
            && obs.shed_rate == 0.0
            && obs.request_rate < self.low * self.target_per_node * (nodes - 1.0);
        self.hot = if overloaded { self.hot + 1 } else { 0 };
        self.cold = if underloaded { self.cold + 1 } else { 0 };
        if self.hot >= self.sustain {
            self.hot = 0;
            self.cold = 0;
            ScaleDecision::Out
        } else if self.cold >= self.sustain {
            self.hot = 0;
            self.cold = 0;
            ScaleDecision::In
        } else {
            ScaleDecision::Hold
        }
    }

    fn name(&self) -> &'static str {
        "target-tracking"
    }
}

/// Step scaling: react to dispatcher queue depth crossing fixed
/// thresholds (CloudWatch-alarm style). Scale out when the mean depth
/// exceeds `out_above` (or anything is shed), in when it stays below
/// `in_below`; both must hold for `sustain` consecutive ticks.
#[derive(Clone, Debug)]
pub struct StepScaling {
    /// Queue depth above which to add a node.
    pub out_above: f64,
    /// Queue depth below which to remove one.
    pub in_below: f64,
    /// Consecutive ticks a condition must hold before acting (default 3).
    pub sustain: u32,
    hot: u32,
    cold: u32,
}

impl StepScaling {
    /// A step policy with the given thresholds and sustain 3.
    pub fn new(out_above: f64, in_below: f64) -> StepScaling {
        StepScaling { out_above, in_below, sustain: 3, hot: 0, cold: 0 }
    }
}

impl ScalingPolicy for StepScaling {
    fn decide(&mut self, obs: &Observed) -> ScaleDecision {
        let overloaded = obs.shed_rate > 0.0 || obs.queue_depth > self.out_above;
        let underloaded = obs.nodes > 1 && obs.shed_rate == 0.0 && obs.queue_depth < self.in_below;
        self.hot = if overloaded { self.hot + 1 } else { 0 };
        self.cold = if underloaded { self.cold + 1 } else { 0 };
        if self.hot >= self.sustain {
            self.hot = 0;
            self.cold = 0;
            ScaleDecision::Out
        } else if self.cold >= self.sustain {
            self.hot = 0;
            self.cold = 0;
            ScaleDecision::In
        } else {
            ScaleDecision::Hold
        }
    }

    fn name(&self) -> &'static str {
        "step-scaling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(rate: f64, nodes: u32) -> Observed {
        Observed {
            request_rate: rate,
            shed_rate: 0.0,
            queue_depth: 0.0,
            cold_start_rate: 0.0,
            nodes,
        }
    }

    #[test]
    fn target_tracking_sustains_before_acting() {
        let mut p = TargetTracking::new(100.0);
        // 2 nodes at 300 req/s: over 0.9 * 100 * 2 = 180. Needs 3 ticks.
        assert_eq!(p.decide(&obs(300.0, 2)), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs(300.0, 2)), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs(300.0, 2)), ScaleDecision::Out);
        // Counter reset after acting: not immediately again.
        assert_eq!(p.decide(&obs(300.0, 3)), ScaleDecision::Hold);
    }

    #[test]
    fn target_tracking_spike_does_not_flap() {
        let mut p = TargetTracking::new(100.0);
        assert_eq!(p.decide(&obs(300.0, 2)), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs(50.0, 2)), ScaleDecision::Hold, "spike over");
        assert_eq!(p.decide(&obs(300.0, 2)), ScaleDecision::Hold, "counter was reset");
    }

    #[test]
    fn target_tracking_scales_in_when_a_node_is_surplus() {
        let mut p = TargetTracking::new(100.0);
        // 3 nodes at 40 req/s: below 0.6 * 100 * 2 = 120 → a node is surplus.
        for _ in 0..2 {
            assert_eq!(p.decide(&obs(40.0, 3)), ScaleDecision::Hold);
        }
        assert_eq!(p.decide(&obs(40.0, 3)), ScaleDecision::In);
        // A single node is never drained.
        let mut p = TargetTracking::new(100.0);
        for _ in 0..10 {
            assert_eq!(p.decide(&obs(0.0, 1)), ScaleDecision::Hold);
        }
    }

    #[test]
    fn shedding_is_overload_regardless_of_rate() {
        let mut p = TargetTracking::new(100.0);
        let shed = Observed { shed_rate: 5.0, ..obs(10.0, 2) };
        assert_eq!(p.decide(&shed), ScaleDecision::Hold);
        assert_eq!(p.decide(&shed), ScaleDecision::Hold);
        assert_eq!(p.decide(&shed), ScaleDecision::Out);
    }

    #[test]
    fn step_scaling_follows_queue_depth() {
        let mut p = StepScaling::new(16.0, 2.0);
        let deep = Observed { queue_depth: 40.0, ..obs(0.0, 2) };
        let shallow = Observed { queue_depth: 1.0, ..obs(0.0, 2) };
        for _ in 0..2 {
            assert_eq!(p.decide(&deep), ScaleDecision::Hold);
        }
        assert_eq!(p.decide(&deep), ScaleDecision::Out);
        for _ in 0..2 {
            assert_eq!(p.decide(&shallow), ScaleDecision::Hold);
        }
        assert_eq!(p.decide(&shallow), ScaleDecision::In);
    }
}
