//! A host-side measurement channel.
//!
//! Experiment harnesses need to observe what happens *inside* cloud
//! functions (e.g. Fig. 8 counts completed inferences per second) without
//! perturbing the system under test with extra DSO traffic. The blackboard
//! is that out-of-band instrument: shared counters/series/latency stats
//! keyed by name, reachable both from the harness (via
//! [`crate::Deployment`]) and from running functions (via
//! [`crate::FnEnv::blackboard`]).
//!
//! It is a *measurement* facility — application logic must never depend on
//! it (a real Lambda could not).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Counter, LatencyStats, Series};

#[derive(Default)]
struct Boards {
    counters: HashMap<String, Counter>,
    series: HashMap<String, Series>,
    stats: HashMap<String, LatencyStats>,
}

/// Shared measurement registry (cheap to clone).
#[derive(Clone, Default)]
pub struct Blackboard {
    inner: Arc<Mutex<Boards>>,
}

impl Blackboard {
    /// Creates an empty blackboard.
    pub fn new() -> Blackboard {
        Blackboard::default()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.lock().counters.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the time series `name`.
    pub fn series(&self, name: &str) -> Series {
        self.inner.lock().series.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the latency accumulator `name`.
    pub fn stats(&self, name: &str) -> LatencyStats {
        self.inner
            .lock()
            .stats
            .entry(name.to_string())
            .or_insert_with(|| LatencyStats::new(name))
            .clone()
    }
}

impl fmt::Debug for Blackboard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("Blackboard")
            .field("counters", &g.counters.len())
            .field("series", &g.series.len())
            .field("stats", &g.stats.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_state() {
        let bb = Blackboard::new();
        bb.counter("x").add(3);
        bb.counter("x").add(4);
        assert_eq!(bb.counter("x").get(), 7);
        assert_eq!(bb.counter("y").get(), 0);
        let bb2 = bb.clone();
        bb2.counter("x").incr();
        assert_eq!(bb.counter("x").get(), 8);
    }

    #[test]
    fn series_and_stats() {
        let bb = Blackboard::new();
        bb.series("s").push(simcore::SimTime::from_secs(1), 2.0);
        assert_eq!(bb.series("s").len(), 1);
        bb.stats("l").record(std::time::Duration::from_millis(5));
        assert_eq!(bb.stats("l").count(), 1);
    }
}
