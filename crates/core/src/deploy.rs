//! One-stop deployment of a Crucial application: the DSO tier, the FaaS
//! platform, and the object store, wired together inside a simulation.

use std::collections::HashMap;
use std::sync::Arc;

use cloudstore::{spawn_s3, S3Config, S3Handle};
use dso::{DsoClientHandle, DsoCluster, DsoConfig, NodeCache, ObjectRegistry};
use faas::{spawn_platform, FaasConfig, FaasHandle, FnCtx, FunctionRegistry, FULL_VCPU_MB};
use parking_lot::Mutex;
use simcore::Sim;

use crate::blackboard::Blackboard;
use crate::runnable::{function_name, FnEnv, Runnable};
use crate::thread::ThreadFactory;

/// Configuration of a full deployment.
#[derive(Clone, Debug)]
pub struct CrucialConfig {
    /// Number of DSO storage nodes (the paper uses 1 for the ML
    /// experiments, 2 for the micro-benchmarks, 3 for Fig. 8).
    pub dso_nodes: u32,
    /// DSO tier parameters.
    pub dso: DsoConfig,
    /// FaaS platform parameters.
    pub faas: FaasConfig,
    /// Object store parameters.
    pub s3: S3Config,
    /// Shared-object types available on the servers. Extend it with
    /// application types before calling [`Deployment::start`].
    pub registry: ObjectRegistry,
}

impl Default for CrucialConfig {
    fn default() -> Self {
        CrucialConfig {
            dso_nodes: 1,
            dso: DsoConfig::default(),
            faas: FaasConfig::default(),
            s3: S3Config::default(),
            registry: ObjectRegistry::with_builtins(),
        }
    }
}

/// A running Crucial deployment.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
#[derive(Debug)]
pub struct Deployment {
    /// The DSO tier.
    pub dso: DsoCluster,
    /// The FaaS platform.
    pub faas: FaasHandle,
    /// The object store for immutable inputs.
    pub s3: S3Handle,
    functions: FunctionRegistry,
    blackboard: Blackboard,
    /// One [`NodeCache`] per FaaS host ([`FnCtx::host`]), shared by every
    /// container the platform packs onto that host. Lazily populated the
    /// first time a function runs on a host; `None` when
    /// [`DsoConfig::node_cache`] is off.
    node_caches: Option<Arc<HostCaches>>,
}

/// Host id → the [`NodeCache`] shared by that host's containers.
type HostCaches = Mutex<HashMap<u64, Arc<NodeCache>>>;

impl Deployment {
    /// Starts every service of the deployment on `sim`.
    pub fn start(sim: &Sim, cfg: CrucialConfig) -> Deployment {
        let dso = DsoCluster::start(sim, cfg.dso_nodes, cfg.dso.clone(), cfg.registry.clone());
        let s3 = spawn_s3(sim, cfg.s3.clone());
        let functions = FunctionRegistry::new();
        let faas = spawn_platform(sim, cfg.faas.clone(), functions.clone());
        let node_caches = cfg.dso.node_cache.then(|| Arc::new(Mutex::new(HashMap::new())));
        Deployment { dso, faas, s3, functions, blackboard: Blackboard::new(), node_caches }
    }

    /// Deploys a [`Runnable`] type with the default memory (one full vCPU).
    pub fn register<R: Runnable>(&self) {
        self.register_with_memory::<R>(FULL_VCPU_MB);
    }

    /// Deploys a [`Runnable`] type with an explicit memory setting
    /// (memory drives both CPU share and billing — §6.2.2's 1792/2048 MB).
    pub fn register_with_memory<R: Runnable>(&self, memory_mb: u32) {
        let dso_handle = self.dso.client_handle();
        let s3 = self.s3.clone();
        let blackboard = self.blackboard.clone();
        let node_caches = self.node_caches.clone();
        self.functions.register(
            &function_name::<R>(),
            memory_mb,
            move |fx: &mut FnCtx<'_>, payload: Vec<u8>| {
                let mut runnable: R =
                    simcore::codec::from_bytes(&payload).map_err(|e| e.to_string())?;
                let dso = match &node_caches {
                    Some(caches) => {
                        let cache = caches.lock().entry(fx.host()).or_default().clone();
                        dso_handle.connect_with_node_cache(cache)
                    }
                    None => dso_handle.connect(),
                };
                let mut env =
                    FnEnv::with_client(fx, dso, dso_handle.clone(), s3.clone(), blackboard.clone());
                runnable.run(&mut env)?;
                Ok(Vec::new())
            },
        );
    }

    /// The host-side measurement blackboard shared with every function.
    pub fn blackboard(&self) -> &Blackboard {
        &self.blackboard
    }

    /// A factory for cloud threads against this deployment.
    pub fn threads(&self) -> ThreadFactory {
        ThreadFactory::new(self.faas.clone())
    }

    /// A handle for creating DSO clients (e.g. for the master process,
    /// which per Fig. 1 accesses the same state as the cloud threads).
    pub fn dso_handle(&self) -> DsoClientHandle {
        self.dso.client_handle()
    }

    /// The raw function registry (for deploying non-`Runnable` functions).
    pub fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }
}
