//! The unified error surface of the facade.
//!
//! Application code composes three layers — cloud threads ([`CloudError`]),
//! the FaaS platform ([`FaasError`]), and the DSO tier ([`DsoError`] /
//! [`ObjectError`]) — each with its own error type. [`CrucialError`]
//! subsumes them all with `From` conversions in every direction the layers
//! actually convert, so app code can use one `Result<_, CrucialError>` and
//! `?` throughout instead of matching three enums.

use std::fmt;

use dso::{DsoError, ObjectError};
use faas::FaasError;

use crate::thread::CloudError;

/// Any error the Crucial stack can surface, one level per layer.
///
/// ```
/// use crucial::{CloudError, CrucialError};
/// use faas::FaasError;
///
/// fn app() -> Result<(), CrucialError> {
///     let failed: Result<(), CloudError> = Err(FaasError::Throttled.into());
///     failed?; // CloudError -> CrucialError via From
///     Ok(())
/// }
/// assert!(matches!(app(), Err(CrucialError::Cloud(_))));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum CrucialError {
    /// A cloud thread failed ([`ThreadFactory::start`] /
    /// [`JoinHandle::join`]).
    ///
    /// [`ThreadFactory::start`]: crate::ThreadFactory::start
    /// [`JoinHandle::join`]: crate::JoinHandle::join
    Cloud(CloudError),
    /// A direct FaaS invocation failed.
    Faas(FaasError),
    /// A DSO call failed (routing, retries exhausted, timeouts).
    Dso(DsoError),
    /// A shared object rejected a call.
    Object(ObjectError),
}

impl fmt::Display for CrucialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrucialError::Cloud(e) => write!(f, "{e}"),
            CrucialError::Faas(e) => write!(f, "{e}"),
            CrucialError::Dso(e) => write!(f, "{e}"),
            CrucialError::Object(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CrucialError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrucialError::Cloud(e) => Some(e),
            CrucialError::Faas(e) => Some(e),
            CrucialError::Dso(e) => Some(e),
            CrucialError::Object(e) => Some(e),
        }
    }
}

impl From<CloudError> for CrucialError {
    fn from(e: CloudError) -> CrucialError {
        CrucialError::Cloud(e)
    }
}

impl From<FaasError> for CrucialError {
    fn from(e: FaasError) -> CrucialError {
        CrucialError::Faas(e)
    }
}

impl From<DsoError> for CrucialError {
    fn from(e: DsoError) -> CrucialError {
        CrucialError::Dso(e)
    }
}

impl From<ObjectError> for CrucialError {
    fn from(e: ObjectError) -> CrucialError {
        CrucialError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_source_chain() {
        let ce: CrucialError = FaasError::Throttled.into();
        assert!(matches!(ce, CrucialError::Faas(_)));

        // FaasError -> CloudError -> CrucialError, the layering apps see.
        let cloud: CloudError = FaasError::TimedOut.into();
        let ce: CrucialError = cloud.into();
        assert!(matches!(ce, CrucialError::Cloud(CloudError::Faas(FaasError::TimedOut))));
        assert!(ce.source().is_some());
        assert_eq!(ce.to_string(), "cloud thread failed: function timed out");

        // ObjectError -> DsoError (pre-existing) and -> CrucialError.
        let oe = ObjectError::MethodNotFound("frob".into());
        let de: DsoError = oe.clone().into();
        assert!(matches!(de, DsoError::Object(_)));
        let ce: CrucialError = oe.into();
        assert!(matches!(ce, CrucialError::Object(_)));

        let ce: CrucialError = DsoError::GaveUp { attempts: 3 }.into();
        assert!(matches!(ce, CrucialError::Dso(_)));
    }
}
