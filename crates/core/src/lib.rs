//! # crucial — the paper's programming model
//!
//! This crate puts the pieces together into the abstractions of Table 1:
//!
//! | Paper abstraction | Here |
//! |---|---|
//! | `CloudThread` | [`ThreadFactory::start`] + [`JoinHandle::join`] |
//! | Shared objects | [`AtomicLong`], [`AtomicBoolean`], [`AtomicByteArray`], [`SharedList`], [`SharedMap`] |
//! | Synchronization objects | [`CyclicBarrier`], [`Semaphore`], [`CountDownLatch`], [`SharedFuture`] |
//! | `@Shared` | implement [`dso::SharedObject`], register it in the [`dso::ObjectRegistry`], and reference it with [`dso::api::RawHandle`] |
//! | `@Shared(persistence=true)` | the `persistent(key, init, rf)` constructors |
//!
//! ## The π-estimation example (Listing 1 of the paper)
//!
//! ```
//! use crucial::{CrucialConfig, Deployment, FnEnv, Runnable, RunResult, AtomicLong};
//! use rand::RngExt;
//! use serde::{Serialize, Deserialize};
//! use simcore::Sim;
//!
//! #[derive(Serialize, Deserialize)]
//! struct PiEstimator {
//!     points: u64,
//!     counter: AtomicLong,
//! }
//!
//! impl Runnable for PiEstimator {
//!     fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
//!         let mut inside = 0i64;
//!         for _ in 0..self.points {
//!             let x: f64 = env.ctx().rng().random_range(0.0..1.0);
//!             let y: f64 = env.ctx().rng().random_range(0.0..1.0);
//!             if x * x + y * y <= 1.0 {
//!                 inside += 1;
//!             }
//!         }
//!         let (ctx, dso) = env.dso();
//!         self.counter.add_and_get(ctx, dso, inside).map_err(|e| e.to_string())?;
//!         Ok(())
//!     }
//! }
//!
//! let mut sim = Sim::new(1);
//! let dep = Deployment::start(&sim, CrucialConfig::default());
//! dep.register::<PiEstimator>();
//! let threads = dep.threads();
//! let dso = dep.dso_handle();
//!
//! sim.spawn("main", move |ctx| {
//!     const N_THREADS: usize = 4;
//!     const POINTS: u64 = 10_000;
//!     let counter = AtomicLong::new("counter");
//!     let runnables: Vec<PiEstimator> = (0..N_THREADS)
//!         .map(|_| PiEstimator { points: POINTS, counter: counter.clone() })
//!         .collect();
//!     let handles = threads.start_all(ctx, &runnables);
//!     crucial::join_all(ctx, handles).expect("threads succeed");
//!     let mut cli = dso.connect();
//!     let inside = counter.get(ctx, &mut cli).expect("dso");
//!     let pi = 4.0 * inside as f64 / (N_THREADS as f64 * POINTS as f64);
//!     assert!((pi - std::f64::consts::PI).abs() < 0.1, "pi ≈ {pi}");
//! });
//! sim.run_until_idle().expect_quiescent();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blackboard;
mod deploy;
mod error;
mod runnable;
mod thread;

pub use blackboard::Blackboard;
pub use deploy::{CrucialConfig, Deployment};
pub use error::CrucialError;
pub use runnable::{function_name, FnEnv, RunResult, Runnable};
pub use thread::{
    join_all, CloudError, JoinHandle, RetryPolicy, ThreadFactory, THREAD_START_OVERHEAD,
};

// Re-export the typed shared-object handles under their paper names.
pub use dso::api::{
    Arithmetic, AtomicBoolean, AtomicByteArray, AtomicLong, CountDownLatch, CyclicBarrier,
    RawHandle, Semaphore, SharedFuture, SharedList, SharedMap,
};

// The rest of the stack, so applications import one crate instead of four.
// `crucial` is the facade: everything an app needs — the simulation kernel,
// the DSO tier, the FaaS platform, the object store, and the observability
// handles — is reachable from here.
pub use cloudstore::{
    spawn_redis, spawn_s3, spawn_sqs, QueueConfig, RedisConfig, RedisHandle, S3Config, S3Handle,
    ScriptRegistry, SqsHandle,
};
pub use controlplane::{
    next_floor, spawn_controlplane, CtlConfig, CtlEvent, CtlHandle, Observed, PrewarmConfig,
    ScaleDecision, ScalingPolicy, StepScaling, TargetTracking,
};
pub use dso::{
    costs, AdmissionConfig, BatchOp, CallCtx, ConsistencyMode, DsoClient, DsoClientHandle,
    DsoCluster, DsoConfig, DsoConfigBuilder, DsoConfigError, DsoError, Effects, ObjectError,
    ObjectRef, ObjectRegistry, Reply, SharedObject, Ticket,
};
pub use faas::{
    spawn_platform, Billing, ColdStartPolicy, FaasConfig, FaasConfigBuilder, FaasConfigError,
    FaasError, FaasHandle, FnCtx, FunctionRegistry, InvokeForked, InvokeOpts, Pricing,
    RetirementRecord, SetProvisioned, SnapshotConfig, SnapshotRecord, StartKind, FULL_VCPU_MB,
    SNAPSHOT_PAGE_BYTES,
};
pub use simcore::{codec, explore, sync};
pub use simcore::{Ctx, LatencyModel, MetricsRegistry, Sim, SimTime, SpanId, TraceCtx, Tracer};

/// One-line import for application code:
/// `use crucial::prelude::*;`.
///
/// Brings in the simulation entry points, the programming model
/// (threads + runnables), the shared/synchronization objects, the DSO
/// client types, and the observability handles.
pub mod prelude {
    pub use crate::{
        join_all, Arithmetic, AtomicBoolean, AtomicByteArray, AtomicLong, CountDownLatch,
        CrucialConfig, CrucialError, Ctx, CyclicBarrier, Deployment, DsoClient, DsoClientHandle,
        DsoConfig, FnEnv, JoinHandle, MetricsRegistry, RetryPolicy, RunResult, Runnable, Semaphore,
        SharedFuture, SharedList, SharedMap, Sim, SimTime, ThreadFactory, Tracer,
    };
}
