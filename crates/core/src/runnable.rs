//! The `Runnable` abstraction: the body of a cloud thread.
//!
//! Mirrors the paper's model (§3.1): the programmer writes a plain
//! "multi-threaded" object whose fields are inputs plus handles to shared
//! objects. Because a [`Runnable`] is `Serialize`/`Deserialize`, the whole
//! object ships to the FaaS platform as the invocation payload — the Rust
//! analogue of Java reflection instantiating the user class inside the
//! Lambda.

use std::time::Duration;

use cloudstore::S3Handle;
use dso::{DsoClient, DsoClientHandle};
use faas::FnCtx;

use crate::blackboard::Blackboard;
use serde::de::DeserializeOwned;
use serde::Serialize;
use simcore::Ctx;

/// Outcome of a cloud thread body; an `Err` marks the invocation failed
/// (and retriable, §4.4).
pub type RunResult = Result<(), String>;

/// The body of a cloud thread.
///
/// # Examples
///
/// ```
/// use crucial::{Runnable, FnEnv, RunResult, AtomicLong};
/// use serde::{Serialize, Deserialize};
///
/// #[derive(Serialize, Deserialize)]
/// struct AddOne {
///     counter: AtomicLong,
/// }
///
/// impl Runnable for AddOne {
///     fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
///         let (ctx, dso) = env.dso();
///         self.counter.add_and_get(ctx, dso, 1).map_err(|e| e.to_string())?;
///         Ok(())
///     }
/// }
/// ```
pub trait Runnable: Serialize + DeserializeOwned + Send + 'static {
    /// Executes the body inside a cloud function.
    ///
    /// # Errors
    ///
    /// A `String` error fails the invocation; depending on the
    /// [`crate::RetryPolicy`], the client-side thread re-invokes the
    /// function with the exact same input.
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult;
}

/// The stable function name under which a `Runnable` type is deployed.
pub fn function_name<R: Runnable>() -> String {
    std::any::type_name::<R>().replace("::", ".")
}

/// Execution environment inside a cloud function: the FaaS context plus a
/// connected DSO client and the object store.
pub struct FnEnv<'a, 'b> {
    fx: &'a mut FnCtx<'b>,
    dso: DsoClient,
    dso_factory: DsoClientHandle,
    s3: S3Handle,
    blackboard: Blackboard,
}

impl<'a, 'b> FnEnv<'a, 'b> {
    /// Assembles an environment (used by the registration adapter and by
    /// tests that drive runnables manually).
    pub fn new(
        fx: &'a mut FnCtx<'b>,
        dso_factory: DsoClientHandle,
        s3: S3Handle,
        blackboard: Blackboard,
    ) -> FnEnv<'a, 'b> {
        let dso = dso_factory.connect();
        FnEnv::with_client(fx, dso, dso_factory, s3, blackboard)
    }

    /// Assembles an environment around an already-connected client (the
    /// deployment layer uses this to hand functions a client wired to the
    /// host-shared [`dso::NodeCache`]).
    pub fn with_client(
        fx: &'a mut FnCtx<'b>,
        dso: DsoClient,
        dso_factory: DsoClientHandle,
        s3: S3Handle,
        blackboard: Blackboard,
    ) -> FnEnv<'a, 'b> {
        FnEnv { dso, fx, dso_factory, s3, blackboard }
    }

    /// Connects an additional DSO client (for application structures that
    /// encapsulate their own connection, like the Santa Claus runtime).
    pub fn dso_connect(&self) -> DsoClient {
        self.dso_factory.connect()
    }

    /// The host-side measurement blackboard (instrumentation only; see
    /// [`Blackboard`]).
    pub fn blackboard(&self) -> &Blackboard {
        &self.blackboard
    }

    /// Raw simulation context (sleep, randomness, messaging).
    pub fn ctx(&mut self) -> &mut Ctx {
        self.fx.ctx
    }

    /// Splits the environment for a DSO call:
    /// `let (ctx, dso) = env.dso();`.
    pub fn dso(&mut self) -> (&mut Ctx, &mut DsoClient) {
        (self.fx.ctx, &mut self.dso)
    }

    /// Performs CPU work, scaled by the container's memory-derived share.
    pub fn compute(&mut self, work: Duration) {
        self.fx.compute(work);
    }

    /// This container's CPU share (1.0 = one vCPU).
    pub fn cpu_share(&self) -> f64 {
        self.fx.cpu_share()
    }

    /// The object store holding immutable input data (§4: "CRUCIAL may use
    /// object storage to store the immutable input data").
    pub fn s3(&self) -> S3Handle {
        self.s3.clone()
    }

    /// Splits the environment for an S3 call.
    pub fn s3_split(&mut self) -> (&mut Ctx, S3Handle) {
        (self.fx.ctx, self.s3.clone())
    }
}

impl std::fmt::Debug for FnEnv<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnEnv").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize)]
    struct Nop;

    impl Runnable for Nop {
        fn run(&mut self, _env: &mut FnEnv<'_, '_>) -> RunResult {
            Ok(())
        }
    }

    #[test]
    fn function_names_are_stable_and_distinct() {
        let a = function_name::<Nop>();
        let b = function_name::<Nop>();
        assert_eq!(a, b);
        assert!(a.contains("Nop"), "{a}");
        assert!(!a.contains("::"));
    }
}
