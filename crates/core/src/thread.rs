//! `CloudThread`: threads whose bodies run as serverless functions.
//!
//! Starting a cloud thread spawns a lightweight *local* process that
//! synchronously invokes the deployed function (the paper's §4.3: "a
//! standard Java thread is spawned in the client application … blocked
//! until the call to the serverless function terminates"), giving the
//! familiar fork/join pattern. The client fully controls retries (§4.4).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use faas::{FaasError, FaasHandle};
use simcore::sync::{oneshot_in, OneshotReceiver};
use simcore::{Ctx, TraceCtx};

use crate::runnable::{function_name, Runnable};

static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

/// Errors surfaced by [`JoinHandle::join`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// The invocation failed after exhausting retries.
    Faas(FaasError),
    /// The runnable could not be encoded.
    Encode(String),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Faas(e) => write!(f, "cloud thread failed: {e}"),
            CloudError::Encode(e) => write!(f, "could not encode runnable: {e}"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<FaasError> for CloudError {
    fn from(e: FaasError) -> CloudError {
        CloudError::Faas(e)
    }
}

/// Client-side retry policy for failed invocations (§4.4: "the user may
/// configure how many retries are allowed and/or the time between them").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// Pause between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 1, backoff: Duration::from_millis(100) }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `max_attempts` total attempts.
    pub fn retries(max_attempts: u32) -> RetryPolicy {
        RetryPolicy { max_attempts: max_attempts.max(1), ..RetryPolicy::default() }
    }
}

/// Client-side cost of starting one cloud thread: spawning the local Java
/// thread, serializing the runnable, and opening the HTTPS connection to
/// the invoke API. This serializes at the master and is the "overhead of
/// thread creation" behind the sub-linear tail of Figs. 2b and 3.
pub const THREAD_START_OVERHEAD: Duration = Duration::from_millis(4);

/// Creates cloud threads against a FaaS deployment.
#[derive(Clone, Debug)]
pub struct ThreadFactory {
    faas: FaasHandle,
    retry: RetryPolicy,
    start_overhead: Duration,
}

impl ThreadFactory {
    /// Creates a factory with the default (no-retry) policy.
    pub fn new(faas: FaasHandle) -> ThreadFactory {
        ThreadFactory { faas, retry: RetryPolicy::default(), start_overhead: THREAD_START_OVERHEAD }
    }

    /// Returns a factory with a different retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ThreadFactory {
        self.retry = retry;
        self
    }

    /// Overrides the per-start client overhead (see
    /// [`THREAD_START_OVERHEAD`]).
    pub fn with_start_overhead(mut self, overhead: Duration) -> ThreadFactory {
        self.start_overhead = overhead;
        self
    }

    /// Starts a cloud thread running `runnable` (the analogue of
    /// `new CloudThread(runnable).start()` from Listing 1).
    ///
    /// The runnable is serialized *now*; later mutation of the caller's
    /// copy does not affect the running function.
    pub fn start<R: Runnable>(&self, ctx: &mut Ctx, runnable: &R) -> JoinHandle {
        if !self.start_overhead.is_zero() {
            ctx.compute(self.start_overhead);
        }
        // The thread's whole lifetime is one span, begun in the caller's
        // context; the local proxy process adopts it so invoke spans nest.
        let thread_span = ctx.span_begin("cloud.thread", "core");
        ctx.metric_incr("core.thread_starts");
        let payload = match simcore::codec::to_bytes(runnable) {
            Ok(p) => p,
            Err(e) => {
                // Surface encode failures through join(), keeping start()
                // infallible like Thread::start.
                ctx.span_annotate(thread_span, "error", e.to_string());
                ctx.span_end(thread_span);
                let (tx, rx) = oneshot_in(ctx);
                let msg = e.to_string();
                ctx.spawn("cloudthread-encode-error", move |c| {
                    tx.send(c, Err(CloudError::Encode(msg)));
                });
                return JoinHandle { rx };
            }
        };
        let function = function_name::<R>();
        ctx.span_annotate(thread_span, "function", &function);
        let faas = self.faas.clone();
        let retry = self.retry;
        let seq = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = oneshot_in(ctx);
        ctx.spawn(&format!("cloudthread-{seq}"), move |c| {
            c.set_trace_ctx(TraceCtx::under(thread_span));
            let mut attempt = 0;
            let result = loop {
                attempt += 1;
                match faas.invoke(c, &function, payload.clone()) {
                    Ok(_) => break Ok(()),
                    Err(e) if attempt >= retry.max_attempts => break Err(CloudError::Faas(e)),
                    Err(_) => {
                        c.metric_incr("core.thread_retries");
                        c.sleep(retry.backoff);
                    }
                }
            };
            if result.is_err() {
                c.span_annotate(thread_span, "outcome", "failed");
            }
            c.span_end(thread_span);
            tx.send(c, result);
        });
        JoinHandle { rx }
    }

    /// Starts one cloud thread per runnable and returns all handles — the
    /// fork half of the fork/join pattern of Listing 1.
    pub fn start_all<R: Runnable>(&self, ctx: &mut Ctx, runnables: &[R]) -> Vec<JoinHandle> {
        runnables.iter().map(|r| self.start(ctx, r)).collect()
    }
}

/// Awaits a cloud thread's completion.
#[derive(Debug)]
pub struct JoinHandle {
    rx: OneshotReceiver<Result<(), CloudError>>,
}

impl JoinHandle {
    /// Blocks until the cloud thread finishes.
    ///
    /// # Errors
    ///
    /// [`CloudError`] when the invocation failed after all retries.
    pub fn join(self, ctx: &mut Ctx) -> Result<(), CloudError> {
        self.rx.recv(ctx)
    }
}

/// Joins a batch of handles, returning the first error if any failed.
///
/// # Errors
///
/// The first [`CloudError`] encountered (all handles are still joined).
pub fn join_all(ctx: &mut Ctx, handles: Vec<JoinHandle>) -> Result<(), CloudError> {
    let mut first_err = None;
    for h in handles {
        if let Err(e) = h.join(ctx) {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
