//! End-to-end tests of the Crucial programming model: fork/join cloud
//! threads, shared state, synchronization, and the retry/idempotence
//! pattern of §4.4.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simcore::Sim;

use crucial::{
    join_all, AtomicLong, CrucialConfig, CyclicBarrier, Deployment, FnEnv, RetryPolicy, RunResult,
    Runnable, SharedList,
};

#[derive(Serialize, Deserialize)]
struct Adder {
    amount: i64,
    counter: AtomicLong,
}

impl Runnable for Adder {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let (ctx, dso) = env.dso();
        self.counter.add_and_get(ctx, dso, self.amount).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[test]
fn fork_join_accumulates_shared_state() {
    let mut sim = Sim::new(21);
    let dep = Deployment::start(&sim, CrucialConfig::default());
    dep.register::<Adder>();
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let total = Arc::new(Mutex::new(0i64));
    let total2 = total.clone();
    sim.spawn("main", move |ctx| {
        let counter = AtomicLong::new("sum");
        let runnables: Vec<Adder> =
            (1..=10).map(|i| Adder { amount: i, counter: counter.clone() }).collect();
        let handles = threads.start_all(ctx, &runnables);
        join_all(ctx, handles).expect("all threads succeed");
        let mut cli = dso.connect();
        *total2.lock() = counter.get(ctx, &mut cli).expect("dso");
    });
    sim.run_until_idle().expect_quiescent();
    assert_eq!(*total.lock(), 55);
}

#[derive(Serialize, Deserialize)]
struct BarrierWorker {
    id: u32,
    barrier: CyclicBarrier,
    order: SharedList<(u32, u64)>, // (worker, phase)
}

impl Runnable for BarrierWorker {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        for phase in 0..3u64 {
            // Uneven work before the barrier.
            let work = Duration::from_millis(10 * (self.id as u64 + 1));
            env.compute(work);
            let (ctx, dso) = env.dso();
            self.order.add(ctx, dso, &(self.id, phase)).map_err(|e| e.to_string())?;
            self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

#[test]
fn barrier_keeps_cloud_threads_in_lockstep() {
    let mut sim = Sim::new(22);
    let dep = Deployment::start(&sim, CrucialConfig::default());
    dep.register::<BarrierWorker>();
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let log = Arc::new(Mutex::new(Vec::<(u32, u64)>::new()));
    let log2 = log.clone();
    const PARTIES: u32 = 5;
    sim.spawn("main", move |ctx| {
        let barrier = CyclicBarrier::new("phase-barrier", PARTIES);
        let order: SharedList<(u32, u64)> = SharedList::new("order");
        let runnables: Vec<BarrierWorker> = (0..PARTIES)
            .map(|id| BarrierWorker { id, barrier: barrier.clone(), order: order.clone() })
            .collect();
        let handles = threads.start_all(ctx, &runnables);
        join_all(ctx, handles).expect("all threads succeed");
        let mut cli = dso.connect();
        *log2.lock() = order.to_vec(ctx, &mut cli).expect("dso");
    });
    sim.run_until_idle().expect_quiescent();
    let log = log.lock();
    assert_eq!(log.len(), (PARTIES * 3) as usize);
    // Lockstep: all phase-p entries precede all phase-(p+1) entries.
    let phases: Vec<u64> = log.iter().map(|(_, p)| *p).collect();
    let mut sorted = phases.clone();
    sorted.sort();
    assert_eq!(phases, sorted, "a worker entered phase p+1 before the barrier: {log:?}");
}

/// The idempotent-retry pattern of §4.4: a thread that can crash mid-run
/// checks a shared progress counter and skips already-applied work when
/// re-executed.
#[derive(Serialize, Deserialize)]
struct IdempotentWorker {
    steps: i64,
    progress: AtomicLong, // how many steps have been applied
    acc: AtomicLong,      // the actual accumulated state
}

impl Runnable for IdempotentWorker {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let (ctx, dso) = env.dso();
        let done = self.progress.get(ctx, dso).map_err(|e| e.to_string())?;
        for step in done..self.steps {
            self.acc.add_and_get(ctx, dso, 1).map_err(|e| e.to_string())?;
            self.progress.compare_and_set(ctx, dso, step, step + 1).map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

#[test]
fn retries_with_shared_progress_counter_are_exactly_once() {
    let mut sim = Sim::new(23);
    let mut cfg = CrucialConfig::default();
    // Half of all invocations crash mid-run.
    cfg.faas.failure_rate = 0.5;
    let dep = Deployment::start(&sim, cfg);
    dep.register::<IdempotentWorker>();
    let threads = dep.threads().with_retry(RetryPolicy::retries(30));
    let dso = dep.dso_handle();
    let result = Arc::new(Mutex::new((0i64, 0usize)));
    let result2 = result.clone();
    sim.spawn("main", move |ctx| {
        let worker = IdempotentWorker {
            steps: 20,
            progress: AtomicLong::new("progress"),
            acc: AtomicLong::new("acc"),
        };
        let acc = worker.acc.clone();
        let h = threads.start(ctx, &worker);
        h.join(ctx).expect("eventually succeeds");
        let mut cli = dso.connect();
        let v = acc.get(ctx, &mut cli).expect("dso");
        *result2.lock() = (v, 0);
    });
    sim.run_until_idle().expect_quiescent();
    // NOTE: the inner loop applies acc+1 *then* bumps progress, so a crash
    // between the two can double-apply one step. The paper's §4.4 pattern
    // (fetch the iteration counter, continue from there) has the same
    // at-least-once window per iteration; we assert the value is within it.
    let (v, _) = *result.lock();
    assert!(v >= 20, "all steps applied at least once, got {v}");
    assert!(v <= 50, "retries must skip completed work, got {v}");
}

#[test]
fn failed_threads_report_errors_without_retries() {
    #[derive(Serialize, Deserialize)]
    struct AlwaysFails;
    impl Runnable for AlwaysFails {
        fn run(&mut self, _env: &mut FnEnv<'_, '_>) -> RunResult {
            Err("intentional".to_string())
        }
    }
    let mut sim = Sim::new(24);
    let dep = Deployment::start(&sim, CrucialConfig::default());
    dep.register::<AlwaysFails>();
    let threads = dep.threads();
    let failed = Arc::new(Mutex::new(false));
    let failed2 = failed.clone();
    sim.spawn("main", move |ctx| {
        let h = threads.start(ctx, &AlwaysFails);
        *failed2.lock() = h.join(ctx).is_err();
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*failed.lock(), "error must propagate to join()");
}

#[test]
fn many_cloud_threads_run_concurrently() {
    let mut sim = Sim::new(25);
    let dep = Deployment::start(&sim, CrucialConfig::default());
    dep.register::<Adder>();
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let elapsed = Arc::new(Mutex::new((0i64, 0.0f64)));
    let elapsed2 = elapsed.clone();
    const N: usize = 100;
    sim.spawn("main", move |ctx| {
        let counter = AtomicLong::new("wide");
        let runnables: Vec<Adder> =
            (0..N).map(|_| Adder { amount: 1, counter: counter.clone() }).collect();
        let t0 = ctx.now();
        let handles = threads.start_all(ctx, &runnables);
        join_all(ctx, handles).expect("all succeed");
        let took = (ctx.now() - t0).as_secs_f64();
        let mut cli = dso.connect();
        let v = counter.get(ctx, &mut cli).expect("dso");
        *elapsed2.lock() = (v, took);
    });
    sim.run_until_idle().expect_quiescent();
    let (v, took) = *elapsed.lock();
    assert_eq!(v, N as i64);
    // 100 threads with ~1.5s cold starts each: parallel ≈ 2s, serial ≈ 150s.
    assert!(took < 10.0, "cloud threads must run in parallel, took {took}s");
}
