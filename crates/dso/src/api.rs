//! Typed client-side handles for shared objects — the programmer-facing
//! abstractions of Table 1 (`crucial.AtomicLong`, `CyclicBarrier`, …).
//!
//! A handle is a *reference*, not the object: it holds the `(type, key)`
//! pair, the replication factor, and the creation arguments. Handles are
//! `Serialize`/`Deserialize`, so a `Runnable` carrying them can ship to a
//! cloud function — the Rust analogue of the paper's `@Shared` fields
//! woven by AspectJ.
//!
//! Method calls go through a [`DsoClient`], which routes to the owning
//! server; methods that may block (`await`, `get` on a future,
//! `acquire`) are issued without a client timeout.

use std::marker::PhantomData;

use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use simcore::Ctx;

use crate::client::{BatchOp, DsoClient};
use crate::error::DsoError;
use crate::intern::intern;
use crate::object::ObjectRef;
use crate::objects;

/// Untyped core of every handle.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RawHandle {
    obj: ObjectRef,
    rf: u8,
    create_args: Bytes,
}

impl RawHandle {
    /// Creates a handle to `(type_name, key)` with creation arguments.
    pub fn new<A: Serialize>(type_name: &str, key: &str, rf: u8, create_args: &A) -> RawHandle {
        RawHandle {
            obj: ObjectRef::new(type_name, key),
            rf: rf.max(1),
            // invariant: the codec encodes every Serialize type; creation
            // args come from the typed wrappers below.
            create_args: simcore::codec::to_bytes(create_args)
                .expect("creation args encode")
                .into(),
        }
    }

    /// The object reference.
    pub fn object_ref(&self) -> &ObjectRef {
        &self.obj
    }

    /// The replication factor (1 = ephemeral).
    pub fn rf(&self) -> u8 {
        self.rf
    }

    /// Invokes a non-blocking method.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`] from the client (see [`DsoClient::invoke`]).
    pub fn call<A, R>(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        method: &str,
        args: &A,
    ) -> Result<R, DsoError>
    where
        A: Serialize,
        R: DeserializeOwned,
    {
        cli.call(
            ctx,
            &self.obj,
            method,
            args,
            self.rf,
            Some(self.create_args.clone()),
            false,
            false,
        )
    }

    /// Invokes a *declared read-only* method. Read-only calls take the
    /// read fast path: no state-machine replication on the server, replica
    /// routing under [`crate::ConsistencyMode::ReplicaReads`], and
    /// client-side caching when enabled. The method must be classified
    /// read-only by the object (`SharedObject::is_readonly`), or the
    /// server rejects the call.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`] from the client.
    pub fn call_read<A, R>(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        method: &str,
        args: &A,
    ) -> Result<R, DsoError>
    where
        A: Serialize,
        R: DeserializeOwned,
    {
        cli.call(ctx, &self.obj, method, args, self.rf, Some(self.create_args.clone()), false, true)
    }

    /// Invokes a potentially parking method (no client-side timeout).
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`] from the client.
    pub fn call_blocking<A, R>(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        method: &str,
        args: &A,
    ) -> Result<R, DsoError>
    where
        A: Serialize,
        R: DeserializeOwned,
    {
        cli.call(ctx, &self.obj, method, args, self.rf, Some(self.create_args.clone()), true, false)
    }

    /// Builds a mutating [`BatchOp`] for [`DsoClient::invoke_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `args` cannot be encoded.
    pub fn op<A: Serialize>(&self, method: &str, args: &A) -> BatchOp {
        self.make_op(method, args, false)
    }

    /// Builds a *read-only* [`BatchOp`] for [`DsoClient::invoke_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `args` cannot be encoded.
    pub fn read_op<A: Serialize>(&self, method: &str, args: &A) -> BatchOp {
        self.make_op(method, args, true)
    }

    fn make_op<A: Serialize>(&self, method: &str, args: &A, readonly: bool) -> BatchOp {
        BatchOp {
            obj: self.obj.clone(),
            method: intern(method),
            // invariant: the codec encodes every Serialize type (documented
            // to panic in `op`/`read_op` otherwise).
            args: simcore::codec::to_bytes(args).expect("batch args encode").into(),
            rf: self.rf,
            create: Some(self.create_args.clone()),
            readonly,
        }
    }

    /// Explicitly materializes the object on its server (idempotent).
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`] from the client.
    pub fn ensure(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<(), DsoError> {
        self.call(ctx, cli, "__create", &())
    }
}

macro_rules! delegate_ctor {
    ($name:ident, $type_const:expr, $init_ty:ty, $default:expr) => {
        impl $name {
            /// Handle to an ephemeral object with a default initial value.
            pub fn new(key: &str) -> $name {
                Self::with_value(key, $default)
            }

            /// Handle with an explicit initial value.
            pub fn with_value(key: &str, init: $init_ty) -> $name {
                $name { raw: RawHandle::new($type_const, key, 1, &init) }
            }

            /// Handle to a *persistent* object replicated `rf` times —
            /// the `@Shared(persistence=true)` of the paper.
            pub fn persistent(key: &str, init: $init_ty, rf: u8) -> $name {
                $name { raw: RawHandle::new($type_const, key, rf, &init) }
            }

            /// The underlying untyped handle.
            pub fn raw(&self) -> &RawHandle {
                &self.raw
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Typed handle to a shared [`objects::AtomicLong`].
///
/// # Examples
///
/// See the crate-level example in [`crate`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AtomicLong {
    raw: RawHandle,
}

delegate_ctor!(AtomicLong, objects::AtomicLong::TYPE, i64, 0);

impl AtomicLong {
    /// Reads the current value.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn get(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<i64, DsoError> {
        self.raw.call_read(ctx, cli, "get", &())
    }

    /// Overwrites the value.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn set(&self, ctx: &mut Ctx, cli: &mut DsoClient, v: i64) -> Result<(), DsoError> {
        self.raw.call(ctx, cli, "set", &v)
    }

    /// Atomically adds `d` and returns the new value.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn add_and_get(&self, ctx: &mut Ctx, cli: &mut DsoClient, d: i64) -> Result<i64, DsoError> {
        self.raw.call(ctx, cli, "addAndGet", &d)
    }

    /// Atomically increments and returns the new value.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn increment_and_get(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<i64, DsoError> {
        self.raw.call(ctx, cli, "incrementAndGet", &())
    }

    /// Compare-and-set; returns whether the swap happened.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn compare_and_set(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        expect: i64,
        update: i64,
    ) -> Result<bool, DsoError> {
        self.raw.call(ctx, cli, "compareAndSet", &(expect, update))
    }

    /// Atomically replaces the value, returning the previous one.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn get_and_set(&self, ctx: &mut Ctx, cli: &mut DsoClient, v: i64) -> Result<i64, DsoError> {
        self.raw.call(ctx, cli, "getAndSet", &v)
    }
}

/// Typed handle to a shared [`objects::AtomicBoolean`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AtomicBoolean {
    raw: RawHandle,
}

delegate_ctor!(AtomicBoolean, objects::AtomicBoolean::TYPE, bool, false);

impl AtomicBoolean {
    /// Reads the current value.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn get(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<bool, DsoError> {
        self.raw.call_read(ctx, cli, "get", &())
    }

    /// Overwrites the value.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn set(&self, ctx: &mut Ctx, cli: &mut DsoClient, v: bool) -> Result<(), DsoError> {
        self.raw.call(ctx, cli, "set", &v)
    }

    /// Compare-and-set; returns whether the swap happened.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn compare_and_set(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        expect: bool,
        update: bool,
    ) -> Result<bool, DsoError> {
        self.raw.call(ctx, cli, "compareAndSet", &(expect, update))
    }
}

/// Typed handle to a shared [`objects::AtomicByteArray`] — e.g. the 1 KB
/// payload of the Table 2 latency benchmark.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AtomicByteArray {
    raw: RawHandle,
}

delegate_ctor!(AtomicByteArray, objects::AtomicByteArray::TYPE, Vec<u8>, Vec::new());

impl AtomicByteArray {
    /// Reads the whole array.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn get(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<Vec<u8>, DsoError> {
        self.raw.call_read(ctx, cli, "get", &())
    }

    /// Replaces the whole array.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn set(&self, ctx: &mut Ctx, cli: &mut DsoClient, v: &Vec<u8>) -> Result<(), DsoError> {
        self.raw.call(ctx, cli, "set", v)
    }

    /// Length of the array.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn len(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<u64, DsoError> {
        self.raw.call_read(ctx, cli, "len", &())
    }

    /// Whether the array is empty.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn is_empty(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<bool, DsoError> {
        Ok(self.len(ctx, cli)? == 0)
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

/// Typed handle to a shared list of `T`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SharedList<T> {
    raw: RawHandle,
    _ty: PhantomData<fn(T)>,
}

impl<T: Serialize + DeserializeOwned> SharedList<T> {
    /// Handle to an ephemeral empty list.
    pub fn new(key: &str) -> SharedList<T> {
        SharedList {
            raw: RawHandle::new(objects::ListObject::TYPE, key, 1, &Vec::<Vec<u8>>::new()),
            _ty: PhantomData,
        }
    }

    /// Handle to a persistent list replicated `rf` times.
    pub fn persistent(key: &str, rf: u8) -> SharedList<T> {
        SharedList {
            raw: RawHandle::new(objects::ListObject::TYPE, key, rf, &Vec::<Vec<u8>>::new()),
            _ty: PhantomData,
        }
    }

    /// Appends an element; returns the new length.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`]; fails if `v` cannot be encoded.
    pub fn add(&self, ctx: &mut Ctx, cli: &mut DsoClient, v: &T) -> Result<u64, DsoError> {
        let bytes = simcore::codec::to_bytes(v)
            .map_err(|e| DsoError::Object(crate::error::ObjectError::BadArgs(e.to_string())))?;
        self.raw.call(ctx, cli, "add", &bytes)
    }

    /// Reads the element at `i`.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`]; fails if the element cannot be decoded.
    pub fn get(&self, ctx: &mut Ctx, cli: &mut DsoClient, i: u64) -> Result<Option<T>, DsoError> {
        let raw: Option<Vec<u8>> = self.raw.call_read(ctx, cli, "get", &i)?;
        raw.map(|b| {
            simcore::codec::from_bytes(&b)
                .map_err(|e| DsoError::Object(crate::error::ObjectError::BadState(e.to_string())))
        })
        .transpose()
    }

    /// Number of elements.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn size(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<u64, DsoError> {
        self.raw.call_read(ctx, cli, "size", &())
    }

    /// Removes all elements.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn clear(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<(), DsoError> {
        self.raw.call(ctx, cli, "clear", &())
    }

    /// Reads the whole list.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`]; fails if an element cannot be decoded.
    pub fn to_vec(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<Vec<T>, DsoError> {
        let raw: Vec<Vec<u8>> = self.raw.call_read(ctx, cli, "toVec", &())?;
        raw.iter()
            .map(|b| {
                simcore::codec::from_bytes(b).map_err(|e| {
                    DsoError::Object(crate::error::ObjectError::BadState(e.to_string()))
                })
            })
            .collect()
    }
}

/// Typed handle to a shared string-keyed map of `V`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SharedMap<V> {
    raw: RawHandle,
    _ty: PhantomData<fn(V)>,
}

impl<V: Serialize + DeserializeOwned> SharedMap<V> {
    /// Handle to an ephemeral empty map.
    pub fn new(key: &str) -> SharedMap<V> {
        Self::with_rf(key, 1)
    }

    /// Handle to a persistent map replicated `rf` times.
    pub fn persistent(key: &str, rf: u8) -> SharedMap<V> {
        Self::with_rf(key, rf)
    }

    fn with_rf(key: &str, rf: u8) -> SharedMap<V> {
        SharedMap {
            raw: RawHandle::new(
                objects::MapObject::TYPE,
                key,
                rf,
                &std::collections::BTreeMap::<String, Vec<u8>>::new(),
            ),
            _ty: PhantomData,
        }
    }

    /// Inserts a value; returns the previous one if any.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`]; fails on codec errors.
    pub fn put(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        k: &str,
        v: &V,
    ) -> Result<Option<V>, DsoError> {
        let bytes = simcore::codec::to_bytes(v)
            .map_err(|e| DsoError::Object(crate::error::ObjectError::BadArgs(e.to_string())))?;
        let old: Option<Vec<u8>> = self.raw.call(ctx, cli, "put", &(k.to_string(), bytes))?;
        old.map(|b| {
            simcore::codec::from_bytes(&b)
                .map_err(|e| DsoError::Object(crate::error::ObjectError::BadState(e.to_string())))
        })
        .transpose()
    }

    /// Reads the value under `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`]; fails on codec errors.
    pub fn get(&self, ctx: &mut Ctx, cli: &mut DsoClient, k: &str) -> Result<Option<V>, DsoError> {
        let raw: Option<Vec<u8>> = self.raw.call_read(ctx, cli, "get", &k.to_string())?;
        raw.map(|b| {
            simcore::codec::from_bytes(&b)
                .map_err(|e| DsoError::Object(crate::error::ObjectError::BadState(e.to_string())))
        })
        .transpose()
    }

    /// Removes and returns the value under `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`]; fails on codec errors.
    pub fn remove(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        k: &str,
    ) -> Result<Option<V>, DsoError> {
        let raw: Option<Vec<u8>> = self.raw.call(ctx, cli, "remove", &k.to_string())?;
        raw.map(|b| {
            simcore::codec::from_bytes(&b)
                .map_err(|e| DsoError::Object(crate::error::ObjectError::BadState(e.to_string())))
        })
        .transpose()
    }

    /// Number of entries.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn size(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<u64, DsoError> {
        self.raw.call_read(ctx, cli, "size", &())
    }

    /// All keys, sorted.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn keys(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<Vec<String>, DsoError> {
        self.raw.call_read(ctx, cli, "keys", &())
    }
}

// ---------------------------------------------------------------------------
// Synchronization objects
// ---------------------------------------------------------------------------

/// Typed handle to a shared [`objects::CyclicBarrier`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct CyclicBarrier {
    raw: RawHandle,
}

impl CyclicBarrier {
    /// Handle to a barrier for `parties` cloud threads.
    pub fn new(key: &str, parties: u32) -> CyclicBarrier {
        CyclicBarrier { raw: RawHandle::new(objects::CyclicBarrier::TYPE, key, 1, &parties) }
    }

    /// Blocks until all parties arrive; returns the generation index.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn wait(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<u64, DsoError> {
        self.raw.call_blocking(ctx, cli, "await", &())
    }

    /// The underlying untyped handle.
    pub fn raw(&self) -> &RawHandle {
        &self.raw
    }
}

/// Typed handle to a shared [`objects::Semaphore`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Semaphore {
    raw: RawHandle,
}

impl Semaphore {
    /// Handle to a semaphore with `permits` initial permits.
    pub fn new(key: &str, permits: i64) -> Semaphore {
        Semaphore { raw: RawHandle::new(objects::Semaphore::TYPE, key, 1, &permits) }
    }

    /// Acquires `n` permits, blocking until available.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn acquire(&self, ctx: &mut Ctx, cli: &mut DsoClient, n: i64) -> Result<(), DsoError> {
        self.raw.call_blocking(ctx, cli, "acquire", &n)
    }

    /// Tries to acquire `n` permits without blocking.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn try_acquire(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        n: i64,
    ) -> Result<bool, DsoError> {
        self.raw.call(ctx, cli, "tryAcquire", &n)
    }

    /// Releases `n` permits.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn release(&self, ctx: &mut Ctx, cli: &mut DsoClient, n: i64) -> Result<(), DsoError> {
        self.raw.call(ctx, cli, "release", &n)
    }

    /// Currently available permits.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn available_permits(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<i64, DsoError> {
        self.raw.call_read(ctx, cli, "availablePermits", &())
    }
}

/// Typed handle to a shared [`objects::CountDownLatch`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct CountDownLatch {
    raw: RawHandle,
}

impl CountDownLatch {
    /// Handle to a latch starting at `count`.
    pub fn new(key: &str, count: u64) -> CountDownLatch {
        CountDownLatch { raw: RawHandle::new(objects::CountDownLatch::TYPE, key, 1, &count) }
    }

    /// Blocks until the latch reaches zero.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn wait(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<(), DsoError> {
        self.raw.call_blocking(ctx, cli, "await", &())
    }

    /// Decrements the latch; returns the remaining count.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn count_down(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<u64, DsoError> {
        self.raw.call(ctx, cli, "countDown", &())
    }

    /// Current count.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn count(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<u64, DsoError> {
        self.raw.call_read(ctx, cli, "getCount", &())
    }
}

/// Typed handle to a shared write-once [`objects::FutureObject`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SharedFuture<T> {
    raw: RawHandle,
    _ty: PhantomData<fn(T)>,
}

impl<T: Serialize + DeserializeOwned> SharedFuture<T> {
    /// Handle to an (initially unset) future.
    pub fn new(key: &str) -> SharedFuture<T> {
        SharedFuture {
            raw: RawHandle::new(objects::FutureObject::TYPE, key, 1, &Option::<Vec<u8>>::None),
            _ty: PhantomData,
        }
    }

    /// Completes the future; returns `false` if it was already set.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`]; fails if `v` cannot be encoded.
    pub fn set(&self, ctx: &mut Ctx, cli: &mut DsoClient, v: &T) -> Result<bool, DsoError> {
        let bytes = simcore::codec::to_bytes(v)
            .map_err(|e| DsoError::Object(crate::error::ObjectError::BadArgs(e.to_string())))?;
        self.raw.call(ctx, cli, "set", &bytes)
    }

    /// Blocks until the value is available, then returns it.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`]; fails if the value cannot be decoded.
    pub fn get(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<T, DsoError> {
        self.raw.call_blocking(ctx, cli, "get", &())
    }

    /// Whether the future has been completed.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn is_done(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<bool, DsoError> {
        self.raw.call_read(ctx, cli, "isDone", &())
    }
}

/// Typed handle to the Fig. 2a [`objects::Arithmetic`] register.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Arithmetic {
    raw: RawHandle,
}

delegate_ctor!(Arithmetic, objects::Arithmetic::TYPE, f64, 1.0);

impl Arithmetic {
    /// One multiplication (the "simple" operation).
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn mul(&self, ctx: &mut Ctx, cli: &mut DsoClient, x: f64) -> Result<f64, DsoError> {
        self.raw.call(ctx, cli, "mul", &x)
    }

    /// `n` sequential multiplications (the "complex" operation).
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn mul_n(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        x: f64,
        n: u32,
    ) -> Result<f64, DsoError> {
        self.raw.call(ctx, cli, "mulN", &(x, n))
    }

    /// Reads the register.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn get(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<f64, DsoError> {
        self.raw.call_read(ctx, cli, "get", &())
    }
}

/// Typed handle to the convergent [`objects::GCounter`] — the CRDT
/// counterpart of [`AtomicLong`] increments. Pair it with
/// [`crate::ConsistencyMode::CrdtMerge`], where its writes skip the SMR
/// multicast and replicas reconcile by merge on anti-entropy exchange;
/// under any other mode it behaves like an ordinary replicated counter.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct GCounter {
    raw: RawHandle,
}

impl GCounter {
    /// Handle to an ephemeral (unreplicated) counter starting at zero.
    pub fn new(key: &str) -> GCounter {
        GCounter {
            raw: RawHandle::new(
                objects::GCounter::TYPE,
                key,
                1,
                &std::collections::BTreeMap::<u32, u64>::new(),
            ),
        }
    }

    /// Handle to a persistent counter replicated `rf` ways.
    pub fn persistent(key: &str, rf: u8) -> GCounter {
        GCounter {
            raw: RawHandle::new(
                objects::GCounter::TYPE,
                key,
                rf,
                &std::collections::BTreeMap::<u32, u64>::new(),
            ),
        }
    }

    /// Adds `d`; returns the total as known to the executing replica
    /// (under `CrdtMerge`, possibly not yet including other replicas'
    /// unmerged increments).
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn inc(&self, ctx: &mut Ctx, cli: &mut DsoClient, d: u64) -> Result<u64, DsoError> {
        self.raw.call(ctx, cli, "inc", &d)
    }

    /// Reads the total.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn get(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<u64, DsoError> {
        self.raw.call_read(ctx, cli, "get", &())
    }

    /// The underlying raw handle.
    pub fn raw(&self) -> &RawHandle {
        &self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_serializable_references() {
        let h = AtomicLong::persistent("model", 7, 2);
        let bytes = simcore::codec::to_bytes(&h).expect("encode");
        let back: AtomicLong = simcore::codec::from_bytes(&bytes).expect("decode");
        assert_eq!(h, back);
        assert_eq!(back.raw().rf(), 2);
        assert_eq!(back.raw().object_ref().key(), "model");
    }

    #[test]
    fn generic_handles_serialize() {
        let l: SharedList<f64> = SharedList::new("xs");
        let bytes = simcore::codec::to_bytes(&l).expect("encode");
        let back: SharedList<f64> = simcore::codec::from_bytes(&bytes).expect("decode");
        assert_eq!(back.raw.object_ref().type_name(), "List");
        let f: SharedFuture<String> = SharedFuture::new("f");
        let bytes = simcore::codec::to_bytes(&f).expect("encode");
        let _back: SharedFuture<String> = simcore::codec::from_bytes(&bytes).expect("decode");
    }

    #[test]
    fn rf_is_clamped_to_one() {
        let h = RawHandle::new("AtomicLong", "x", 0, &0i64);
        assert_eq!(h.rf(), 1);
    }
}
