//! The client side of the DSO layer: view discovery, read/write routing,
//! retries with backoff, the read fast path (replica reads, version-validated
//! caching, monotonic-read enforcement), batched invocation, and the raw
//! `invoke` used by the typed handles in [`crate::api`].

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use simcore::{Addr, Ctx, SimTime, SpanId, TraceCtx, WaitKind};

use crate::config::DsoConfig;
use crate::error::DsoError;
use crate::intern::{intern, MethodName};
use crate::node_cache::{NodeCache, NodeEntry};
use crate::object::ObjectRef;
use crate::protocol::{
    BatchItemResp, BatchReq, GetView, InvokeReq, InvokeResp, VersionReq, VersionResp, View,
};
use crate::read_policy::{policy_for, ReadPolicy};
use crate::ring::Ring;

/// Cheap, `Send` handle describing how to reach a DSO deployment. Each
/// simulated process turns it into its own [`DsoClient`] with
/// [`DsoClientHandle::connect`].
#[derive(Clone)]
pub struct DsoClientHandle {
    coordinator: Addr,
    cfg: DsoConfig,
}

impl fmt::Debug for DsoClientHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsoClientHandle").field("coordinator", &self.coordinator).finish()
    }
}

impl DsoClientHandle {
    /// Creates a handle from the coordinator address and configuration.
    pub fn new(coordinator: Addr, cfg: DsoConfig) -> DsoClientHandle {
        DsoClientHandle { coordinator, cfg }
    }

    /// Instantiates a per-process client.
    pub fn connect(&self) -> DsoClient {
        DsoClient {
            policy: policy_for(&self.cfg),
            h: self.clone(),
            view: None,
            monotonic: MonotonicReads::new(),
            cache: HashMap::new(),
            node_cache: None,
            scratch: Vec::new(),
        }
    }

    /// Instantiates a per-process client that additionally consults (and
    /// fills) a host-shared [`NodeCache`] on its read path. Used by the
    /// FaaS deployment layer when [`DsoConfig::node_cache`] is on: every
    /// container on one host connects against the same cache, so warmth
    /// survives the containers.
    pub fn connect_with_node_cache(&self, node_cache: Arc<NodeCache>) -> DsoClient {
        let mut client = self.connect();
        client.node_cache = Some(node_cache);
        client
    }
}

/// One operation of a batched invocation (see [`DsoClient::invoke_batch`]).
///
/// Cheap to clone (interned method, shared buffers), so a hot loop can
/// build its batch once and clone it per round.
#[derive(Clone, Debug)]
pub struct BatchOp {
    /// Target object.
    pub obj: ObjectRef,
    /// Method name.
    pub method: MethodName,
    /// Codec-encoded arguments.
    pub args: Bytes,
    /// Replication factor.
    pub rf: u8,
    /// Creation arguments (idempotent materialization).
    pub create: Option<Bytes>,
    /// Declared read-only (see [`InvokeReq::readonly`]).
    pub readonly: bool,
}

/// Client-side monotonic-read enforcement: the highest version observed per
/// object. A replica may trail the primary, so a read served by one could
/// travel back in time relative to an earlier read (or write) by the same
/// client; rejecting any version below the high-water mark restores the
/// *monotonic reads* session guarantee under
/// [`ConsistencyMode::ReplicaReads`].
#[derive(Debug, Default)]
pub struct MonotonicReads {
    seen: HashMap<ObjectRef, u64>,
}

impl MonotonicReads {
    /// An empty tracker.
    pub fn new() -> MonotonicReads {
        MonotonicReads::default()
    }

    /// Records `version` as observed for `obj` (writes and accepted reads).
    pub fn observe(&mut self, obj: &ObjectRef, version: u64) {
        let e = self.seen.entry(obj.clone()).or_insert(0);
        if version > *e {
            *e = version;
        }
    }

    /// Whether a read of `obj` at `version` is admissible (not older than
    /// anything this client already observed). Accepting also records it.
    pub fn admit(&mut self, obj: &ObjectRef, version: u64) -> bool {
        if version < self.high_water(obj) {
            return false;
        }
        self.observe(obj, version);
        true
    }

    /// The highest version observed for `obj` (0 if never seen).
    pub fn high_water(&self, obj: &ObjectRef) -> u64 {
        self.seen.get(obj).copied().unwrap_or(0)
    }
}

struct CacheEntry {
    bytes: Bytes,
    version: u64,
    validated_at: SimTime,
}

/// Local cost of serving a read from the client cache within its lease
/// (hashing + copy). Non-zero so a closed loop of leased hits still
/// advances simulated time.
const CACHE_HIT_COST: Duration = Duration::from_micros(1);

/// A per-process DSO client with a cached view.
pub struct DsoClient {
    h: DsoClientHandle,
    view: Option<(View, Ring)>,
    /// The consistency strategy: routing, admission, dependency
    /// piggybacking and lease policy, per [`crate::ConsistencyMode`].
    policy: Box<dyn ReadPolicy>,
    monotonic: MonotonicReads,
    /// Client-private read cache (`dso.read_cache.*`): dies with this
    /// client — i.e. with the function invocation that connected it.
    cache: HashMap<(ObjectRef, MethodName, Bytes), CacheEntry>,
    /// Host-shared read cache (`dso.node_cache.*`), consulted after the
    /// client cache; survives this client. See [`NodeCache`].
    node_cache: Option<Arc<NodeCache>>,
    /// Reusable argument-encoding buffer; plateaus at the largest request
    /// this client has built, so per-call encoding stops allocating a
    /// fresh `Vec` (see [`DsoClient::encode_args`]).
    scratch: Vec<u8>,
}

impl fmt::Debug for DsoClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsoClient")
            .field("view", &self.view.as_ref().map(|(v, _)| v.id))
            .field("policy", &self.policy.name())
            .field("cached", &self.cache.len())
            .finish()
    }
}

impl DsoClient {
    /// The client configuration.
    pub fn config(&self) -> &DsoConfig {
        &self.h.cfg
    }

    /// The highest version this client has observed for `obj`.
    pub fn observed_version(&self, obj: &ObjectRef) -> u64 {
        self.monotonic.high_water(obj)
    }

    /// Forces a view refresh from the coordinator.
    pub fn refresh_view(&mut self, ctx: &mut Ctx) -> View {
        let lat = self.h.cfg.client_net.sample(ctx.rng());
        ctx.annotate_wait(
            self.h.coordinator.into_raw(),
            WaitKind::Call,
            "coordinator",
            "DsoClient::refresh_view",
        );
        let view: View = ctx.call(self.h.coordinator, GetView, lat);
        let ring = Ring::new(&view.node_ids());
        self.view = Some((view.clone(), ring));
        view
    }

    fn view(&mut self, ctx: &mut Ctx) -> &(View, Ring) {
        if self.view.is_none() {
            self.refresh_view(ctx);
        }
        // invariant: refresh_view stored Some just above when it was None.
        self.view.as_ref().expect("view cached")
    }

    /// Picks the node to contact for one attempt, as decided by the
    /// consistency policy: the primary for writes (and for all reads
    /// under [`crate::ConsistencyMode::Linearizable`] and
    /// [`crate::ConsistencyMode::BoundedStaleness`]), any node of the
    /// placement set — round-robin — for read-only calls under the
    /// replica-reading policies.
    fn route(&mut self, ctx: &mut Ctx, obj: &ObjectRef, rf: u8, readonly: bool) -> Option<Addr> {
        if self.view.is_none() {
            self.refresh_view(ctx);
        }
        // invariant: refresh_view stored Some just above when it was None.
        let (view, ring) = self.view.as_ref().expect("view cached");
        let node = if readonly {
            self.policy.route_read(ring, obj, rf)
        } else {
            self.policy.route_write(ring, obj, rf)
        };
        node.and_then(|n| view.addr_of(n))
    }

    /// Invokes `method(args)` on the object, routing per the consistency
    /// mode and retrying transparently on ownership changes, transfers in
    /// progress, stale replicas, and node failures.
    ///
    /// `blocking` marks methods that may legitimately park on the server
    /// (barrier `await`, future `get`): such calls are issued without a
    /// client-side timeout. `readonly` marks declared read-only methods,
    /// which take the read fast path (no SMR, optional replica routing and
    /// caching).
    ///
    /// # Errors
    ///
    /// [`DsoError::Object`] for application-level failures, or
    /// [`DsoError::GaveUp`] when retries are exhausted.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke(
        &mut self,
        ctx: &mut Ctx,
        obj: &ObjectRef,
        method: &str,
        args: Bytes,
        rf: u8,
        create: Option<Bytes>,
        blocking: bool,
        readonly: bool,
    ) -> Result<Bytes, DsoError> {
        // One logical call = one "dso.call" span; each attempt below is a
        // sibling "dso.attempt" child, so retries stay visually grouped.
        let call_span = ctx.span_begin("dso.call", "dso");
        ctx.span_annotate(call_span, "obj", obj.to_string());
        ctx.span_annotate(call_span, "method", method);
        ctx.metric_incr("dso.invokes");
        // Client-cache fast path: a validated (or leased) earlier result.
        if readonly && self.h.cfg.read_cache {
            if let Some(bytes) = self.cached_read(ctx, obj, method, &args, rf) {
                ctx.span_annotate(call_span, "cache", "hit");
                ctx.metric_incr("dso.read_cache.hit");
                ctx.span_end(call_span);
                return Ok(bytes);
            }
            ctx.metric_incr("dso.read_cache.miss");
        }
        // Host-shared cache, second: warmth put there by other containers
        // on this host (or by this client's earlier incarnations).
        if readonly && self.node_cache.is_some() {
            if let Some(bytes) = self.node_cached_read(ctx, obj, method, &args, rf) {
                ctx.span_annotate(call_span, "cache", "node-hit");
                ctx.span_end(call_span);
                return Ok(bytes);
            }
        }
        // Built once; every retry reuses it with a cheap clone (satellite
        // of the read-path work: no per-attempt String/Vec churn).
        let req = InvokeReq {
            obj: obj.clone(),
            method: intern(method),
            args,
            rf,
            create,
            readonly,
            dep: self.policy.dep(obj),
            span: SpanId::NONE,
        };
        let max = self.h.cfg.max_retries;
        let mut force_primary = false;
        for attempt in 0..max {
            if attempt > 0 {
                ctx.metric_incr("dso.retries");
            }
            let target = if force_primary {
                let (view, ring) = self.view(ctx);
                ring.primary(obj).and_then(|p| view.addr_of(p))
            } else {
                self.route(ctx, obj, rf, readonly)
            };
            let Some(addr) = target else {
                // Empty view: wait for servers to join.
                let backoff = self.h.cfg.backoff_for(attempt);
                ctx.sleep(backoff);
                self.refresh_view(ctx);
                continue;
            };
            let attempt_span = ctx.span_begin_under(call_span, "dso.attempt", "dso");
            let mut attempt_req = req.clone();
            attempt_req.span = attempt_span;
            let lat = self.h.cfg.client_net.sample(ctx.rng());
            let resp: Option<InvokeResp> = if blocking {
                // A blocking call may legitimately park on the server (e.g.
                // barrier await) with no timeout; tell the deadlock detector
                // which object we are waiting on.
                ctx.annotate_wait(
                    obj.placement_hash(),
                    wait_kind_for(obj.type_name()),
                    obj.to_string(),
                    format!("DsoClient::invoke {obj}::{method}"),
                );
                Some(ctx.call(addr, attempt_req, lat))
            } else {
                ctx.call_timeout(addr, attempt_req, lat, self.h.cfg.call_timeout)
            };
            match resp {
                Some(InvokeResp::Value { bytes, version, lamport }) => {
                    if readonly && !self.policy.admit(&mut self.monotonic, obj, version, lamport) {
                        // Stale replica: behind something this session
                        // already observed (a version regression, or a
                        // Lamport stamp below the causal frontier). Go
                        // straight to the primary, which is never behind
                        // an acknowledged write.
                        ctx.span_annotate(attempt_span, "outcome", "stale-replica");
                        ctx.span_end(attempt_span);
                        ctx.metric_incr("dso.stale_reads");
                        force_primary = true;
                        continue;
                    }
                    if !readonly {
                        self.policy.observe_write(&mut self.monotonic, obj, version, lamport);
                        self.invalidate(obj);
                        if let Some(nc) = &self.node_cache {
                            if nc.invalidate(obj) > 0 {
                                ctx.metric_incr("dso.node_cache.invalidate");
                            }
                        }
                    } else {
                        if self.h.cfg.read_cache {
                            self.cache.insert(
                                (obj.clone(), req.method.clone(), req.args.clone()),
                                CacheEntry {
                                    bytes: bytes.clone(),
                                    version,
                                    validated_at: ctx.now(),
                                },
                            );
                        }
                        if let Some(nc) = &self.node_cache {
                            nc.insert(
                                (obj.clone(), req.method.clone(), req.args.clone()),
                                NodeEntry {
                                    bytes: bytes.clone(),
                                    version,
                                    lamport,
                                    validated_at: ctx.now(),
                                },
                            );
                        }
                    }
                    ctx.span_end(attempt_span);
                    ctx.span_end(call_span);
                    return Ok(bytes);
                }
                Some(InvokeResp::Error(e)) => {
                    ctx.span_annotate(attempt_span, "outcome", "error");
                    ctx.span_end(attempt_span);
                    ctx.span_end(call_span);
                    return Err(DsoError::Object(e));
                }
                Some(InvokeResp::NotOwner { .. }) => {
                    ctx.span_annotate(attempt_span, "outcome", "not-owner");
                    ctx.span_end(attempt_span);
                    self.refresh_view(ctx);
                }
                Some(InvokeResp::Retry) => {
                    ctx.span_annotate(attempt_span, "outcome", "retry");
                    ctx.span_end(attempt_span);
                    let backoff = self.h.cfg.backoff_for(attempt);
                    ctx.sleep(backoff);
                    self.refresh_view(ctx);
                }
                Some(InvokeResp::Overloaded { retry_after }) => {
                    // The node shed the request: it is healthy but over
                    // capacity, so back off (at least its hint) and retry
                    // the same route — no view refresh, ownership is not
                    // in question.
                    ctx.span_annotate(attempt_span, "outcome", "overloaded");
                    ctx.span_end(attempt_span);
                    ctx.metric_incr("dso.overloaded");
                    let backoff = self.h.cfg.backoff_for(attempt).max(retry_after);
                    ctx.sleep(backoff);
                }
                None => {
                    // Timeout: the node may have crashed; refresh and retry.
                    ctx.span_annotate(attempt_span, "outcome", "timeout");
                    ctx.span_end(attempt_span);
                    let backoff = self.h.cfg.backoff_for(attempt);
                    ctx.sleep(backoff);
                    self.refresh_view(ctx);
                }
            }
        }
        ctx.span_annotate(call_span, "outcome", "gave-up");
        ctx.span_end(call_span);
        Err(DsoError::GaveUp { attempts: max })
    }

    /// Serves a read from the client cache if possible: within the lease
    /// without any message, otherwise after a dispatcher-level version
    /// probe confirming the entry is current. Returns `None` on miss (the
    /// entry, if any, is dropped).
    fn cached_read(
        &mut self,
        ctx: &mut Ctx,
        obj: &ObjectRef,
        method: &str,
        args: &Bytes,
        rf: u8,
    ) -> Option<Bytes> {
        let key = (obj.clone(), intern(method), args.clone());
        let (version, lease_ok) = {
            let entry = self.cache.get(&key)?;
            let lease_ok = self
                .policy
                .lease()
                .is_some_and(|l| ctx.now().saturating_duration_since(entry.validated_at) < l);
            (entry.version, lease_ok)
        };
        if lease_ok {
            ctx.sleep(CACHE_HIT_COST);
            return self.cache.get(&key).map(|e| e.bytes.clone());
        }
        // Validate: one round-trip, no worker hop, no method CPU.
        let target = self.route(ctx, obj, rf, true)?;
        let lat = self.h.cfg.client_net.sample(ctx.rng());
        let resp: Option<VersionResp> = ctx.call_timeout(
            target,
            VersionReq { obj: obj.clone(), rf },
            lat,
            self.h.cfg.call_timeout,
        );
        match resp {
            Some(VersionResp(Some(v))) if v == version && v >= self.monotonic.high_water(obj) => {
                self.monotonic.observe(obj, v);
                match self.cache.get_mut(&key) {
                    Some(entry) => {
                        entry.validated_at = ctx.now();
                        Some(entry.bytes.clone())
                    }
                    // Entry evicted while validating: treat as a miss.
                    None => None,
                }
            }
            _ => {
                // Changed version, unknown object, not an owner, or
                // timeout: drop the entry and take the full read path.
                self.cache.remove(&key);
                None
            }
        }
    }

    /// Serves a read from the host-shared [`NodeCache`] if possible:
    /// within the policy's lease without any message (gated by the
    /// policy's admission check, so a session never accepts a shared
    /// entry behind its own frontier), otherwise after a
    /// dispatcher-level version probe confirming the entry is current.
    /// Returns `None` on miss; a failed revalidation drops the entry.
    fn node_cached_read(
        &mut self,
        ctx: &mut Ctx,
        obj: &ObjectRef,
        method: &str,
        args: &Bytes,
        rf: u8,
    ) -> Option<Bytes> {
        let nc = self.node_cache.as_ref()?.clone();
        let key = (obj.clone(), intern(method), args.clone());
        let Some(entry) = nc.get(&key) else {
            ctx.metric_incr("dso.node_cache.miss");
            return None;
        };
        let lease_ok = self
            .policy
            .lease()
            .is_some_and(|l| ctx.now().saturating_duration_since(entry.validated_at) < l);
        if lease_ok {
            if !self.policy.admit(&mut self.monotonic, obj, entry.version, entry.lamport) {
                // Another container's older result: stale for *this*
                // session even though the lease is live.
                ctx.metric_incr("dso.node_cache.miss");
                return None;
            }
            let mark = ctx.span_instant("dso.cache", "dso");
            ctx.span_annotate(mark, "obj", obj.to_string());
            ctx.span_annotate(mark, "source", "node-leased");
            ctx.metric_incr("dso.node_cache.hit");
            ctx.sleep(CACHE_HIT_COST);
            return Some(entry.bytes);
        }
        // Lease expired (or the policy validates every hit): one cheap
        // version probe, no worker hop, no method CPU.
        let target = self.route(ctx, obj, rf, true)?;
        let lat = self.h.cfg.client_net.sample(ctx.rng());
        let resp: Option<VersionResp> = ctx.call_timeout(
            target,
            VersionReq { obj: obj.clone(), rf },
            lat,
            self.h.cfg.call_timeout,
        );
        match resp {
            Some(VersionResp(Some(v)))
                if v == entry.version
                    && self.policy.admit(
                        &mut self.monotonic,
                        obj,
                        entry.version,
                        entry.lamport,
                    ) =>
            {
                nc.revalidate(&key, ctx.now());
                let mark = ctx.span_instant("dso.cache", "dso");
                ctx.span_annotate(mark, "obj", obj.to_string());
                ctx.span_annotate(mark, "source", "node-validated");
                ctx.metric_incr("dso.node_cache.hit");
                Some(entry.bytes)
            }
            _ => {
                // Changed version, unknown object, not an owner, or
                // timeout: drop the shared entry and take the full path.
                nc.remove(&key);
                ctx.metric_incr("dso.node_cache.miss");
                None
            }
        }
    }

    /// Drops every cached result for `obj` (called on mutations through
    /// this client).
    fn invalidate(&mut self, obj: &ObjectRef) {
        self.cache.retain(|(o, _, _), _| o != obj);
    }

    /// Invokes a batch of independent, non-blocking operations, grouping
    /// them by destination node so each node receives *one* message for
    /// all its operations instead of one round-trip per operation. Results
    /// come back per-operation and are returned in input order.
    ///
    /// Items that cannot be answered from the batch (ownership moved, node
    /// crashed, object in transfer, stale replica) transparently fall back
    /// to the single-call path with its full retry loop, so the error
    /// behaviour matches N separate [`DsoClient::invoke`] calls.
    ///
    /// Blocking (parking) methods are not allowed in batches; the server
    /// rejects them.
    pub fn invoke_batch(&mut self, ctx: &mut Ctx, ops: &[BatchOp]) -> Vec<Result<Bytes, DsoError>> {
        // One span for the whole fan-out; per-item server executions (and
        // any fallback single calls) nest under it.
        let batch_span = ctx.span_begin("dso.batch", "dso");
        ctx.span_annotate(batch_span, "ops", ops.len().to_string());
        ctx.metric_incr("dso.batches");
        let prev_tc = ctx.set_trace_ctx(TraceCtx::under(batch_span));
        let mut results: Vec<Option<Result<Bytes, DsoError>>> = Vec::new();
        results.resize_with(ops.len(), || None);

        // Cache fast path per read-only item.
        if self.h.cfg.read_cache {
            for (i, op) in ops.iter().enumerate() {
                if op.readonly {
                    if let Some(bytes) = self.cached_read(ctx, &op.obj, &op.method, &op.args, op.rf)
                    {
                        results[i] = Some(Ok(bytes));
                    }
                }
            }
        }

        // Group the remainder by destination address.
        let mut groups: HashMap<Addr, Vec<(u32, InvokeReq)>> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            let Some(addr) = self.route(ctx, &op.obj, op.rf, op.readonly) else {
                continue; // empty view: the fallback path will wait it out
            };
            groups.entry(addr).or_default().push((
                i as u32,
                InvokeReq {
                    obj: op.obj.clone(),
                    method: op.method.clone(),
                    args: op.args.clone(),
                    rf: op.rf,
                    create: op.create.clone(),
                    readonly: op.readonly,
                    dep: self.policy.dep(&op.obj),
                    span: batch_span,
                },
            ));
        }

        for (addr, items) in groups {
            let n = items.len();
            let lat = self.h.cfg.client_net.sample(ctx.rng());
            let replies: Vec<BatchItemResp> =
                ctx.call_collect(addr, BatchReq { items }, lat, n, self.h.cfg.call_timeout);
            for BatchItemResp { tag, resp } in replies {
                let i = tag as usize;
                let op = &ops[i];
                match resp {
                    InvokeResp::Value { bytes, version, lamport } => {
                        if op.readonly
                            && !self.policy.admit(&mut self.monotonic, &op.obj, version, lamport)
                        {
                            continue; // stale replica: retry via fallback
                        }
                        if !op.readonly {
                            self.policy.observe_write(
                                &mut self.monotonic,
                                &op.obj,
                                version,
                                lamport,
                            );
                            self.invalidate(&op.obj);
                            if let Some(nc) = &self.node_cache {
                                if nc.invalidate(&op.obj) > 0 {
                                    ctx.metric_incr("dso.node_cache.invalidate");
                                }
                            }
                        } else if self.h.cfg.read_cache {
                            self.cache.insert(
                                (op.obj.clone(), op.method.clone(), op.args.clone()),
                                CacheEntry {
                                    bytes: bytes.clone(),
                                    version,
                                    validated_at: ctx.now(),
                                },
                            );
                        }
                        results[i] = Some(Ok(bytes));
                    }
                    InvokeResp::Error(e) => {
                        results[i] = Some(Err(DsoError::Object(e)));
                    }
                    InvokeResp::NotOwner { .. }
                    | InvokeResp::Retry
                    | InvokeResp::Overloaded { .. } => {
                        // Left unanswered: the fallback below retries with
                        // backoff (and, where warranted, a view refresh).
                    }
                }
            }
        }

        // Fallback: anything still unanswered goes through the standard
        // retrying single-call path (its "dso.call" spans nest under the
        // batch span via the trace context set above).
        let out = ops
            .iter()
            .zip(results)
            .map(|(op, r)| match r {
                Some(r) => r,
                None => self.invoke(
                    ctx,
                    &op.obj,
                    &op.method,
                    op.args.clone(),
                    op.rf,
                    op.create.clone(),
                    false,
                    op.readonly,
                ),
            })
            .collect();
        ctx.set_trace_ctx(prev_tc);
        ctx.span_end(batch_span);
        out
    }

    /// Typed invocation: encodes `args`, decodes the reply.
    ///
    /// # Errors
    ///
    /// See [`DsoClient::invoke`]; additionally fails if encoding or
    /// decoding fails.
    #[allow(clippy::too_many_arguments)]
    pub fn call<A, R>(
        &mut self,
        ctx: &mut Ctx,
        obj: &ObjectRef,
        method: &str,
        args: &A,
        rf: u8,
        create: Option<Bytes>,
        blocking: bool,
        readonly: bool,
    ) -> Result<R, DsoError>
    where
        A: serde::Serialize,
        R: serde::de::DeserializeOwned,
    {
        let bytes = self.encode_args(args)?;
        let out = self.invoke(ctx, obj, method, bytes, rf, create, blocking, readonly)?;
        simcore::codec::from_bytes(&out)
            .map_err(|e| DsoError::Object(crate::error::ObjectError::BadState(e.to_string())))
    }

    /// Encodes `args` into a request payload through the client's
    /// reusable scratch buffer: the encoder writes into capacity that
    /// plateaus at the largest request, so a typed call performs a single
    /// allocation (the shared payload) instead of encode-buffer +
    /// payload.
    ///
    /// # Errors
    ///
    /// Fails if the codec cannot represent `args`.
    pub fn encode_args<A>(&mut self, args: &A) -> Result<Bytes, DsoError>
    where
        A: serde::Serialize + ?Sized,
    {
        simcore::codec::to_bytes_into(args, &mut self.scratch)
            .map_err(|e| DsoError::Object(crate::error::ObjectError::BadArgs(e.to_string())))?;
        Ok(Bytes::copy_from_slice(&self.scratch))
    }

    /// Measures one call's latency, returning the value and elapsed time.
    ///
    /// # Errors
    ///
    /// See [`DsoClient::invoke`].
    #[allow(clippy::too_many_arguments)]
    pub fn timed_invoke(
        &mut self,
        ctx: &mut Ctx,
        obj: &ObjectRef,
        method: &str,
        args: Bytes,
        rf: u8,
        create: Option<Bytes>,
        readonly: bool,
    ) -> Result<(Bytes, Duration), DsoError> {
        let t0 = ctx.now();
        let v = self.invoke(ctx, obj, method, args, rf, create, false, readonly)?;
        Ok((v, ctx.now().saturating_duration_since(t0)))
    }
}

/// Maps a shared-object type to the wait kind shown in deadlock reports
/// when a blocking call on it never returns.
fn wait_kind_for(type_name: &str) -> WaitKind {
    match type_name {
        "CyclicBarrier" => WaitKind::Barrier,
        "Semaphore" => WaitKind::Semaphore,
        "CountDownLatch" | "Future" | "FutureObject" => WaitKind::Condition,
        _ => WaitKind::Call,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(k: &str) -> ObjectRef {
        ObjectRef::new("T", k)
    }

    #[test]
    fn monotonic_tracker_rejects_regressions() {
        let mut m = MonotonicReads::new();
        assert!(m.admit(&obj("a"), 0));
        assert!(m.admit(&obj("a"), 3));
        assert!(!m.admit(&obj("a"), 2), "older than high water");
        assert!(m.admit(&obj("a"), 3), "equal is fine");
        assert!(m.admit(&obj("b"), 1), "independent per object");
        m.observe(&obj("a"), 10);
        assert_eq!(m.high_water(&obj("a")), 10);
        assert!(!m.admit(&obj("a"), 9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    // Model of a replicated object: the primary applies every write
    // immediately; each replica has applied some *prefix* of the write
    // sequence (replicas trail, they never reorder — Skeen delivery is
    // totally ordered). A "read" probes a schedule-chosen replica and is
    // filtered through `MonotonicReads`, retrying at the primary when
    // rejected — exactly the client's read path.
    //
    // Property: the sequence of versions returned to the client never
    // decreases, whatever the interleaving of writes, replica lags, and
    // replica choices.
    proptest! {
        #[test]
        fn replica_reads_are_monotonic(
            // Each event: (is_write, replica_index, lag) — lag is how far
            // the probed replica trails the primary at that moment.
            events in proptest::collection::vec((any::<bool>(), 0usize..3, 0u64..5), 1..120),
        ) {
            let mut primary_version = 0u64;
            let mut tracker = MonotonicReads::new();
            let target = ObjectRef::new("AtomicLong", "x");
            let mut returned = Vec::new();
            for (is_write, _replica, lag) in events {
                if is_write {
                    primary_version += 1;
                    tracker.observe(&target, primary_version);
                } else {
                    let replica_version = primary_version.saturating_sub(lag);
                    let v = if tracker.admit(&target, replica_version) {
                        replica_version
                    } else {
                        // Stale: the client retries at the primary.
                        tracker.observe(&target, primary_version);
                        primary_version
                    };
                    returned.push(v);
                }
            }
            prop_assert!(
                returned.windows(2).all(|w| w[0] <= w[1]),
                "returned versions must be non-decreasing: {returned:?}"
            );
        }
    }
}
