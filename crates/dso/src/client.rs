//! The client side of the DSO layer: view discovery, primary routing,
//! retries with backoff, and the raw `invoke` used by the typed handles in
//! [`crate::api`].

use std::fmt;
use std::time::Duration;

use simcore::{Addr, Ctx};

use crate::config::DsoConfig;
use crate::error::DsoError;
use crate::object::ObjectRef;
use crate::protocol::{GetView, InvokeReq, InvokeResp, View};
use crate::ring::Ring;

/// Cheap, `Send` handle describing how to reach a DSO deployment. Each
/// simulated process turns it into its own [`DsoClient`] with
/// [`DsoClientHandle::connect`].
#[derive(Clone)]
pub struct DsoClientHandle {
    coordinator: Addr,
    cfg: DsoConfig,
}

impl fmt::Debug for DsoClientHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsoClientHandle").field("coordinator", &self.coordinator).finish()
    }
}

impl DsoClientHandle {
    /// Creates a handle from the coordinator address and configuration.
    pub fn new(coordinator: Addr, cfg: DsoConfig) -> DsoClientHandle {
        DsoClientHandle { coordinator, cfg }
    }

    /// Instantiates a per-process client.
    pub fn connect(&self) -> DsoClient {
        DsoClient {
            h: self.clone(),
            view: None,
        }
    }
}

/// A per-process DSO client with a cached view.
pub struct DsoClient {
    h: DsoClientHandle,
    view: Option<(View, Ring)>,
}

impl fmt::Debug for DsoClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsoClient")
            .field("view", &self.view.as_ref().map(|(v, _)| v.id))
            .finish()
    }
}

impl DsoClient {
    /// The client configuration.
    pub fn config(&self) -> &DsoConfig {
        &self.h.cfg
    }

    /// Forces a view refresh from the coordinator.
    pub fn refresh_view(&mut self, ctx: &mut Ctx) -> View {
        let lat = self.h.cfg.client_net.sample(ctx.rng());
        let view: View = ctx.call(self.h.coordinator, GetView, lat);
        let ring = Ring::new(&view.node_ids());
        self.view = Some((view.clone(), ring));
        view
    }

    fn view(&mut self, ctx: &mut Ctx) -> &(View, Ring) {
        if self.view.is_none() {
            self.refresh_view(ctx);
        }
        self.view.as_ref().expect("view cached")
    }

    /// Invokes `method(args)` on the object, routing to its primary under
    /// the current view and retrying transparently on ownership changes,
    /// transfers in progress, and node failures.
    ///
    /// `blocking` marks methods that may legitimately park on the server
    /// (barrier `await`, future `get`): such calls are issued without a
    /// client-side timeout.
    ///
    /// # Errors
    ///
    /// [`DsoError::Object`] for application-level failures, or
    /// [`DsoError::GaveUp`] when retries are exhausted.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke(
        &mut self,
        ctx: &mut Ctx,
        obj: &ObjectRef,
        method: &str,
        args: Vec<u8>,
        rf: u8,
        create: Option<Vec<u8>>,
        blocking: bool,
    ) -> Result<Vec<u8>, DsoError> {
        let max = self.h.cfg.max_retries;
        for attempt in 0..max {
            let (view, ring) = self.view(ctx);
            let primary = ring.primary(obj);
            let target = primary.and_then(|p| view.addr_of(p));
            let Some(addr) = target else {
                // Empty view: wait for servers to join.
                let backoff = self.h.cfg.backoff_for(attempt);
                ctx.sleep(backoff);
                self.refresh_view(ctx);
                continue;
            };
            let req = InvokeReq {
                obj: obj.clone(),
                method: method.to_string(),
                args: args.clone(),
                rf,
                create: create.clone(),
            };
            let lat = self.h.cfg.client_net.sample(ctx.rng());
            let resp: Option<InvokeResp> = if blocking {
                Some(ctx.call(addr, req, lat))
            } else {
                ctx.call_timeout(addr, req, lat, self.h.cfg.call_timeout)
            };
            match resp {
                Some(InvokeResp::Value(v)) => return Ok(v),
                Some(InvokeResp::Error(e)) => return Err(DsoError::Object(e)),
                Some(InvokeResp::NotOwner { .. }) => {
                    self.refresh_view(ctx);
                }
                Some(InvokeResp::Retry) => {
                    let backoff = self.h.cfg.backoff_for(attempt);
                    ctx.sleep(backoff);
                    self.refresh_view(ctx);
                }
                None => {
                    // Timeout: the node may have crashed; refresh and retry.
                    let backoff = self.h.cfg.backoff_for(attempt);
                    ctx.sleep(backoff);
                    self.refresh_view(ctx);
                }
            }
        }
        Err(DsoError::GaveUp { attempts: max })
    }

    /// Typed invocation: encodes `args`, decodes the reply.
    ///
    /// # Errors
    ///
    /// See [`DsoClient::invoke`]; additionally fails if encoding or
    /// decoding fails.
    #[allow(clippy::too_many_arguments)]
    pub fn call<A, R>(
        &mut self,
        ctx: &mut Ctx,
        obj: &ObjectRef,
        method: &str,
        args: &A,
        rf: u8,
        create: Option<Vec<u8>>,
        blocking: bool,
    ) -> Result<R, DsoError>
    where
        A: serde::Serialize,
        R: serde::de::DeserializeOwned,
    {
        let bytes = simcore::codec::to_bytes(args)
            .map_err(|e| DsoError::Object(crate::error::ObjectError::BadArgs(e.to_string())))?;
        let out = self.invoke(ctx, obj, method, bytes, rf, create, blocking)?;
        simcore::codec::from_bytes(&out)
            .map_err(|e| DsoError::Object(crate::error::ObjectError::BadState(e.to_string())))
    }

    /// Measures one call's latency, returning the value and elapsed time.
    ///
    /// # Errors
    ///
    /// See [`DsoClient::invoke`].
    pub fn timed_invoke(
        &mut self,
        ctx: &mut Ctx,
        obj: &ObjectRef,
        method: &str,
        args: Vec<u8>,
        rf: u8,
        create: Option<Vec<u8>>,
    ) -> Result<(Vec<u8>, Duration), DsoError> {
        let t0 = ctx.now();
        let v = self.invoke(ctx, obj, method, args, rf, create, false)?;
        Ok((v, ctx.now().saturating_duration_since(t0)))
    }
}
