//! Deployment helper: starts a coordinator plus `n` storage nodes and hands
//! out client handles — the analogue of provisioning the DSO tier
//! ("a CRUCIAL storage instance starts in 30 seconds", §6.2.3, minus the
//! waiting).

use simcore::{Addr, Ctx, Sim};

use crate::client::DsoClientHandle;
use crate::config::DsoConfig;
use crate::durability::RecoveryReport;
use crate::error::DsoError;
use crate::membership::{spawn_coordinator, spawn_coordinator_from};
use crate::object::ObjectRegistry;
use crate::protocol::NodeId;
use crate::server::{spawn_server, spawn_server_from, ServerHandle};

/// A running DSO deployment inside a simulation.
///
/// # Examples
///
/// ```
/// use simcore::Sim;
/// use dso::{DsoCluster, DsoConfig, ObjectRegistry, api};
///
/// let mut sim = Sim::new(1);
/// let cluster = DsoCluster::start(&sim, 2, DsoConfig::default(),
///                                 ObjectRegistry::with_builtins());
/// let handle = cluster.client_handle();
/// sim.spawn("app", move |ctx| {
///     let mut cli = handle.connect();
///     let counter = api::AtomicLong::new("hits");
///     assert_eq!(counter.add_and_get(ctx, &mut cli, 5).expect("dso"), 5);
/// });
/// sim.run_until_idle().expect_quiescent();
/// ```
#[derive(Debug)]
pub struct DsoCluster {
    coordinator: Addr,
    cfg: DsoConfig,
    registry: ObjectRegistry,
    servers: Vec<ServerHandle>,
    /// Liveness flags aligned with `servers`: `false` once the node was
    /// crashed or drained through this handle.
    alive: Vec<bool>,
    next_node: u32,
}

impl DsoCluster {
    /// Starts a coordinator and `n` storage nodes.
    pub fn start(sim: &Sim, n: u32, cfg: DsoConfig, registry: ObjectRegistry) -> DsoCluster {
        let coordinator = spawn_coordinator(sim, cfg.clone());
        let mut cluster = DsoCluster {
            coordinator,
            cfg,
            registry,
            servers: Vec::new(),
            alive: Vec::new(),
            next_node: 0,
        };
        for _ in 0..n {
            cluster.add_node(sim);
        }
        cluster
    }

    /// Rebuilds a deployment from its durability store after a
    /// full-cluster crash: scan the store (with read repair against LIST
    /// visibility lag), start a fresh coordinator plus `n` nodes writing
    /// under a bumped generation — so the new WAL never collides with the
    /// dead cluster's keys — wait for the `n`-member view, then replay
    /// the newest checkpoint overlaid with every newer WAL record.
    ///
    /// The recovered cluster may be any size; placement follows its own
    /// ring. `cfg.durability` must be set (it carries the store); the
    /// durability *level* may differ from the dead cluster's.
    ///
    /// # Errors
    ///
    /// [`DsoError::Timeout`] when the store listing does not settle or
    /// the view does not form; propagates replay errors.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.durability` is `None`.
    pub fn recover_from(
        ctx: &mut Ctx,
        n: u32,
        mut cfg: DsoConfig,
        registry: ObjectRegistry,
    ) -> Result<(DsoCluster, RecoveryReport), DsoError> {
        // invariant: the documented API contract (see # Panics) — callers
        // must configure durability, there is nothing to recover without a
        // store to recover from.
        let d = cfg.durability.clone().expect("recover_from requires DsoConfig.durability");
        let span = ctx.span_begin("dso.recover", "dso");
        let scan = match crate::durability::scan(ctx, &d) {
            Ok(s) => s,
            Err(e) => {
                ctx.span_annotate(span, "outcome", "scan-timeout");
                ctx.span_end(span);
                return Err(e);
            }
        };
        // invariant: checked Some at the top of the function.
        cfg.durability.as_mut().expect("durability checked").store =
            d.store.with_generation(scan.next_gen);
        let coordinator = spawn_coordinator_from(ctx, cfg.clone());
        let mut cluster = DsoCluster {
            coordinator,
            cfg,
            registry,
            servers: Vec::new(),
            alive: Vec::new(),
            next_node: 0,
        };
        for _ in 0..n {
            cluster.add_node_from(ctx);
        }
        // Wait for every node to join before replaying, so placement is
        // computed against the full ring and nothing rebalances mid-way.
        let mut cli = cluster.client_handle().connect();
        let mut formed = false;
        for _ in 0..200 {
            if cli.refresh_view(ctx).members.len() == n as usize {
                formed = true;
                break;
            }
            ctx.sleep(cluster.cfg.heartbeat_interval);
        }
        if !formed {
            ctx.span_annotate(span, "outcome", "view-timeout");
            ctx.span_end(span);
            return Err(DsoError::Timeout);
        }
        let result = crate::durability::replay(ctx, &mut cli, scan, &d);
        match &result {
            Ok(report) => {
                ctx.span_annotate(span, "generation", report.generation.to_string());
                ctx.span_annotate(span, "objects", report.objects.to_string());
                ctx.span_annotate(span, "wal_segments", report.wal_segments.to_string());
                ctx.span_annotate(span, "relist_rounds", report.relist_rounds.to_string());
            }
            Err(e) => ctx.span_annotate(span, "outcome", format!("{e:?}")),
        }
        ctx.span_end(span);
        result.map(|report| (cluster, report))
    }

    /// The coordinator's address.
    pub fn coordinator(&self) -> Addr {
        self.coordinator
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &DsoConfig {
        &self.cfg
    }

    /// A `Send` handle from which processes create their own clients.
    pub fn client_handle(&self) -> DsoClientHandle {
        DsoClientHandle::new(self.coordinator, self.cfg.clone())
    }

    /// Adds a fresh storage node (elasticity; Fig. 8's node addition).
    pub fn add_node(&mut self, sim: &Sim) -> ServerHandle {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        let h = spawn_server(sim, node, self.cfg.clone(), self.registry.clone(), self.coordinator);
        self.servers.push(h.clone());
        self.alive.push(true);
        h
    }

    /// Adds a fresh storage node from inside the simulation (the [`Ctx`]
    /// form of [`DsoCluster::add_node`], used by the control plane).
    pub fn add_node_from(&mut self, ctx: &mut Ctx) -> ServerHandle {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        let h =
            spawn_server_from(ctx, node, self.cfg.clone(), self.registry.clone(), self.coordinator);
        self.servers.push(h.clone());
        self.alive.push(true);
        h
    }

    /// Handles of all nodes ever started (including crashed and drained
    /// ones).
    pub fn servers(&self) -> &[ServerHandle] {
        &self.servers
    }

    /// Number of nodes not yet crashed or drained through this handle.
    pub fn live_nodes(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Whether the `idx`-th node is still considered live (not crashed or
    /// drained through this handle).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn is_live(&self, idx: usize) -> bool {
        self.alive[idx]
    }

    /// Index of the most recently added node still live, if any — scale-in
    /// policies retire youngest-first so long-lived nodes keep their
    /// placement stability.
    pub fn newest_live(&self) -> Option<usize> {
        self.alive.iter().rposition(|a| *a)
    }

    /// Crashes the `idx`-th node abruptly.
    ///
    /// Naming convention (shared with [`ServerHandle::crash`] /
    /// [`ServerHandle::crash_from`]): the bare verb takes a [`Sim`] (host
    /// side), the `_from` form takes a [`Ctx`] (from inside the
    /// simulation, e.g. a fault-injector process).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn crash_node(&mut self, sim: &Sim, idx: usize) {
        self.servers[idx].crash(sim);
        self.alive[idx] = false;
    }

    /// Crashes the `idx`-th node from inside the simulation (the [`Ctx`]
    /// form of [`DsoCluster::crash_node`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn crash_node_from(&mut self, ctx: &mut Ctx, idx: usize) {
        self.servers[idx].crash_from(ctx);
        self.alive[idx] = false;
    }

    /// Gracefully drains the `idx`-th node: it leaves the view, transfers
    /// its objects to the new owners, then retires (scale-in; the inverse
    /// of [`DsoCluster::add_node`]). The drain itself is asynchronous —
    /// this sends the [`crate::DrainNode`] request via a one-shot helper
    /// process and returns.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_node(&mut self, sim: &Sim, idx: usize) {
        let h = self.servers[idx].clone();
        self.alive[idx] = false;
        sim.spawn(&format!("dso-drain-{}", h.node), move |ctx| {
            h.drain_from(ctx);
        });
    }

    /// Drains the `idx`-th node from inside the simulation (the [`Ctx`]
    /// form of [`DsoCluster::remove_node`]). Returns `false` when the node
    /// was not running.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_node_from(&mut self, ctx: &mut Ctx, idx: usize) -> bool {
        self.alive[idx] = false;
        self.servers[idx].drain_from(ctx)
    }
}
