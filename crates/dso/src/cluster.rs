//! Deployment helper: starts a coordinator plus `n` storage nodes and hands
//! out client handles — the analogue of provisioning the DSO tier
//! ("a CRUCIAL storage instance starts in 30 seconds", §6.2.3, minus the
//! waiting).

use simcore::{Addr, Ctx, Sim};

use crate::client::DsoClientHandle;
use crate::config::DsoConfig;
use crate::membership::spawn_coordinator;
use crate::object::ObjectRegistry;
use crate::protocol::NodeId;
use crate::server::{spawn_server, spawn_server_from, ServerHandle};

/// A running DSO deployment inside a simulation.
///
/// # Examples
///
/// ```
/// use simcore::Sim;
/// use dso::{DsoCluster, DsoConfig, ObjectRegistry, api};
///
/// let mut sim = Sim::new(1);
/// let cluster = DsoCluster::start(&sim, 2, DsoConfig::default(),
///                                 ObjectRegistry::with_builtins());
/// let handle = cluster.client_handle();
/// sim.spawn("app", move |ctx| {
///     let mut cli = handle.connect();
///     let counter = api::AtomicLong::new("hits");
///     assert_eq!(counter.add_and_get(ctx, &mut cli, 5).expect("dso"), 5);
/// });
/// sim.run_until_idle().expect_quiescent();
/// ```
#[derive(Debug)]
pub struct DsoCluster {
    coordinator: Addr,
    cfg: DsoConfig,
    registry: ObjectRegistry,
    servers: Vec<ServerHandle>,
    /// Liveness flags aligned with `servers`: `false` once the node was
    /// crashed or drained through this handle.
    alive: Vec<bool>,
    next_node: u32,
}

impl DsoCluster {
    /// Starts a coordinator and `n` storage nodes.
    pub fn start(sim: &Sim, n: u32, cfg: DsoConfig, registry: ObjectRegistry) -> DsoCluster {
        let coordinator = spawn_coordinator(sim, cfg.clone());
        let mut cluster = DsoCluster {
            coordinator,
            cfg,
            registry,
            servers: Vec::new(),
            alive: Vec::new(),
            next_node: 0,
        };
        for _ in 0..n {
            cluster.add_node(sim);
        }
        cluster
    }

    /// The coordinator's address.
    pub fn coordinator(&self) -> Addr {
        self.coordinator
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &DsoConfig {
        &self.cfg
    }

    /// A `Send` handle from which processes create their own clients.
    pub fn client_handle(&self) -> DsoClientHandle {
        DsoClientHandle::new(self.coordinator, self.cfg.clone())
    }

    /// Adds a fresh storage node (elasticity; Fig. 8's node addition).
    pub fn add_node(&mut self, sim: &Sim) -> ServerHandle {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        let h = spawn_server(sim, node, self.cfg.clone(), self.registry.clone(), self.coordinator);
        self.servers.push(h.clone());
        self.alive.push(true);
        h
    }

    /// Adds a fresh storage node from inside the simulation (the [`Ctx`]
    /// form of [`DsoCluster::add_node`], used by the control plane).
    pub fn add_node_from(&mut self, ctx: &mut Ctx) -> ServerHandle {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        let h =
            spawn_server_from(ctx, node, self.cfg.clone(), self.registry.clone(), self.coordinator);
        self.servers.push(h.clone());
        self.alive.push(true);
        h
    }

    /// Handles of all nodes ever started (including crashed and drained
    /// ones).
    pub fn servers(&self) -> &[ServerHandle] {
        &self.servers
    }

    /// Number of nodes not yet crashed or drained through this handle.
    pub fn live_nodes(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Whether the `idx`-th node is still considered live (not crashed or
    /// drained through this handle).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn is_live(&self, idx: usize) -> bool {
        self.alive[idx]
    }

    /// Index of the most recently added node still live, if any — scale-in
    /// policies retire youngest-first so long-lived nodes keep their
    /// placement stability.
    pub fn newest_live(&self) -> Option<usize> {
        self.alive.iter().rposition(|a| *a)
    }

    /// Crashes the `idx`-th node abruptly.
    ///
    /// Naming convention (shared with [`ServerHandle::crash`] /
    /// [`ServerHandle::crash_from`]): the bare verb takes a [`Sim`] (host
    /// side), the `_from` form takes a [`Ctx`] (from inside the
    /// simulation, e.g. a fault-injector process).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn crash_node(&mut self, sim: &Sim, idx: usize) {
        self.servers[idx].crash(sim);
        self.alive[idx] = false;
    }

    /// Crashes the `idx`-th node from inside the simulation (the [`Ctx`]
    /// form of [`DsoCluster::crash_node`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn crash_node_from(&mut self, ctx: &mut Ctx, idx: usize) {
        self.servers[idx].crash_from(ctx);
        self.alive[idx] = false;
    }

    /// Gracefully drains the `idx`-th node: it leaves the view, transfers
    /// its objects to the new owners, then retires (scale-in; the inverse
    /// of [`DsoCluster::add_node`]). The drain itself is asynchronous —
    /// this sends the [`crate::DrainNode`] request via a one-shot helper
    /// process and returns.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_node(&mut self, sim: &Sim, idx: usize) {
        let h = self.servers[idx].clone();
        self.alive[idx] = false;
        sim.spawn(&format!("dso-drain-{}", h.node), move |ctx| {
            h.drain_from(ctx);
        });
    }

    /// Drains the `idx`-th node from inside the simulation (the [`Ctx`]
    /// form of [`DsoCluster::remove_node`]). Returns `false` when the node
    /// was not running.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_node_from(&mut self, ctx: &mut Ctx, idx: usize) -> bool {
        self.alive[idx] = false;
        self.servers[idx].drain_from(ctx)
    }
}
