//! Tunable parameters of the DSO layer.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use simcore::LatencyModel;

/// How read-only method calls are routed (see DESIGN.md §4).
///
/// Writes always go through the primary (and, for replicated objects, the
/// SMR total-order multicast); this mode only governs *declared read-only*
/// methods on replicated objects.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConsistencyMode {
    /// Reads are served by the object's primary only. Together with
    /// per-object serialization on the primary this preserves
    /// linearizability, and is the default.
    #[default]
    Linearizable,
    /// Reads may be served by *any* replica in the object's placement set.
    /// Replicas can trail the primary, so reads may be stale; the client
    /// enforces **monotonic reads** per object via returned version
    /// numbers (a read never observes an older version than one the same
    /// client already saw).
    ReplicaReads,
}

/// Configuration of a DSO deployment.
///
/// The defaults are calibrated against the paper's evaluation setup
/// (r5.2xlarge storage nodes inside a VPC): ~90 µs one-way in-VPC latency
/// and 8 worker threads per node put a simple remote method call at
/// ≈ 230 µs, matching Table 2.
#[derive(Clone, Debug)]
pub struct DsoConfig {
    /// Worker threads per storage node (vCPUs of r5.2xlarge).
    pub workers_per_node: u32,
    /// One-way client ↔ server network latency.
    pub client_net: LatencyModel,
    /// One-way server ↔ server network latency.
    pub peer_net: LatencyModel,
    /// How often servers heartbeat the membership coordinator.
    pub heartbeat_interval: Duration,
    /// Silence after which the coordinator declares a node dead.
    pub failure_timeout: Duration,
    /// Client-side RPC timeout for non-blocking calls.
    pub call_timeout: Duration,
    /// Maximum client attempts before giving up.
    pub max_retries: u32,
    /// Initial client retry backoff (doubles per retry, capped at 64x).
    pub retry_backoff: Duration,
    /// Bandwidth used for state transfer during rebalancing, bytes/s.
    pub transfer_bandwidth: f64,
    /// Routing of declared read-only methods (default: primary-only,
    /// linearizable).
    pub consistency: ConsistencyMode,
    /// Opt-in client-side cache for read-only results, validated against
    /// the object's version (or served within [`DsoConfig::cache_lease`]).
    /// Mutations through the same client invalidate the object's entries.
    pub read_cache: bool,
    /// With `read_cache`, how long a validated entry may be re-served
    /// without *any* server round-trip. `None` (the default) validates
    /// every hit with a cheap dispatcher-level version probe; reads are
    /// then never staler than the probed replica.
    pub cache_lease: Option<Duration>,
    /// Runtime check that methods declared read-only really do not mutate:
    /// the server snapshots the object state around every declared
    /// read-only invocation and rejects the call (restoring the state) if
    /// the bytes changed. The read fast path *trusts* `is_readonly`
    /// (skipping SMR and version bumps), so a misdeclared method would
    /// silently fork replicas; this turns that into a typed error. On by
    /// default — costs host CPU only, no virtual time.
    pub verify_readonly: bool,
}

impl Default for DsoConfig {
    fn default() -> Self {
        DsoConfig {
            workers_per_node: 8,
            client_net: LatencyModel::uniform(Duration::from_micros(90), 0.10),
            peer_net: LatencyModel::uniform(Duration::from_micros(90), 0.10),
            heartbeat_interval: Duration::from_millis(500),
            failure_timeout: Duration::from_millis(1600),
            call_timeout: Duration::from_millis(1000),
            max_retries: 12,
            retry_backoff: Duration::from_millis(1),
            transfer_bandwidth: 200.0 * 1024.0 * 1024.0,
            consistency: ConsistencyMode::default(),
            read_cache: false,
            cache_lease: None,
            verify_readonly: true,
        }
    }
}

impl DsoConfig {
    /// Backoff for the given (0-based) attempt: exponential, capped.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(6);
        self.retry_backoff * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DsoConfig::default();
        assert!(c.workers_per_node >= 1);
        assert!(c.failure_timeout > c.heartbeat_interval * 2);
        assert!(c.call_timeout > c.client_net.base * 4);
        // The read fast path must be opt-in: linearizable, uncached.
        assert_eq!(c.consistency, ConsistencyMode::Linearizable);
        assert!(!c.read_cache);
        assert_eq!(c.cache_lease, None);
        // …and the correctness net around it must be opt-out.
        assert!(c.verify_readonly);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let c = DsoConfig::default();
        assert_eq!(c.backoff_for(0), Duration::from_millis(1));
        assert_eq!(c.backoff_for(1), Duration::from_millis(2));
        assert_eq!(c.backoff_for(6), Duration::from_millis(64));
        assert_eq!(c.backoff_for(20), Duration::from_millis(64), "capped");
    }
}
