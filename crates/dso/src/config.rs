//! Tunable parameters of the DSO layer.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use simcore::LatencyModel;

/// How read-only method calls are routed (see DESIGN.md §4).
///
/// Writes always go through the primary (and, for replicated objects, the
/// SMR total-order multicast); this mode only governs *declared read-only*
/// methods on replicated objects.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConsistencyMode {
    /// Reads are served by the object's primary only. Together with
    /// per-object serialization on the primary this preserves
    /// linearizability, and is the default.
    #[default]
    Linearizable,
    /// Reads may be served by *any* replica in the object's placement set.
    /// Replicas can trail the primary, so reads may be stale; the client
    /// enforces **monotonic reads** per object via returned version
    /// numbers (a read never observes an older version than one the same
    /// client already saw).
    ReplicaReads,
    /// Session-causal reads: every reply carries the object's Lamport
    /// stamp, the client tracks the stamps it has observed (its causal
    /// frontier) and piggybacks them as dependencies on later requests.
    /// A replica reply behind the client's frontier for that object is
    /// rejected and retried at the primary, restoring **monotonic reads**
    /// and **read-your-writes** per session on top of replica routing.
    Causal,
    /// Bounded-staleness reads: the primary's reply is cached and
    /// re-served without *any* server round-trip for
    /// [`DsoConfig::staleness_bound`] of virtual time — the bound *is*
    /// the lease, generalizing [`DsoConfig::cache_lease`] into a
    /// first-class mode whose guarantee `dso::verify::check_staleness_bound`
    /// machine-checks. Requires `read_cache` and a `staleness_bound`.
    BoundedStaleness,
    /// Convergent (CRDT) objects: writes to [`Mergeable`] types apply at
    /// the contacted replica *without* the SMR multicast; replicas
    /// exchange state on an anti-entropy ticker
    /// ([`DsoConfig::anti_entropy_interval`]) and reconcile through
    /// [`Mergeable::merge`]. Reads rotate over replicas and are always
    /// admitted — the guarantee is convergence, not linearizability.
    ///
    /// [`Mergeable`]: crate::object::Mergeable
    /// [`Mergeable::merge`]: crate::object::Mergeable::merge
    CrdtMerge,
}

/// How (and whether) applied mutations are persisted to the durability
/// store (see `dso::durability` and DESIGN.md "Durability & recovery").
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DurabilityLevel {
    /// No WAL, no checkpoints — the pre-existing RAM-only behavior. The
    /// default; schedules (and golden determinism hashes) are
    /// byte-identical to a build without the durability subsystem.
    #[default]
    None,
    /// Mutations are acknowledged immediately and the per-node WAL daemon
    /// group-commits them to the store in the background. Write latency is
    /// unchanged; a crash loses at most one group-commit window of
    /// acknowledged writes (the loss window).
    Async,
    /// A mutation is acknowledged only after the group-commit batch
    /// containing it has been PUT to the store. Zero loss window for
    /// acknowledged writes, at the cost of up to one group-commit interval
    /// plus one store PUT (~35 ms) of added write latency.
    Sync,
}

/// Configuration of the durability subsystem: where WAL segments and
/// checkpoints go, how writes are acknowledged, and how recovery copes
/// with the store's eventual consistency.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// The cloud object store (plus key prefix and generation) that holds
    /// WAL segments and checkpoints.
    pub store: crate::durability::DurabilityStore,
    /// Write-acknowledgement contract. [`DurabilityLevel::None`] disables
    /// the subsystem entirely even when a store is configured.
    pub level: DurabilityLevel,
    /// Group-commit interval: how often each node's WAL daemon flushes its
    /// buffered records as one segment PUT (amortizing the ~35 ms PUT).
    pub group_commit: Duration,
    /// Maximum records per flushed segment; a larger backlog drains over
    /// several consecutive segments within the same flush.
    pub segment_max_records: usize,
    /// Checkpoints retained before garbage collection deletes older
    /// checkpoints and the WAL segments they subsume. At least 2, so the
    /// newest checkpoint may still be inside the store's visibility window
    /// while the previous one already covers every GC'd segment.
    pub checkpoint_keep: u32,
    /// Recovery read-repair window: recovery keeps re-LISTing until the
    /// listing has been stable (and every checkpoint floor satisfied) for
    /// this long. The zero-loss contract of [`DurabilityLevel::Sync`]
    /// holds when this dominates the store's visibility delay.
    pub settle: Duration,
    /// Cadence of recovery's re-LIST rounds within the settle window.
    pub settle_step: Duration,
}

impl DurabilityConfig {
    /// A durability configuration over `store` with the defaults:
    /// [`DurabilityLevel::Async`], 5 ms group commit, 256-record segments,
    /// 2 checkpoints retained, and a 250 ms / 50 ms settle loop.
    pub fn new(store: crate::durability::DurabilityStore) -> DurabilityConfig {
        DurabilityConfig {
            store,
            level: DurabilityLevel::Async,
            group_commit: Duration::from_millis(5),
            segment_max_records: 256,
            checkpoint_keep: 2,
            settle: Duration::from_millis(250),
            settle_step: Duration::from_millis(50),
        }
    }
}

/// Admission control at each storage node's dispatcher (load shedding).
///
/// Two independent gates, both checked *before* any ownership or routing
/// work: a **token bucket** bounding the sustained request rate, and a
/// **queue-depth cap** bounding the number of invocations a node holds
/// in flight (queued + executing). A request failing either gate is
/// answered with a retryable `Overloaded(retry_after)` instead of being
/// queued — shedding early keeps latency bounded where an unbounded queue
/// would let it collapse. Cheap dispatcher-level probes (version checks,
/// snapshots, membership traffic) are never shed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Sustained admission rate, tokens (requests) per second.
    pub rate: f64,
    /// Bucket capacity: how many requests may burst above the rate.
    pub burst: f64,
    /// Maximum in-flight invocations (queued + executing) per node.
    pub max_queue_depth: u32,
    /// Backoff hint returned to shed clients.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate: 20_000.0,
            burst: 2_000.0,
            max_queue_depth: 512,
            retry_after: Duration::from_millis(10),
        }
    }
}

/// Configuration of a DSO deployment.
///
/// The defaults are calibrated against the paper's evaluation setup
/// (r5.2xlarge storage nodes inside a VPC): ~90 µs one-way in-VPC latency
/// and 8 worker threads per node put a simple remote method call at
/// ≈ 230 µs, matching Table 2.
#[derive(Clone, Debug)]
pub struct DsoConfig {
    /// Worker threads per storage node (vCPUs of r5.2xlarge).
    pub workers_per_node: u32,
    /// One-way client ↔ server network latency.
    pub client_net: LatencyModel,
    /// One-way server ↔ server network latency.
    pub peer_net: LatencyModel,
    /// How often servers heartbeat the membership coordinator.
    pub heartbeat_interval: Duration,
    /// Silence after which the coordinator declares a node dead.
    pub failure_timeout: Duration,
    /// Client-side RPC timeout for non-blocking calls.
    pub call_timeout: Duration,
    /// Maximum client attempts before giving up.
    pub max_retries: u32,
    /// Initial client retry backoff (doubles per retry, capped at 64x).
    pub retry_backoff: Duration,
    /// Bandwidth used for state transfer during rebalancing, bytes/s.
    pub transfer_bandwidth: f64,
    /// Routing of declared read-only methods (default: primary-only,
    /// linearizable).
    pub consistency: ConsistencyMode,
    /// Opt-in client-side cache for read-only results, validated against
    /// the object's version (or served within [`DsoConfig::cache_lease`]).
    /// Mutations through the same client invalidate the object's entries.
    pub read_cache: bool,
    /// With `read_cache`, how long a validated entry may be re-served
    /// without *any* server round-trip. `None` (the default) validates
    /// every hit with a cheap dispatcher-level version probe; reads are
    /// then never staler than the probed replica.
    pub cache_lease: Option<Duration>,
    /// Under [`ConsistencyMode::BoundedStaleness`], the maximum virtual
    /// time a read may trail the write frontier: primary replies are
    /// cached and re-served for this long, so the bound holds by
    /// construction (`dso::verify::check_staleness_bound` verifies it).
    /// Must be `None` in every other mode.
    pub staleness_bound: Option<Duration>,
    /// Opt-in co-located cache tier: one [`NodeCache`] per FaaS host,
    /// shared by all containers (and their DSO clients) on that host.
    /// Kept coherent by write-through invalidation from co-located
    /// clients, version probes, and lease expiry. Counted separately from
    /// the per-client cache (`dso.node_cache.*` vs `dso.read_cache.*`).
    ///
    /// [`NodeCache`]: crate::node_cache::NodeCache
    pub node_cache: bool,
    /// Under [`ConsistencyMode::CrdtMerge`], how often each server pushes
    /// the state of its [`Mergeable`] objects to the other replicas for
    /// reconciliation. Unused (and no ticker runs) in every other mode.
    ///
    /// [`Mergeable`]: crate::object::Mergeable
    pub anti_entropy_interval: Duration,
    /// Runtime check that methods declared read-only really do not mutate:
    /// the server snapshots the object state around every declared
    /// read-only invocation and rejects the call (restoring the state) if
    /// the bytes changed. The read fast path *trusts* `is_readonly`
    /// (skipping SMR and version bumps), so a misdeclared method would
    /// silently fork replicas; this turns that into a typed error. On by
    /// default — costs host CPU only, no virtual time.
    pub verify_readonly: bool,
    /// `(type, method)` pairs the `simanalyze` static purity pass proved
    /// side-effect-free. Declared read-only calls on a proven-pure pair
    /// skip the `verify_readonly` snapshot/compare entirely — the static
    /// proof replaces the runtime check. Empty by default, so every
    /// declared read-only method is still verified at runtime.
    pub pure_methods: PureMethods,
    /// Per-node admission control (token bucket + queue-depth shedding).
    /// `None` (the default) admits everything, the pre-existing behavior.
    pub admission: Option<AdmissionConfig>,
    /// Durability subsystem: per-node WAL + periodic checkpoints persisted
    /// to a cloud object store, with full-cluster crash-restart recovery
    /// ([`crate::DsoCluster::recover_from`]). `None` (the default) is the
    /// pre-existing RAM-only behavior; so is an explicit
    /// [`DurabilityLevel::None`].
    pub durability: Option<DurabilityConfig>,
}

impl Default for DsoConfig {
    fn default() -> Self {
        DsoConfig {
            workers_per_node: 8,
            client_net: LatencyModel::uniform(Duration::from_micros(90), 0.10),
            peer_net: LatencyModel::uniform(Duration::from_micros(90), 0.10),
            heartbeat_interval: Duration::from_millis(500),
            failure_timeout: Duration::from_millis(1600),
            call_timeout: Duration::from_millis(1000),
            max_retries: 12,
            retry_backoff: Duration::from_millis(1),
            transfer_bandwidth: 200.0 * 1024.0 * 1024.0,
            consistency: ConsistencyMode::default(),
            read_cache: false,
            cache_lease: None,
            staleness_bound: None,
            node_cache: false,
            anti_entropy_interval: Duration::from_millis(10),
            verify_readonly: true,
            pure_methods: PureMethods::default(),
            admission: None,
            durability: None,
        }
    }
}

impl DsoConfig {
    /// Backoff for the given (0-based) attempt: exponential, capped.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(6);
        self.retry_backoff * factor
    }

    /// The durability configuration when the subsystem is active — a
    /// configured store at a level other than [`DurabilityLevel::None`].
    pub fn durability_active(&self) -> Option<&DurabilityConfig> {
        self.durability.as_ref().filter(|d| d.level != DurabilityLevel::None)
    }

    /// The effective durability level ([`DurabilityLevel::None`] when no
    /// store is configured).
    pub fn durability_level(&self) -> DurabilityLevel {
        self.durability.as_ref().map_or(DurabilityLevel::None, |d| d.level)
    }

    /// Starts a validating builder from the defaults.
    ///
    /// ```
    /// use dso::DsoConfig;
    /// use std::time::Duration;
    ///
    /// let cfg = DsoConfig::builder()
    ///     .workers_per_node(4)
    ///     .call_timeout(Duration::from_millis(500))
    ///     .build()
    ///     .expect("valid");
    /// assert_eq!(cfg.workers_per_node, 4);
    /// ```
    pub fn builder() -> DsoConfigBuilder {
        DsoConfigBuilder { cfg: DsoConfig::default() }
    }
}

/// `(type, method)` pairs proven side-effect-free by the `simanalyze`
/// static purity pass.
///
/// The analyzer writes a text report (`simanalyze --readonly-report PATH`)
/// with one whitespace-separated `Type method` pair per line; `#` lines
/// are comments. The handoff is plain text rather than a Rust artifact
/// because `dso` cannot depend on `simcheck` (the analyzer analyzes this
/// workspace, so the dependency would be circular).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PureMethods {
    set: std::collections::BTreeSet<(String, String)>,
}

impl PureMethods {
    /// Parses a `simanalyze --readonly-report` text: one `Type method`
    /// pair per line, blank lines and `#` comments skipped. Malformed
    /// lines are ignored rather than rejected — the set is an
    /// optimization, never a correctness requirement, so the safe reading
    /// of a bad line is "not proven pure".
    pub fn parse(text: &str) -> PureMethods {
        let mut set = std::collections::BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            if let (Some(ty), Some(method), None) = (fields.next(), fields.next(), fields.next()) {
                set.insert((ty.to_string(), method.to_string()));
            }
        }
        PureMethods { set }
    }

    /// Adds a single proven-pure pair.
    pub fn insert(&mut self, type_name: impl Into<String>, method: impl Into<String>) {
        self.set.insert((type_name.into(), method.into()));
    }

    /// Whether `(type_name, method)` is proven pure.
    pub fn contains(&self, type_name: &str, method: &str) -> bool {
        self.set.contains(&(type_name.to_string(), method.to_string()))
    }

    /// Number of proven-pure pairs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no pair is proven pure (the default).
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// An invalid [`DsoConfig`] combination, reported by
/// [`DsoConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsoConfigError(String);

impl std::fmt::Display for DsoConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid DsoConfig: {}", self.0)
    }
}

impl std::error::Error for DsoConfigError {}

/// Builder for [`DsoConfig`] that validates the combination on
/// [`build`](DsoConfigBuilder::build). Setters are named after the fields
/// they set and chain by value (the convention shared with
/// `ThreadFactory::with_*`).
#[derive(Clone, Debug)]
pub struct DsoConfigBuilder {
    cfg: DsoConfig,
}

impl DsoConfigBuilder {
    /// Sets the number of worker threads per storage node.
    pub fn workers_per_node(mut self, n: u32) -> Self {
        self.cfg.workers_per_node = n;
        self
    }

    /// Sets the one-way client ↔ server latency model.
    pub fn client_net(mut self, m: LatencyModel) -> Self {
        self.cfg.client_net = m;
        self
    }

    /// Sets the one-way server ↔ server latency model.
    pub fn peer_net(mut self, m: LatencyModel) -> Self {
        self.cfg.peer_net = m;
        self
    }

    /// Sets the heartbeat interval.
    pub fn heartbeat_interval(mut self, d: Duration) -> Self {
        self.cfg.heartbeat_interval = d;
        self
    }

    /// Sets the failure-detection timeout.
    pub fn failure_timeout(mut self, d: Duration) -> Self {
        self.cfg.failure_timeout = d;
        self
    }

    /// Sets the client-side RPC timeout for non-blocking calls.
    pub fn call_timeout(mut self, d: Duration) -> Self {
        self.cfg.call_timeout = d;
        self
    }

    /// Sets the maximum client attempts before giving up.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.cfg.max_retries = n;
        self
    }

    /// Sets the initial retry backoff.
    pub fn retry_backoff(mut self, d: Duration) -> Self {
        self.cfg.retry_backoff = d;
        self
    }

    /// Sets the rebalancing state-transfer bandwidth, in bytes/s.
    pub fn transfer_bandwidth(mut self, bps: f64) -> Self {
        self.cfg.transfer_bandwidth = bps;
        self
    }

    /// Sets the read-routing consistency mode.
    pub fn consistency(mut self, mode: ConsistencyMode) -> Self {
        self.cfg.consistency = mode;
        self
    }

    /// Enables or disables the client-side read cache.
    pub fn read_cache(mut self, on: bool) -> Self {
        self.cfg.read_cache = on;
        self
    }

    /// Sets the cache lease (requires the read cache to be enabled).
    /// Accepts a bare `Duration` or an `Option`; an explicit
    /// `Some(Duration::ZERO)` is rejected at [`build`](Self::build) —
    /// omit the lease (or pass `None`) to validate every hit instead.
    pub fn cache_lease(mut self, lease: impl Into<Option<Duration>>) -> Self {
        self.cfg.cache_lease = lease.into();
        self
    }

    /// Sets the staleness bound (requires
    /// [`ConsistencyMode::BoundedStaleness`]).
    pub fn staleness_bound(mut self, bound: impl Into<Option<Duration>>) -> Self {
        self.cfg.staleness_bound = bound.into();
        self
    }

    /// Enables or disables the co-located per-host node cache tier.
    pub fn node_cache(mut self, on: bool) -> Self {
        self.cfg.node_cache = on;
        self
    }

    /// Sets the anti-entropy exchange interval used under
    /// [`ConsistencyMode::CrdtMerge`].
    pub fn anti_entropy_interval(mut self, d: Duration) -> Self {
        self.cfg.anti_entropy_interval = d;
        self
    }

    /// Enables or disables runtime read-only verification.
    pub fn verify_readonly(mut self, on: bool) -> Self {
        self.cfg.verify_readonly = on;
        self
    }

    /// Installs the set of statically proven-pure read-only methods;
    /// their calls skip the `verify_readonly` snapshot.
    pub fn pure_methods(mut self, p: PureMethods) -> Self {
        self.cfg.pure_methods = p;
        self
    }

    /// Enables per-node admission control (token bucket + queue-depth
    /// shedding), or disables it with `None`.
    pub fn admission(mut self, a: Option<AdmissionConfig>) -> Self {
        self.cfg.admission = a;
        self
    }

    /// Configures the durability subsystem (WAL + checkpoints to a cloud
    /// store), or disables it with `None`. Accepts a bare
    /// [`DurabilityConfig`] or an `Option`.
    pub fn durability(mut self, d: impl Into<Option<DurabilityConfig>>) -> Self {
        self.cfg.durability = d.into();
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DsoConfigError`] when a field is out of range
    /// (`workers_per_node == 0`, `max_retries == 0`, non-positive
    /// `transfer_bandwidth`, a zero lease or staleness bound) or the
    /// combination is inconsistent (failure timeout not beyond the
    /// heartbeat interval, a zero call timeout, a cache lease without the
    /// read cache, a staleness bound outside `BoundedStaleness`, or
    /// `BoundedStaleness` without its bound/cache).
    pub fn build(self) -> Result<DsoConfig, DsoConfigError> {
        let c = self.cfg;
        if c.workers_per_node == 0 {
            return Err(DsoConfigError("workers_per_node must be >= 1".into()));
        }
        if c.max_retries == 0 {
            return Err(DsoConfigError("max_retries must be >= 1".into()));
        }
        if c.call_timeout.is_zero() {
            return Err(DsoConfigError("call_timeout must be non-zero".into()));
        }
        if c.failure_timeout <= c.heartbeat_interval {
            return Err(DsoConfigError(format!(
                "failure_timeout ({:?}) must exceed heartbeat_interval ({:?})",
                c.failure_timeout, c.heartbeat_interval
            )));
        }
        // NaN must fail too, so compare for "not strictly positive".
        if c.transfer_bandwidth <= 0.0 || c.transfer_bandwidth.is_nan() {
            return Err(DsoConfigError("transfer_bandwidth must be positive".into()));
        }
        if c.cache_lease.is_some() && !c.read_cache {
            return Err(DsoConfigError("cache_lease requires read_cache".into()));
        }
        // The lease/cache dependency used to be checked only one way: a
        // lease without the cache failed, but an explicit zero lease (and
        // a cache silently promising lease semantics it cannot honor)
        // passed. Every explicit lease value is validated now.
        if c.cache_lease == Some(Duration::ZERO) {
            return Err(DsoConfigError(
                "cache_lease must be positive; pass None to validate every hit instead".into(),
            ));
        }
        match (c.consistency, c.staleness_bound) {
            (ConsistencyMode::BoundedStaleness, None) => {
                return Err(DsoConfigError(
                    "ConsistencyMode::BoundedStaleness requires staleness_bound (the read lease)"
                        .into(),
                ));
            }
            (ConsistencyMode::BoundedStaleness, Some(b)) if b.is_zero() => {
                return Err(DsoConfigError(
                    "staleness_bound must be positive; a zero bound is Linearizable".into(),
                ));
            }
            (ConsistencyMode::BoundedStaleness, Some(_)) => {
                if !c.read_cache {
                    return Err(DsoConfigError(
                        "BoundedStaleness serves leased reads from the client cache: \
                         enable read_cache"
                            .into(),
                    ));
                }
                if c.cache_lease.is_some() {
                    return Err(DsoConfigError(
                        "cache_lease conflicts with staleness_bound: BoundedStaleness \
                         uses the staleness bound as the lease"
                            .into(),
                    ));
                }
            }
            (_, Some(_)) => {
                return Err(DsoConfigError(
                    "staleness_bound requires ConsistencyMode::BoundedStaleness".into(),
                ));
            }
            (_, None) => {}
        }
        if c.consistency == ConsistencyMode::CrdtMerge && c.anti_entropy_interval.is_zero() {
            return Err(DsoConfigError(
                "ConsistencyMode::CrdtMerge requires a non-zero anti_entropy_interval".into(),
            ));
        }
        if let Some(a) = &c.admission {
            if a.rate <= 0.0 || a.rate.is_nan() {
                return Err(DsoConfigError("admission.rate must be positive".into()));
            }
            if a.burst < 1.0 || a.burst.is_nan() {
                return Err(DsoConfigError("admission.burst must be >= 1".into()));
            }
            if a.max_queue_depth == 0 {
                return Err(DsoConfigError("admission.max_queue_depth must be >= 1".into()));
            }
            if a.retry_after.is_zero() {
                return Err(DsoConfigError("admission.retry_after must be non-zero".into()));
            }
        }
        if let Some(d) = &c.durability {
            if d.store.prefix().is_empty() {
                return Err(DsoConfigError("durability.store prefix must be non-empty".into()));
            }
            if d.level != DurabilityLevel::None {
                if d.group_commit.is_zero() {
                    return Err(DsoConfigError("durability.group_commit must be non-zero".into()));
                }
                if d.segment_max_records == 0 {
                    return Err(DsoConfigError(
                        "durability.segment_max_records must be >= 1".into(),
                    ));
                }
                if d.checkpoint_keep < 2 {
                    return Err(DsoConfigError(
                        "durability.checkpoint_keep must be >= 2: GC may delete WAL \
                         segments while the newest checkpoint is still inside the \
                         store's visibility window"
                            .into(),
                    ));
                }
                if d.settle_step.is_zero() || d.settle_step > d.settle {
                    return Err(DsoConfigError(
                        "durability.settle_step must be non-zero and <= settle".into(),
                    ));
                }
            }
        }
        Ok(c)
    }

    /// Validates against an [`ObjectRegistry`] as well: everything
    /// [`build`](Self::build) checks, plus registration-dependent rules —
    /// [`ConsistencyMode::CrdtMerge`] is rejected unless at least one
    /// type was registered through
    /// [`ObjectRegistry::register_mergeable`](crate::object::ObjectRegistry::register_mergeable),
    /// since merge-on-anti-entropy on a registry with no [`Mergeable`]
    /// types would silently degrade every object to last-writer-wins
    /// transfer semantics.
    ///
    /// [`Mergeable`]: crate::object::Mergeable
    ///
    /// # Errors
    ///
    /// Returns [`DsoConfigError`] as for [`build`](Self::build), or when
    /// `CrdtMerge` is selected with no mergeable type registered.
    pub fn build_with_registry(
        self,
        registry: &crate::object::ObjectRegistry,
    ) -> Result<DsoConfig, DsoConfigError> {
        let c = self.build()?;
        if c.consistency == ConsistencyMode::CrdtMerge && registry.mergeable_types().is_empty() {
            return Err(DsoConfigError(
                "ConsistencyMode::CrdtMerge requires a Mergeable type registered via \
                 ObjectRegistry::register_mergeable (e.g. GCounter)"
                    .into(),
            ));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DsoConfig::default();
        assert!(c.workers_per_node >= 1);
        assert!(c.failure_timeout > c.heartbeat_interval * 2);
        assert!(c.call_timeout > c.client_net.base * 4);
        // The read fast path must be opt-in: linearizable, uncached.
        assert_eq!(c.consistency, ConsistencyMode::Linearizable);
        assert!(!c.read_cache);
        assert_eq!(c.cache_lease, None);
        // …and the correctness net around it must be opt-out.
        assert!(c.verify_readonly);
        assert!(c.pure_methods.is_empty());
    }

    #[test]
    fn pure_methods_parse_report() {
        let p = PureMethods::parse(
            "# simanalyze proven-pure readonly methods: <Type> <method>\n\
             AtomicLong get\n\
             \n\
             MapObject  size\n\
             garbage line with three fields\n",
        );
        assert_eq!(p.len(), 2);
        assert!(p.contains("AtomicLong", "get"));
        assert!(p.contains("MapObject", "size"));
        assert!(!p.contains("AtomicLong", "set"), "absent pair stays unproven");
        assert!(!p.contains("garbage", "line"), "malformed lines are dropped");
    }

    #[test]
    fn pure_methods_via_builder() {
        let mut p = PureMethods::default();
        p.insert("AtomicLong", "get");
        let cfg = DsoConfig::builder().pure_methods(p).build().expect("valid");
        assert!(cfg.pure_methods.contains("AtomicLong", "get"));
    }

    #[test]
    fn builder_validates() {
        assert!(DsoConfig::builder().build().is_ok(), "defaults are valid");
        assert!(DsoConfig::builder().workers_per_node(0).build().is_err());
        assert!(DsoConfig::builder().max_retries(0).build().is_err());
        assert!(DsoConfig::builder().call_timeout(Duration::ZERO).build().is_err());
        assert!(
            DsoConfig::builder()
                .heartbeat_interval(Duration::from_secs(2))
                .failure_timeout(Duration::from_secs(1))
                .build()
                .is_err(),
            "failure timeout must exceed heartbeat interval"
        );
        assert!(DsoConfig::builder().transfer_bandwidth(0.0).build().is_err());
        assert!(DsoConfig::builder().transfer_bandwidth(f64::NAN).build().is_err());
        assert!(
            DsoConfig::builder().cache_lease(Some(Duration::from_millis(5))).build().is_err(),
            "lease without cache is inert, reject it"
        );
        let cfg = DsoConfig::builder()
            .read_cache(true)
            .cache_lease(Some(Duration::from_millis(5)))
            .consistency(ConsistencyMode::ReplicaReads)
            .build()
            .expect("valid combination");
        assert!(cfg.read_cache);
        assert_eq!(cfg.consistency, ConsistencyMode::ReplicaReads);
    }

    #[test]
    fn consistency_spectrum_validates() {
        let err = |b: DsoConfigBuilder| b.build().unwrap_err().to_string();
        // The old asymmetry: an explicit zero lease used to pass silently.
        assert!(err(DsoConfig::builder().read_cache(true).cache_lease(Duration::ZERO))
            .contains("cache_lease must be positive"),);
        // A bare Duration is accepted too (the `None` asymmetry fix made
        // the setter take `impl Into<Option<Duration>>`).
        assert!(DsoConfig::builder()
            .read_cache(true)
            .cache_lease(Duration::from_millis(2))
            .build()
            .is_ok());
        assert!(err(DsoConfig::builder().staleness_bound(Duration::from_millis(5)))
            .contains("requires ConsistencyMode::BoundedStaleness"));
        assert!(err(DsoConfig::builder().consistency(ConsistencyMode::BoundedStaleness))
            .contains("requires staleness_bound"));
        assert!(err(DsoConfig::builder()
            .consistency(ConsistencyMode::BoundedStaleness)
            .staleness_bound(Duration::ZERO))
        .contains("staleness_bound must be positive"));
        assert!(err(DsoConfig::builder()
            .consistency(ConsistencyMode::BoundedStaleness)
            .staleness_bound(Duration::from_millis(5)))
        .contains("enable read_cache"));
        assert!(err(DsoConfig::builder()
            .consistency(ConsistencyMode::BoundedStaleness)
            .staleness_bound(Duration::from_millis(5))
            .read_cache(true)
            .cache_lease(Duration::from_millis(1)))
        .contains("cache_lease conflicts with staleness_bound"));
        let cfg = DsoConfig::builder()
            .consistency(ConsistencyMode::BoundedStaleness)
            .staleness_bound(Duration::from_millis(5))
            .read_cache(true)
            .build()
            .expect("coherent BoundedStaleness config");
        assert_eq!(cfg.staleness_bound, Some(Duration::from_millis(5)));
        assert!(err(DsoConfig::builder()
            .consistency(ConsistencyMode::CrdtMerge)
            .anti_entropy_interval(Duration::ZERO))
        .contains("anti_entropy_interval"));
        assert!(DsoConfig::builder().consistency(ConsistencyMode::Causal).build().is_ok());
    }

    #[test]
    fn crdt_merge_requires_a_mergeable_registration() {
        use crate::object::ObjectRegistry;
        let bare = ObjectRegistry::with_builtins();
        // The builtins include GCounter (mergeable), so the stock registry
        // passes; a registry without any mergeable type is rejected.
        assert!(DsoConfig::builder()
            .consistency(ConsistencyMode::CrdtMerge)
            .build_with_registry(&bare)
            .is_ok());
        let empty = ObjectRegistry::new();
        let err = DsoConfig::builder()
            .consistency(ConsistencyMode::CrdtMerge)
            .build_with_registry(&empty)
            .unwrap_err();
        assert!(err.to_string().contains("register_mergeable"), "{err}");
        // Registry validation composes with the plain checks.
        assert!(DsoConfig::builder()
            .workers_per_node(0)
            .build_with_registry(&ObjectRegistry::new())
            .is_err());
    }

    #[test]
    fn admission_validates() {
        assert_eq!(DsoConfig::default().admission, None, "shedding is opt-in");
        let ok = DsoConfig::builder().admission(Some(AdmissionConfig::default())).build();
        assert!(ok.is_ok());
        let bad = |a: AdmissionConfig| DsoConfig::builder().admission(Some(a)).build().is_err();
        assert!(bad(AdmissionConfig { rate: 0.0, ..Default::default() }));
        assert!(bad(AdmissionConfig { rate: f64::NAN, ..Default::default() }));
        assert!(bad(AdmissionConfig { burst: 0.5, ..Default::default() }));
        assert!(bad(AdmissionConfig { max_queue_depth: 0, ..Default::default() }));
        assert!(bad(AdmissionConfig { retry_after: Duration::ZERO, ..Default::default() }));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let c = DsoConfig::default();
        assert_eq!(c.backoff_for(0), Duration::from_millis(1));
        assert_eq!(c.backoff_for(1), Duration::from_millis(2));
        assert_eq!(c.backoff_for(6), Duration::from_millis(64));
        assert_eq!(c.backoff_for(20), Duration::from_millis(64), "capped");
    }
}
