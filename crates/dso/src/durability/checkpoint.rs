//! Full-cluster checkpoints: a deduplicated snapshot of every object,
//! written as one atomic blob, plus garbage collection of the WAL
//! segments and older checkpoints the new blob subsumes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use simcore::{Ctx, Sim, Ticker};

use crate::client::{DsoClient, DsoClientHandle};
use crate::config::DurabilityConfig;
use crate::error::DsoError;
use crate::object::ObjectRef;
use crate::protocol::{CheckpointBlob, NodeId, ObjectRecord, SnapshotAll, SnapshotReply};

/// Result of one checkpoint round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Generation the blob was written under.
    pub gen: u32,
    /// Sequence number of the blob within the generation.
    pub seq: u64,
    /// Objects captured (replicas deduplicated by version).
    pub objects: usize,
    /// Encoded blob size in bytes.
    pub bytes: usize,
    /// Storage nodes that contributed snapshots.
    pub nodes: usize,
    /// Older checkpoint blobs garbage-collected.
    pub ckpts_deleted: usize,
    /// WAL segments garbage-collected.
    pub wal_deleted: usize,
}

/// Periodic checkpoint driver. Owns the blob sequence counter; one
/// instance per cluster (additional instances stay correct — sequence
/// numbers are re-derived from a LIST — but waste PUTs).
#[derive(Debug)]
pub struct Checkpointer {
    d: DurabilityConfig,
    next_seq: u64,
}

impl Checkpointer {
    /// A checkpointer writing through `d`'s store.
    pub fn new(d: DurabilityConfig) -> Checkpointer {
        Checkpointer { d, next_seq: 1 }
    }

    /// Takes one checkpoint: LIST the WAL (the blob's `floors` — listed
    /// *before* the snapshots, so every floored record is also in the
    /// snapshot), snapshot every view member, dedupe replicas by version,
    /// PUT the blob, then garbage-collect blobs beyond
    /// [`DurabilityConfig::checkpoint_keep`] and the WAL segments the
    /// oldest *kept* blob subsumes.
    ///
    /// Floors cover only current-generation streams of current view
    /// members: a crashed node's stream may hold the sole copy of
    /// unreplicated objects that the live cluster can no longer snapshot,
    /// so its segments are never collected within the generation.
    ///
    /// # Errors
    ///
    /// [`DsoError::Retry`] when the view is empty, [`DsoError::Timeout`]
    /// when a member does not answer its snapshot request. Nothing is
    /// written or deleted on error.
    pub fn run_once(
        &mut self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
    ) -> Result<CheckpointReport, DsoError> {
        let store = self.d.store.clone();
        let gen = store.generation();
        let span = ctx.span_begin("dso.checkpoint", "dso");
        let view = cli.refresh_view(ctx);
        if view.members.is_empty() {
            ctx.span_annotate(span, "outcome", "empty-view");
            ctx.span_end(span);
            return Err(DsoError::Retry);
        }
        let members: BTreeSet<NodeId> = view.members.iter().map(|(n, _)| *n).collect();

        // Floors: per-stream WAL high-water marks, observed before the
        // snapshots below so they are a monotonic lower bound — every
        // record at or below a floor is captured by this blob.
        let wal_listing = store.list_wal(ctx);
        let mut floors: BTreeMap<(u32, NodeId), u64> = BTreeMap::new();
        for key in &wal_listing {
            if let Some((g, n, s)) = store.parse_wal_key(key) {
                if g == gen && members.contains(&n) {
                    let e = floors.entry((g, n)).or_insert(0);
                    *e = (*e).max(s);
                }
            }
        }
        let ckpt_listing = store.list_ckpts(ctx);

        // Snapshot every member; replicas collapse to the newest version.
        let timeout = cli.config().call_timeout * 4;
        let lat_model = cli.config().client_net;
        let mut best: HashMap<ObjectRef, ObjectRecord> = HashMap::new();
        let mut nodes = 0;
        for (_, addr) in &view.members {
            let lat = lat_model.sample(ctx.rng());
            let reply: Option<SnapshotReply> = ctx.call_timeout(*addr, SnapshotAll, lat, timeout);
            let Some(SnapshotReply(records)) = reply else {
                ctx.span_annotate(span, "outcome", "snapshot-timeout");
                ctx.span_end(span);
                return Err(DsoError::Timeout);
            };
            nodes += 1;
            for r in records {
                match best.get(&r.obj) {
                    Some(existing) if existing.version >= r.version => {}
                    _ => {
                        best.insert(r.obj.clone(), r);
                    }
                }
            }
        }
        let mut objects: Vec<ObjectRecord> = best.into_values().collect();
        objects.sort_by(|a, b| a.obj.cmp(&b.obj));

        // The sequence counter survives via LIST too, so a fresh
        // checkpointer over an old store never reuses a live key.
        let listed_max = ckpt_listing
            .iter()
            .filter_map(|k| store.parse_ckpt_key(k))
            .filter(|(g, _)| *g == gen)
            .map(|(_, s)| s)
            .max()
            .unwrap_or(0);
        let seq = self.next_seq.max(listed_max + 1);
        self.next_seq = seq + 1;

        let blob = CheckpointBlob {
            gen,
            seq,
            floors: floors.iter().map(|(&(g, n), &s)| (g, n, s)).collect(),
            objects,
        };
        let bytes = store.put_checkpoint(ctx, &blob);
        ctx.metric_incr("dso.checkpoints");
        ctx.metric_add("dso.checkpoint_bytes", bytes as u64);
        ctx.span_annotate(span, "seq", seq.to_string());
        ctx.span_annotate(span, "objects", blob.objects.len().to_string());
        ctx.span_annotate(span, "bytes", bytes.to_string());

        // Garbage collection. Safe because every blob is a *full* cluster
        // snapshot: once the oldest kept blob exists, anything older — and
        // any WAL segment it floors or from an earlier generation (whose
        // records recovery re-installed, and re-logged, under this one) —
        // is redundant.
        let mut known: Vec<String> = ckpt_listing;
        let own_key = store.ckpt_key(gen, seq);
        if !known.contains(&own_key) {
            known.push(own_key.clone());
            known.sort();
        }
        let keep = self.d.checkpoint_keep as usize;
        let mut ckpts_deleted = 0;
        let mut wal_deleted = 0;
        if known.len() > keep {
            let cut = known.len() - keep;
            let oldest_kept = if known[cut] == own_key {
                Some(blob.clone())
            } else {
                store.get_checkpoint(ctx, &known[cut])
            };
            // A listed blob that cannot be fetched (should not happen —
            // LISTed keys are visible) just skips GC until next round.
            if let Some(kept) = oldest_kept {
                // Accumulate everything doomed and delete it in one
                // batched request — GC cost must not scale per-key, or
                // tight checkpoint cadences run at their GC runtime
                // instead of their nominal interval.
                let mut doomed: Vec<String> = known[..cut].to_vec();
                ckpts_deleted = doomed.len();
                let kept_floors: HashMap<(u32, NodeId), u64> =
                    kept.floors.iter().map(|&(g, n, s)| ((g, n), s)).collect();
                for key in &wal_listing {
                    let Some((g, n, s)) = store.parse_wal_key(key) else { continue };
                    let subsumed =
                        g < kept.gen || kept_floors.get(&(g, n)).is_some_and(|&f| s <= f);
                    if subsumed {
                        doomed.push(key.clone());
                        wal_deleted += 1;
                    }
                }
                store.delete_many(ctx, doomed);
            }
        }
        ctx.span_end(span);
        Ok(CheckpointReport {
            gen,
            seq,
            objects: blob.objects.len(),
            bytes,
            nodes,
            ckpts_deleted,
            wal_deleted,
        })
    }
}

/// Takes one checkpoint (a fresh [`Checkpointer`], run once).
///
/// # Errors
///
/// See [`Checkpointer::run_once`].
pub fn checkpoint(
    ctx: &mut Ctx,
    cli: &mut DsoClient,
    d: &DurabilityConfig,
) -> Result<CheckpointReport, DsoError> {
    Checkpointer::new(d.clone()).run_once(ctx, cli)
}

/// Spawns a standalone checkpoint daemon on `interval`. Failed rounds
/// (empty view, member timeout) count `dso.checkpoint_failures` and retry
/// on the next tick. The control plane embeds [`Checkpointer::run_once`]
/// on its own cadence instead; this form serves harnesses without one.
pub fn spawn_checkpointer(
    sim: &Sim,
    handle: DsoClientHandle,
    d: DurabilityConfig,
    interval: std::time::Duration,
) {
    sim.spawn_daemon("dso-checkpointer", move |ctx| {
        let mut cli = handle.connect();
        let mut cp = Checkpointer::new(d);
        let mut tick = Ticker::new(ctx.now(), interval);
        loop {
            tick.wait(ctx);
            if cp.run_once(ctx, &mut cli).is_err() {
                ctx.metric_incr("dso.checkpoint_failures");
            }
        }
    });
}
