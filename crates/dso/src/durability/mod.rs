//! Durability subsystem: per-node write-ahead logs plus periodic
//! full-cluster checkpoints, both persisted to a cloud object store
//! ([`cloudstore::s3`]), with full-cluster crash-restart recovery.
//!
//! The design follows FaaSKeeper's "guarantees from serverless storage
//! primitives" recipe (see PAPERS.md) on top of the repo's calibrated S3
//! model:
//!
//! * **WAL** ([`wal`], [`crate::protocol::WalSegment`]): every applied
//!   mutation is recorded as the object's *post-state* tagged with its
//!   version (a physical redo record). A per-node daemon group-commits the
//!   buffer as one segment PUT per [`DurabilityConfig::group_commit`]
//!   interval, coalescing repeated mutations of the same object — this is
//!   what amortizes the store's ~35 ms PUT off the write path. Under
//!   [`DurabilityLevel::Sync`] the client's acknowledgement rides the
//!   flush; under [`DurabilityLevel::Async`] it does not (the loss
//!   window).
//! * **Checkpoints** ([`Checkpointer`], [`crate::protocol::CheckpointBlob`]):
//!   a full-cluster snapshot (deduplicated by version across replicas)
//!   written as one atomic key, carrying per-stream WAL high-water marks
//!   (`floors`). Older checkpoints and the segments they subsume are
//!   garbage-collected, keeping [`DurabilityConfig::checkpoint_keep`]
//!   blobs.
//! * **Recovery** ([`recover`], [`crate::DsoCluster::recover_from`]):
//!   LIST checkpoints + WAL, read-repair against the store's visibility
//!   delay (re-LIST until every floor is satisfied, every per-stream
//!   sequence is gap-free, and the listing has been stable for
//!   [`DurabilityConfig::settle`]), then install the newest state per
//!   object — latest checkpoint overlaid with every newer WAL record — in
//!   deterministic (object, version) order through the regular
//!   `__restore` invocation path, so placement follows the *new*
//!   cluster's ring.
//!
//! [`DurabilityLevel`]: crate::DurabilityLevel
//! [`DurabilityLevel::Sync`]: crate::DurabilityLevel::Sync
//! [`DurabilityLevel::Async`]: crate::DurabilityLevel::Async
//! [`DurabilityConfig`]: crate::DurabilityConfig
//! [`DurabilityConfig::group_commit`]: crate::DurabilityConfig::group_commit
//! [`DurabilityConfig::checkpoint_keep`]: crate::DurabilityConfig::checkpoint_keep
//! [`DurabilityConfig::settle`]: crate::DurabilityConfig::settle

mod checkpoint;
mod recover;
mod store;
pub(crate) mod wal;

pub use checkpoint::{checkpoint, spawn_checkpointer, CheckpointReport, Checkpointer};
pub use recover::{recover_into, RecoveryReport};
pub(crate) use recover::{replay, scan};
pub use store::{DurabilityStats, DurabilityStore};
