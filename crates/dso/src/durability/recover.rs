//! Crash-restart recovery: scan the durability store (with read repair
//! against LIST visibility lag), then replay — newest checkpoint overlaid
//! with every newer WAL record — into a cluster through the regular
//! `__restore` invocation path.

use std::collections::BTreeMap;

use simcore::{Ctx, SimTime};

use crate::client::DsoClient;
use crate::config::DurabilityConfig;
use crate::error::DsoError;
use crate::object::ObjectRef;
use crate::protocol::{CheckpointBlob, NodeId};

/// Re-LIST rounds before a scan gives up with [`DsoError::Timeout`].
const MAX_ROUNDS: u32 = 512;

/// What a settled scan of the durability store found.
pub(crate) struct Scan {
    /// Newest checkpoint, fetched during the scan (its floors drive the
    /// read repair), with its key.
    pub ckpt: Option<(String, CheckpointBlob)>,
    /// Every visible WAL segment key, in `(gen, node, seq)` order.
    pub wal_keys: Vec<String>,
    /// `max(generation over all keys) + 1`: the generation a recovered
    /// cluster must write under so it never collides with its
    /// predecessor's keys.
    pub next_gen: u32,
    /// Rounds that observed an incomplete or still-changing listing — 0
    /// when nothing was hidden, ≥ 1 when read repair actually repaired.
    pub relist_rounds: u32,
}

/// Scans the store until the listing is trustworthy: every floor of the
/// newest checkpoint satisfied, every per-stream sequence run gap-free
/// (GC only removes stream *prefixes*, so a gap can only be a
/// not-yet-visible segment), and the listing unchanged for
/// [`DurabilityConfig::settle`]. Sleeps `settle_step` between rounds.
///
/// The zero-loss contract: with [`DurabilityLevel::Sync`] acks and
/// `settle` at least the store's maximum visibility delay, every
/// acknowledged write is in some listed segment when the scan returns.
///
/// [`DurabilityLevel::Sync`]: crate::DurabilityLevel::Sync
///
/// # Errors
///
/// [`DsoError::Timeout`] when the listing does not settle within
/// [`MAX_ROUNDS`] rounds.
pub(crate) fn scan(ctx: &mut Ctx, d: &DurabilityConfig) -> Result<Scan, DsoError> {
    let store = &d.store;
    let mut relist_rounds = 0u32;
    let mut prev: Option<(Vec<String>, Vec<String>)> = None;
    let mut stable_since = SimTime::ZERO;
    let mut ckpt: Option<(String, CheckpointBlob)> = None;
    for round in 0..MAX_ROUNDS {
        if round > 0 {
            ctx.sleep(d.settle_step);
        }
        let ckpts = store.list_ckpts(ctx);
        let wals = store.list_wal(ctx);
        // Fetch the newest checkpoint when it changed hands.
        let newest = ckpts.last();
        let mut fetch_failed = false;
        match newest {
            Some(k) if ckpt.as_ref().map(|(key, _)| key) != Some(k) => {
                match store.get_checkpoint(ctx, k) {
                    Some(blob) => ckpt = Some((k.clone(), blob)),
                    None => fetch_failed = true,
                }
            }
            _ => {}
        }
        let complete =
            !fetch_failed && listing_complete(store, ckpt.as_ref().map(|(_, b)| b), &wals);
        let listing = (ckpts, wals);
        let changed = prev.as_ref().is_some_and(|p| *p != listing);
        if changed || !complete {
            relist_rounds += 1;
        }
        if changed || prev.is_none() {
            stable_since = ctx.now();
        }
        prev = Some(listing);
        if complete && ctx.now().saturating_duration_since(stable_since) >= d.settle {
            // invariant: prev was set to Some just above.
            let (ckpts, wals) = prev.expect("listing recorded");
            let max_gen = ckpts
                .iter()
                .filter_map(|k| store.parse_ckpt_key(k).map(|(g, _)| g))
                .chain(wals.iter().filter_map(|k| store.parse_wal_key(k).map(|(g, _, _)| g)))
                .max();
            return Ok(Scan {
                ckpt,
                wal_keys: wals,
                next_gen: max_gen.map_or(1, |g| g + 1),
                relist_rounds,
            });
        }
    }
    Err(DsoError::Timeout)
}

/// Whether a WAL listing is self-consistent: newest checkpoint's floors
/// reached and per-stream sequence runs contiguous. A floored stream that
/// is entirely absent is fine — GC removed it wholesale; a *partial*
/// stream below its floor, or a mid-stream gap, can only be visibility
/// lag, because GC deletes prefixes.
fn listing_complete(
    store: &crate::durability::DurabilityStore,
    ckpt: Option<&CheckpointBlob>,
    wal_keys: &[String],
) -> bool {
    let mut streams: BTreeMap<(u32, NodeId), Vec<u64>> = BTreeMap::new();
    for key in wal_keys {
        if let Some((g, n, s)) = store.parse_wal_key(key) {
            streams.entry((g, n)).or_default().push(s);
        }
    }
    if let Some(blob) = ckpt {
        for &(g, n, floor) in &blob.floors {
            if let Some(seqs) = streams.get(&(g, n)) {
                // invariant: streams entries are built non-empty.
                if *seqs.last().expect("non-empty stream") < floor {
                    return false;
                }
            }
        }
    }
    streams.values().all(|seqs| seqs.windows(2).all(|w| w[1] == w[0] + 1))
}

/// Result of a recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation the recovered cluster writes under.
    pub generation: u32,
    /// `(gen, seq)` of the checkpoint recovered from, if any.
    pub checkpoint: Option<(u32, u64)>,
    /// Distinct objects installed.
    pub objects: usize,
    /// WAL segments fetched and replayed.
    pub wal_segments: usize,
    /// WAL records scanned across those segments.
    pub wal_records: usize,
    /// Encoded bytes of replayed WAL segments — the log-read cost a more
    /// frequent checkpoint cadence buys down.
    pub wal_bytes: usize,
    /// Scan rounds that saw an incomplete or changing listing (read
    /// repair against LIST visibility lag).
    pub relist_rounds: u32,
}

/// Replays a settled [`Scan`] into the cluster behind `cli`: newest
/// version per object wins between the checkpoint and the WAL (fetched
/// in `(gen, node, seq)` order, so ties resolve deterministically), then
/// objects are installed in sorted order through `__restore` — placement
/// follows the *new* cluster's ring, and a concurrently newer version is
/// never downgraded.
///
/// # Errors
///
/// [`DsoError::Retry`] if a listed segment vanished before its GET;
/// propagates install errors.
pub(crate) fn replay(
    ctx: &mut Ctx,
    cli: &mut DsoClient,
    scan: Scan,
    d: &DurabilityConfig,
) -> Result<RecoveryReport, DsoError> {
    let store = &d.store;
    // (rf, version, state) per object; BTreeMap gives sorted installs.
    let mut best: BTreeMap<ObjectRef, (u8, u64, Vec<u8>)> = BTreeMap::new();
    let checkpoint = scan.ckpt.as_ref().map(|(_, b)| (b.gen, b.seq));
    if let Some((_, blob)) = scan.ckpt {
        for r in blob.objects {
            best.insert(r.obj, (r.rf, r.version, r.state));
        }
    }
    let mut wal_segments = 0;
    let mut wal_records = 0;
    let mut wal_bytes = 0;
    for key in &scan.wal_keys {
        let Some((seg, size)) = store.get_segment(ctx, key) else {
            return Err(DsoError::Retry);
        };
        wal_segments += 1;
        wal_bytes += size;
        for rec in seg.records {
            wal_records += 1;
            match best.get(&rec.obj) {
                Some((_, v, _)) if *v >= rec.version => {}
                _ => {
                    best.insert(rec.obj, (rec.rf, rec.version, rec.state));
                }
            }
        }
    }
    let objects = best.len();
    for (obj, (rf, version, state)) in &best {
        let args = cli.encode_args(&(state, version))?;
        cli.invoke(ctx, obj, "__restore", args, (*rf).max(1), None, false, false)?;
    }
    ctx.metric_incr("dso.recoveries");
    ctx.metric_add("dso.recover_bytes", wal_bytes as u64);
    Ok(RecoveryReport {
        generation: scan.next_gen,
        checkpoint,
        objects,
        wal_segments,
        wal_records,
        wal_bytes,
        relist_rounds: scan.relist_rounds,
    })
}

/// Recovers the durability store's contents into the (running) cluster
/// behind `cli`: scan with read repair, then replay. This is the
/// restore-into-fresh-cluster half of the old passivation API; a full
/// crash restart — which also rebuilds the cluster and bumps the write
/// generation — is [`crate::DsoCluster::recover_from`].
///
/// # Errors
///
/// See [`scan`] and [`replay`].
pub fn recover_into(
    ctx: &mut Ctx,
    cli: &mut DsoClient,
    d: &DurabilityConfig,
) -> Result<RecoveryReport, DsoError> {
    let span = ctx.span_begin("dso.recover", "dso");
    let result = scan(ctx, d).and_then(|s| replay(ctx, cli, s, d));
    match &result {
        Ok(report) => {
            ctx.span_annotate(span, "objects", report.objects.to_string());
            ctx.span_annotate(span, "wal_segments", report.wal_segments.to_string());
            ctx.span_annotate(span, "relist_rounds", report.relist_rounds.to_string());
        }
        Err(e) => ctx.span_annotate(span, "outcome", format!("{e:?}")),
    }
    ctx.span_end(span);
    result
}
