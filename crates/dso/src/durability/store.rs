//! The durability store: a thin, ledger-keeping wrapper around
//! [`cloudstore::S3Handle`] that owns the key layout of WAL segments and
//! checkpoints.
//!
//! Key layout (all keys sort lexicographically in `(gen, …, seq)` order,
//! so one LIST per prefix returns each stream in replay order):
//!
//! ```text
//! {prefix}/ckpt/{gen:08}-{seq:016}           -> CheckpointBlob
//! {prefix}/wal/{gen:08}-{node:08}-{seq:016}  -> WalSegment
//! ```
//!
//! The ledger mirrors `faas::Billing`'s `SnapshotRecord` pattern: every
//! PUT opens a storage record, every DELETE closes one, and
//! [`DurabilityStore::stats`] reports request counts plus GB-seconds held
//! so cost tables can charge checkpoints and WAL like PR 9 charges
//! snapshots.

use std::sync::Arc;

use cloudstore::S3Handle;
use parking_lot::Mutex;
use simcore::{Ctx, SimTime};

use crate::protocol::{CheckpointBlob, NodeId, WalSegment};

/// One stored durability object (a WAL segment or checkpoint blob): open
/// from PUT until the GC deletes it.
#[derive(Clone, Debug)]
struct StorageRecord {
    key: String,
    size_gb: f64,
    created: SimTime,
    deleted: Option<SimTime>,
}

#[derive(Default, Debug)]
struct LedgerInner {
    records: Vec<StorageRecord>,
    puts: u64,
    gets: u64,
    lists: u64,
    deletes: u64,
    bytes_put: u64,
}

/// Aggregated store-side counters for cost accounting, read after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DurabilityStats {
    /// Number of PUT requests (segments + checkpoints).
    pub puts: u64,
    /// Number of GET requests.
    pub gets: u64,
    /// Number of LIST requests.
    pub lists: u64,
    /// Number of DELETE requests (garbage collection).
    pub deletes: u64,
    /// Total bytes written across all PUTs.
    pub bytes_put: u64,
    /// GB-seconds of storage held, counting still-open records up to the
    /// query time.
    pub stored_gb_seconds: f64,
}

impl DurabilityStats {
    /// Total billable store requests.
    pub fn requests(&self) -> u64 {
        self.puts + self.gets + self.lists + self.deletes
    }
}

/// Handle to the durability store: an [`S3Handle`] plus the key prefix,
/// the cluster generation used for new keys, and a shared request/storage
/// ledger. Cheap to clone; clones share the ledger.
#[derive(Clone, Debug)]
pub struct DurabilityStore {
    s3: S3Handle,
    prefix: String,
    generation: u32,
    ledger: Arc<Mutex<LedgerInner>>,
}

impl DurabilityStore {
    /// A store writing under `prefix` at generation 0.
    pub fn new(s3: S3Handle, prefix: impl Into<String>) -> DurabilityStore {
        DurabilityStore {
            s3,
            prefix: prefix.into(),
            generation: 0,
            ledger: Arc::new(Mutex::new(LedgerInner::default())),
        }
    }

    /// The key prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The generation new WAL segments and checkpoints are written under.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// A clone of this store writing under `gen` (same ledger). Recovery
    /// hands the recovered cluster a bumped generation so its WAL never
    /// collides with its predecessor's keys.
    pub fn with_generation(&self, gen: u32) -> DurabilityStore {
        DurabilityStore { generation: gen, ..self.clone() }
    }

    fn wal_prefix(&self) -> String {
        format!("{}/wal/", self.prefix)
    }

    fn ckpt_prefix(&self) -> String {
        format!("{}/ckpt/", self.prefix)
    }

    /// Key of a WAL segment.
    pub fn wal_key(&self, gen: u32, node: NodeId, seq: u64) -> String {
        format!("{}/wal/{gen:08}-{:08}-{seq:016}", self.prefix, node.0)
    }

    /// Key of a checkpoint blob.
    pub fn ckpt_key(&self, gen: u32, seq: u64) -> String {
        format!("{}/ckpt/{gen:08}-{seq:016}", self.prefix)
    }

    /// Parses a WAL key back into `(gen, node, seq)`.
    pub fn parse_wal_key(&self, key: &str) -> Option<(u32, NodeId, u64)> {
        let rest = key.strip_prefix(&self.wal_prefix())?;
        let mut parts = rest.splitn(3, '-');
        let gen = parts.next()?.parse().ok()?;
        let node = parts.next()?.parse().ok()?;
        let seq = parts.next()?.parse().ok()?;
        Some((gen, NodeId(node), seq))
    }

    /// Parses a checkpoint key back into `(gen, seq)`.
    pub fn parse_ckpt_key(&self, key: &str) -> Option<(u32, u64)> {
        let rest = key.strip_prefix(&self.ckpt_prefix())?;
        let (gen, seq) = rest.split_once('-')?;
        Some((gen.parse().ok()?, seq.parse().ok()?))
    }

    fn record_put(&self, ctx: &Ctx, key: String, bytes: usize) {
        let mut g = self.ledger.lock();
        g.puts += 1;
        g.bytes_put += bytes as u64;
        g.records.push(StorageRecord {
            key,
            size_gb: bytes as f64 / (1024.0 * 1024.0 * 1024.0),
            created: ctx.now(),
            deleted: None,
        });
    }

    /// Writes one WAL segment under this store's generation; returns the
    /// encoded size in bytes.
    pub fn put_segment(&self, ctx: &mut Ctx, seg: &WalSegment) -> usize {
        // invariant: WalSegment derives Serialize and holds plain data.
        let payload = simcore::codec::to_bytes(seg).expect("segment encodes");
        let key = self.wal_key(seg.gen, seg.node, seg.seq);
        let bytes = payload.len();
        self.s3.put(ctx, &key, payload);
        self.record_put(ctx, key, bytes);
        bytes
    }

    /// Writes one checkpoint blob; returns the encoded size in bytes.
    pub fn put_checkpoint(&self, ctx: &mut Ctx, blob: &CheckpointBlob) -> usize {
        // invariant: CheckpointBlob derives Serialize and holds plain data.
        let payload = simcore::codec::to_bytes(blob).expect("checkpoint encodes");
        let key = self.ckpt_key(blob.gen, blob.seq);
        let bytes = payload.len();
        self.s3.put(ctx, &key, payload);
        self.record_put(ctx, key, bytes);
        bytes
    }

    /// Fetches and decodes a WAL segment; `None` if absent or not yet
    /// visible. Returns the segment together with its encoded size.
    pub fn get_segment(&self, ctx: &mut Ctx, key: &str) -> Option<(WalSegment, usize)> {
        self.ledger.lock().gets += 1;
        let payload = self.s3.get(ctx, key)?;
        let size = payload.len();
        simcore::codec::from_bytes(&payload).ok().map(|seg| (seg, size))
    }

    /// Fetches and decodes a checkpoint blob; `None` if absent or not yet
    /// visible.
    pub fn get_checkpoint(&self, ctx: &mut Ctx, key: &str) -> Option<CheckpointBlob> {
        self.ledger.lock().gets += 1;
        let payload = self.s3.get(ctx, key)?;
        simcore::codec::from_bytes(&payload).ok()
    }

    /// Lists the visible WAL segment keys (all generations), sorted — the
    /// lexicographic order is `(gen, node, seq)` order.
    pub fn list_wal(&self, ctx: &mut Ctx) -> Vec<String> {
        self.ledger.lock().lists += 1;
        self.s3.list(ctx, &self.wal_prefix())
    }

    /// Lists the visible checkpoint keys (all generations), sorted.
    pub fn list_ckpts(&self, ctx: &mut Ctx) -> Vec<String> {
        self.ledger.lock().lists += 1;
        self.s3.list(ctx, &self.ckpt_prefix())
    }

    /// Deletes a key (garbage collection), closing its storage record.
    pub fn delete(&self, ctx: &mut Ctx, key: &str) {
        self.s3.delete(ctx, key);
        let mut g = self.ledger.lock();
        g.deletes += 1;
        let now = ctx.now();
        if let Some(r) = g.records.iter_mut().rev().find(|r| r.key == key && r.deleted.is_none()) {
            r.deleted = Some(now);
        }
    }

    /// Deletes a batch of keys in one `DeleteObjects` round trip, closing
    /// each key's storage record. Counts one request per key in the
    /// ledger — S3 bills `DeleteObjects` per object, not per call.
    pub fn delete_many(&self, ctx: &mut Ctx, keys: Vec<String>) {
        if keys.is_empty() {
            return;
        }
        self.s3.delete_many(ctx, keys.clone());
        let mut g = self.ledger.lock();
        g.deletes += keys.len() as u64;
        let now = ctx.now();
        for key in &keys {
            if let Some(r) =
                g.records.iter_mut().rev().find(|r| r.key == *key && r.deleted.is_none())
            {
                r.deleted = Some(now);
            }
        }
    }

    /// Request counts and storage GB-seconds held up to `until`.
    pub fn stats(&self, until: SimTime) -> DurabilityStats {
        let g = self.ledger.lock();
        let stored_gb_seconds = simcore::fsum(g.records.iter().map(|r| {
            let end = r.deleted.unwrap_or(until);
            r.size_gb * end.saturating_duration_since(r.created).as_secs_f64()
        }));
        DurabilityStats {
            puts: g.puts,
            gets: g.gets,
            lists: g.lists,
            deletes: g.deletes,
            bytes_put: g.bytes_put,
            stored_gb_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DurabilityStore {
        // Key math needs no live S3; build a handle against a dummy sim.
        let sim = simcore::Sim::new(1);
        DurabilityStore::new(cloudstore::spawn_s3(&sim, cloudstore::S3Config::default()), "dur")
    }

    #[test]
    fn keys_round_trip_and_sort_in_stream_order() {
        let s = store();
        let k = s.wal_key(3, NodeId(7), 42);
        assert_eq!(s.parse_wal_key(&k), Some((3, NodeId(7), 42)));
        let c = s.ckpt_key(3, 9);
        assert_eq!(s.parse_ckpt_key(&c), Some((3, 9)));
        assert!(s.parse_wal_key(&c).is_none());
        // Lexicographic order must equal (gen, node, seq) order.
        let mut keys = [
            s.wal_key(1, NodeId(0), 2),
            s.wal_key(0, NodeId(9), 100),
            s.wal_key(0, NodeId(9), 99),
            s.wal_key(0, NodeId(10), 1),
        ];
        keys.sort();
        let parsed: Vec<_> = keys.iter().map(|k| s.parse_wal_key(k).unwrap()).collect();
        assert_eq!(
            parsed,
            vec![(0, NodeId(9), 99), (0, NodeId(9), 100), (0, NodeId(10), 1), (1, NodeId(0), 2),]
        );
    }

    #[test]
    fn generation_clone_shares_the_ledger() {
        let s = store();
        let g1 = s.with_generation(1);
        assert_eq!(g1.generation(), 1);
        assert_eq!(s.generation(), 0);
        g1.ledger.lock().puts += 1;
        assert_eq!(s.stats(SimTime::ZERO).puts, 1, "ledger is shared");
        assert!(s.stats(SimTime::ZERO).stored_gb_seconds.is_sign_positive());
    }
}
