//! Per-node write-ahead logging with group commit.
//!
//! Workers log the post-state of every applied mutation into a shared
//! [`WalState`] buffer (host-side only — no virtual time on the write
//! path). A per-node daemon flushes the buffer as one
//! [`WalSegment`](crate::protocol::WalSegment) PUT per group-commit
//! interval, coalescing repeated mutations of the same object to its
//! newest state. Under [`DurabilityLevel::Sync`](crate::DurabilityLevel)
//! the replying replica parks the client's acknowledgement here and the
//! daemon releases it after the PUT containing the write returns.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simcore::{Addr, Ctx, LatencyModel, Ticker};

use crate::config::DurabilityConfig;
use crate::object::ObjectRef;
use crate::protocol::{InvokeResp, NodeId, WalRecord, WalSegment};

/// A client acknowledgement withheld until the write's WAL flush (Sync).
pub(crate) struct PendingAck {
    pub reply_to: Addr,
    pub tag: Option<u32>,
    pub resp: InvokeResp,
}

#[derive(Default)]
struct WalInner {
    /// Buffered records, newest state per object (group-commit coalescing).
    records: BTreeMap<ObjectRef, WalRecord>,
    /// Mutations folded into `records` since the last flush.
    coalesced: u64,
    /// Sync acknowledgements riding the next flush.
    acks: Vec<PendingAck>,
    /// Next segment sequence number (contiguous per node per generation).
    next_seq: u64,
}

/// Shared WAL buffer of one storage node.
pub(crate) struct WalState {
    node: NodeId,
    inner: Mutex<WalInner>,
}

impl WalState {
    pub(crate) fn new(node: NodeId) -> WalState {
        WalState { node, inner: Mutex::new(WalInner { next_seq: 1, ..WalInner::default() }) }
    }

    /// Buffers one applied mutation (called by workers; host-side only).
    pub(crate) fn log(&self, rec: WalRecord) {
        let mut g = self.inner.lock();
        g.coalesced += 1;
        g.records.insert(rec.obj.clone(), rec);
    }

    /// Parks a Sync acknowledgement until the next flush completes.
    pub(crate) fn queue_ack(&self, ack: PendingAck) {
        self.inner.lock().acks.push(ack);
    }

    /// Buffered records awaiting flush.
    pub(crate) fn backlog(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Flushes the buffer: drains up to `segment_max_records` records per
    /// segment (looping until empty), PUTs each segment, then releases the
    /// parked acknowledgements. Returns the number of segments written.
    pub(crate) fn flush(
        &self,
        ctx: &mut Ctx,
        d: &DurabilityConfig,
        client_net: &LatencyModel,
    ) -> usize {
        let mut segments = 0;
        loop {
            // Take one segment's worth (plus all acks on the final batch)
            // under the lock, then do the PUT without holding it.
            let (records, coalesced, acks, seq) = {
                let mut g = self.inner.lock();
                if g.records.is_empty() {
                    let acks = std::mem::take(&mut g.acks);
                    drop(g);
                    // Acks with no pending records: their batch was taken
                    // by a previous loop iteration (or the record coalesced
                    // away); the data is durable, release them.
                    self.release(ctx, client_net, acks);
                    return segments;
                }
                let mut records: Vec<WalRecord> =
                    Vec::with_capacity(g.records.len().min(d.segment_max_records));
                while records.len() < d.segment_max_records {
                    let Some(key) = g.records.keys().next().cloned() else { break };
                    // invariant: key was just observed in the map.
                    records.push(g.records.remove(&key).expect("buffered record"));
                }
                let coalesced = std::mem::take(&mut g.coalesced);
                let acks =
                    if g.records.is_empty() { std::mem::take(&mut g.acks) } else { Vec::new() };
                let seq = g.next_seq;
                g.next_seq += 1;
                (records, coalesced, acks, seq)
            };
            let seg =
                WalSegment { gen: d.store.generation(), node: self.node, seq, coalesced, records };
            let span = ctx.span_begin("dso.wal_append", "dso");
            ctx.span_annotate(span, "node", self.node.to_string());
            ctx.span_annotate(span, "seq", seq.to_string());
            ctx.span_annotate(span, "records", seg.records.len().to_string());
            let bytes = d.store.put_segment(ctx, &seg);
            ctx.span_annotate(span, "bytes", bytes.to_string());
            ctx.span_end(span);
            ctx.metric_incr("dso.wal_appends");
            ctx.metric_add("dso.wal_records", seg.records.len() as u64);
            segments += 1;
            self.release(ctx, client_net, acks);
        }
    }

    /// Sends parked acknowledgements; the data they cover is durable.
    fn release(&self, ctx: &mut Ctx, client_net: &LatencyModel, acks: Vec<PendingAck>) {
        for ack in acks {
            let lat = client_net.sample(ctx.rng());
            crate::server::reply_tagged(ctx, ack.reply_to, ack.tag, ack.resp, lat);
        }
    }
}

/// The per-node WAL daemon: pushes the backlog gauge and flushes on the
/// group-commit cadence. Spawned by the server only when durability is
/// active, so default-config schedules stay byte-identical.
pub(crate) fn wal_daemon(
    ctx: &mut Ctx,
    wal: Arc<WalState>,
    d: DurabilityConfig,
    client_net: LatencyModel,
) {
    let mut tick = Ticker::new(ctx.now(), d.group_commit);
    loop {
        tick.wait(ctx);
        ctx.metric_push("dso.wal_backlog", wal.backlog() as f64);
        wal.flush(ctx, &d, &client_net);
    }
}
