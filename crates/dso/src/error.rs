//! Error types of the DSO layer.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An error raised by a shared object while handling a method call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectError {
    /// The object does not implement the requested method.
    MethodNotFound(String),
    /// The arguments could not be decoded.
    BadArgs(String),
    /// The saved state could not be decoded.
    BadState(String),
    /// An application-level failure inside the method body.
    App(String),
    /// A method declared read-only mutated the object's state; caught by
    /// the server's runtime check ([`crate::DsoConfig::verify_readonly`])
    /// and rejected, with the object's state restored.
    ReadonlyViolation(String),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::MethodNotFound(m) => write!(f, "method not found: {m}"),
            ObjectError::BadArgs(e) => write!(f, "bad arguments: {e}"),
            ObjectError::BadState(e) => write!(f, "bad object state: {e}"),
            ObjectError::App(e) => write!(f, "application error: {e}"),
            ObjectError::ReadonlyViolation(m) => {
                write!(f, "method declared read-only mutated the object: {m}")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

impl From<simcore::codec::CodecError> for ObjectError {
    fn from(e: simcore::codec::CodecError) -> Self {
        ObjectError::BadArgs(e.to_string())
    }
}

/// An error returned to a DSO client.
#[derive(Debug, Clone, PartialEq)]
pub enum DsoError {
    /// The contacted node does not hold the object under the current view;
    /// the client should refresh its view and retry.
    NotOwner {
        /// View id at the contacted server.
        view: u64,
    },
    /// Transient condition (e.g. object in transfer); retry after backoff.
    Retry,
    /// No response within the timeout (node crashed or unreachable).
    Timeout,
    /// The object rejected the call.
    Object(ObjectError),
    /// The object type is not registered on the servers.
    UnknownType(String),
    /// Retries exhausted without success.
    GaveUp {
        /// Number of attempts made.
        attempts: u32,
    },
}

impl fmt::Display for DsoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsoError::NotOwner { view } => write!(f, "server is not an owner (view {view})"),
            DsoError::Retry => write!(f, "transient failure, retry"),
            DsoError::Timeout => write!(f, "request timed out"),
            DsoError::Object(e) => write!(f, "object error: {e}"),
            DsoError::UnknownType(t) => write!(f, "unknown object type: {t}"),
            DsoError::GaveUp { attempts } => write!(f, "gave up after {attempts} attempts"),
        }
    }
}

impl std::error::Error for DsoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsoError::Object(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ObjectError> for DsoError {
    fn from(e: ObjectError) -> Self {
        DsoError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(ObjectError::MethodNotFound("foo".into()).to_string(), "method not found: foo");
        assert_eq!(DsoError::Timeout.to_string(), "request timed out");
        assert_eq!(DsoError::GaveUp { attempts: 3 }.to_string(), "gave up after 3 attempts");
    }

    #[test]
    fn conversions() {
        let oe = ObjectError::App("x".into());
        let de: DsoError = oe.clone().into();
        assert_eq!(de, DsoError::Object(oe));
        let ce = simcore::codec::from_bytes::<u64>(&[1]).unwrap_err();
        let oe: ObjectError = ce.into();
        assert!(matches!(oe, ObjectError::BadArgs(_)));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let de = DsoError::Object(ObjectError::App("y".into()));
        assert!(de.source().is_some());
        assert!(DsoError::Retry.source().is_none());
    }
}
