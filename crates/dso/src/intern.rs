//! Global method-name interning.
//!
//! Method names are drawn from a tiny, static vocabulary (`"get"`,
//! `"addAndGet"`, …) yet used to travel the hot invocation path as a fresh
//! `String` per request — and per *retry*. A [`MethodName`] is an
//! `Arc<str>` deduplicated in a process-wide table: constructing one for an
//! already-seen name is a lock + map hit, and cloning one (per retry, per
//! batch item) is a reference-count bump.

use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// An interned method name: cheap to clone, compares by content.
#[derive(Clone, Eq, PartialOrd, Ord)]
pub struct MethodName(Arc<str>);

fn table() -> &'static Mutex<HashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Interns `name`, returning the canonical [`MethodName`] for it.
pub fn intern(name: &str) -> MethodName {
    let mut t = table().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = t.get(name) {
        return MethodName(existing.clone());
    }
    let arc: Arc<str> = Arc::from(name);
    t.insert(arc.clone());
    MethodName(arc)
}

impl MethodName {
    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for MethodName {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for MethodName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq for MethodName {
    fn eq(&self, other: &MethodName) -> bool {
        // Interned names are unique per content, so pointer equality is
        // exact; keep the content fallback for names built across tables
        // (there is only one table today, but correctness must not depend
        // on that).
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl PartialEq<str> for MethodName {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for MethodName {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl std::hash::Hash for MethodName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Content hashing keeps MethodName and &str interchangeable as
        // lookup keys.
        self.0.hash(state);
    }
}

impl From<&str> for MethodName {
    fn from(s: &str) -> MethodName {
        intern(s)
    }
}

impl serde::Serialize for MethodName {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.0)
    }
}

impl<'de> serde::Deserialize<'de> for MethodName {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<MethodName, D::Error> {
        // Deserializing re-interns, so names stay deduplicated even after a
        // round-trip through the wire codec.
        let s = <String as serde::Deserialize>::deserialize(d)?;
        Ok(intern(&s))
    }
}

impl fmt::Debug for MethodName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl fmt::Display for MethodName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let a = intern("addAndGet");
        let b = intern("addAndGet");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        assert_eq!(a, "addAndGet");
        assert_ne!(intern("get"), intern("set"));
    }

    #[test]
    fn serde_round_trip_reinterns() {
        let m = intern("compareAndSet");
        let bytes = simcore::codec::to_bytes(&m).expect("encodes");
        let back: MethodName = simcore::codec::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, m);
        assert!(Arc::ptr_eq(&back.0, &m.0), "deserialization re-interns");
    }

    #[test]
    fn behaves_like_a_str() {
        let m = intern("get");
        assert_eq!(m.as_str(), "get");
        assert_eq!(m.len(), 3);
        assert_eq!(m.to_string(), "get");
        assert_eq!(format!("{m:?}"), "\"get\"");
    }
}
