//! # dso — the distributed shared-object layer of Crucial
//!
//! This crate is the paper's primary contribution, rebuilt in Rust on top
//! of the [`simcore`] simulation kernel:
//!
//! * **Method-call shipping** ([`object`](crate::SharedObject),
//!   [`server`]): clients send `(reference, method, args)`; the owning
//!   server runs the method next to the data, turning O(N²) all-reduce
//!   traffic into O(N) updates (§4.2).
//! * **Consistent hashing** ([`Ring`]): placement is a local computation on
//!   every node and client (§4.1).
//! * **Linearizability**: each object is bound to one worker per node, so
//!   its operations execute serially in arrival order, while distinct
//!   objects enjoy disjoint-access parallelism (§2.3, Fig. 2a).
//! * **Persistence via SMR** ([`skeen`], [`server`]): objects declared
//!   `persistent` replicate to `rf` ring successors; writes are ordered by
//!   Skeen's total-order multicast and applied at every replica (§4.1).
//! * **View-synchronous membership** ([`spawn_coordinator`]): a coordinator
//!   issues totally-ordered views; nodes heartbeat, crashed nodes are
//!   evicted, and objects rebalance on every change (Fig. 8).
//! * **Synchronization objects** ([`objects`], [`api`]): server-side
//!   barriers, semaphores, latches and futures that *park the call* instead
//!   of polling (§6.3).
//!
//! ## Example
//!
//! ```
//! use simcore::Sim;
//! use dso::{api, DsoCluster, DsoConfig, ObjectRegistry};
//!
//! let mut sim = Sim::new(7);
//! let cluster = DsoCluster::start(&sim, 3, DsoConfig::default(),
//!                                 ObjectRegistry::with_builtins());
//! let handle = cluster.client_handle();
//!
//! // Two "cloud threads" maintaining one persistent counter (rf = 2).
//! for t in 0..2 {
//!     let handle = handle.clone();
//!     sim.spawn(&format!("thread-{t}"), move |ctx| {
//!         let mut cli = handle.connect();
//!         let counter = dso::api::AtomicLong::persistent("total", 0, 2);
//!         for _ in 0..10 {
//!             counter.add_and_get(ctx, &mut cli, 1).expect("dso reachable");
//!         }
//!     });
//! }
//! sim.run_until_idle().expect_quiescent();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
mod client;
mod cluster;
mod config;
pub mod durability;
mod error;
pub mod intern;
mod membership;
mod node_cache;
mod object;
pub mod objects;
pub mod passivation;
pub mod protocol;
pub mod read_policy;
mod ring;
pub mod server;
pub mod skeen;
pub mod verify;

pub use client::{BatchOp, DsoClient, DsoClientHandle, MonotonicReads};
pub use cluster::DsoCluster;
pub use config::{
    AdmissionConfig, ConsistencyMode, DsoConfig, DsoConfigBuilder, DsoConfigError,
    DurabilityConfig, DurabilityLevel, PureMethods,
};
pub use durability::{
    checkpoint, recover_into, spawn_checkpointer, CheckpointReport, Checkpointer, DurabilityStats,
    DurabilityStore, RecoveryReport,
};
pub use error::{DsoError, ObjectError};
pub use intern::{intern, MethodName};
pub use membership::{spawn_coordinator, spawn_coordinator_from};
pub use node_cache::{NodeCache, NodeCacheKey, NodeEntry};
pub use object::{
    costs, CallCtx, Effects, Mergeable, ObjectFactory, ObjectRef, ObjectRegistry, Reply,
    SharedObject, Ticket,
};
pub use protocol::DrainNode;
pub use read_policy::{policy_for, ReadPolicy};
pub use ring::{fnv1a, mix, Ring, VNODES};
pub use server::{spawn_server, spawn_server_from, ServerHandle};
