//! The membership coordinator: issues a totally-ordered sequence of views
//! (the "variation of view synchrony" of §4.1) and detects crashed storage
//! nodes through heartbeats.
//!
//! Servers `Join` when they start and heartbeat periodically; a server
//! silent for longer than [`crate::DsoConfig::failure_timeout`] is removed
//! from the view. Every view change is broadcast to the members, which
//! rebalance objects accordingly; clients pull views on demand with
//! [`crate::protocol::GetView`].

use std::collections::BTreeMap;

use simcore::{Addr, Ctx, Msg, Request, Sim, SimTime};

use crate::config::DsoConfig;
use crate::protocol::{GetView, MemberMsg, NodeId, View, ViewUpdate};

/// Spawns the coordinator process; returns its mailbox address.
pub fn spawn_coordinator(sim: &Sim, cfg: DsoConfig) -> Addr {
    let inbox = sim.mailbox("dso-coordinator");
    sim.spawn_daemon("dso-coordinator", move |ctx| {
        coordinator_loop(ctx, inbox, cfg);
    });
    inbox
}

/// [`spawn_coordinator`] from inside the simulation — used by
/// [`crate::DsoCluster::recover_from`] to rebuild a crashed deployment
/// without leaving virtual time.
pub fn spawn_coordinator_from(ctx: &mut Ctx, cfg: DsoConfig) -> Addr {
    let inbox = ctx.shared_mailbox("dso-coordinator");
    ctx.spawn_daemon("dso-coordinator", move |c| {
        coordinator_loop(c, inbox, cfg);
    });
    inbox
}

struct MemberState {
    addr: Addr,
    last_heartbeat: SimTime,
}

fn coordinator_loop(ctx: &mut Ctx, inbox: Addr, cfg: DsoConfig) {
    let mut members: BTreeMap<NodeId, MemberState> = BTreeMap::new();
    let mut view_id: u64 = 0;
    loop {
        let msg = ctx.recv_timeout(inbox, cfg.heartbeat_interval);
        let mut changed = false;
        // Graceful leavers this round: they are no longer members, but the
        // leave view must still be pushed to them — a draining node
        // transfers its objects out only once it sees the view excluding
        // it. (Crashed nodes get nothing: they cannot receive.)
        let mut leavers: Vec<Addr> = Vec::new();
        if let Some(msg) = msg {
            match msg.try_take::<Request>() {
                Ok(req) => {
                    // Client (or server) asking for the current view.
                    let (reply_to, GetView) = req.take::<GetView>();
                    let view = make_view(view_id, &members);
                    let lat = cfg.client_net.sample(ctx.rng());
                    ctx.reply(reply_to, view, lat);
                }
                Err(other) => match other.take::<MemberMsg>() {
                    MemberMsg::Join { node, addr } => {
                        ctx.trace(format!("join {node}"));
                        members.insert(node, MemberState { addr, last_heartbeat: ctx.now() });
                        changed = true;
                    }
                    MemberMsg::Heartbeat { node } => {
                        if let Some(m) = members.get_mut(&node) {
                            m.last_heartbeat = ctx.now();
                        }
                    }
                    MemberMsg::Leave { node } => {
                        if let Some(st) = members.remove(&node) {
                            ctx.trace(format!("leave {node}"));
                            leavers.push(st.addr);
                            changed = true;
                        }
                    }
                },
            }
        }
        // Failure detection sweep.
        let now = ctx.now();
        let dead: Vec<NodeId> = members
            .iter()
            .filter(|(_, m)| now.saturating_duration_since(m.last_heartbeat) > cfg.failure_timeout)
            .map(|(&n, _)| n)
            .collect();
        for n in dead {
            ctx.trace(format!("declare dead {n}"));
            members.remove(&n);
            changed = true;
        }
        if changed {
            view_id += 1;
            ctx.metric_incr("dso.view_changes");
            let mark = ctx.span_instant("dso.view_change", "dso");
            ctx.span_annotate(mark, "view", view_id.to_string());
            let view = make_view(view_id, &members);
            for addr in members.values().map(|m| m.addr).chain(leavers) {
                let lat = cfg.peer_net.sample(ctx.rng());
                ctx.send(addr, Msg::new(ViewUpdate(view.clone())), lat);
            }
        }
    }
}

fn make_view(id: u64, members: &BTreeMap<NodeId, MemberState>) -> View {
    View { id, members: members.iter().map(|(&n, m)| (n, m.addr)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use parking_lot::Mutex;

    fn cfg() -> DsoConfig {
        DsoConfig::default()
    }

    #[test]
    fn join_produces_views_and_getview_reflects_them() {
        let mut sim = Sim::new(1);
        let coord = spawn_coordinator(&sim, cfg());
        let views: Arc<Mutex<Vec<View>>> = Arc::new(Mutex::new(Vec::new()));
        // Two fake servers that join and record pushed views.
        for i in 0..2u32 {
            let views = views.clone();
            sim.spawn_daemon(&format!("srv{i}"), move |ctx| {
                let inbox = ctx.mailbox(&format!("srv{i}-inbox"));
                ctx.send(
                    coord,
                    Msg::new(MemberMsg::Join { node: NodeId(i), addr: inbox }),
                    Duration::from_micros(90),
                );
                loop {
                    let m = ctx.recv(inbox);
                    if let Ok(ViewUpdate(v)) = m.try_take::<ViewUpdate>() {
                        views.lock().push(v);
                    }
                }
            });
        }
        let got: Arc<Mutex<Option<View>>> = Arc::new(Mutex::new(None));
        let got2 = got.clone();
        sim.spawn("client", move |ctx| {
            ctx.sleep(Duration::from_millis(50));
            let v: View = ctx.call(coord, GetView, Duration::from_micros(90));
            *got2.lock() = Some(v);
        });
        sim.run_until(SimTime::from_millis(100));
        let v = got.lock().clone().expect("client got view");
        assert_eq!(v.members.len(), 2);
        assert!(v.id >= 2, "two joins bump the view twice");
        // Both servers eventually saw the final view.
        let vs = views.lock();
        assert!(vs.iter().any(|x| x.members.len() == 2));
    }

    #[test]
    fn silent_member_is_removed() {
        let mut sim = Sim::new(2);
        let mut c = cfg();
        c.heartbeat_interval = Duration::from_millis(100);
        c.failure_timeout = Duration::from_millis(300);
        let coord = spawn_coordinator(&sim, c.clone());
        // A member that joins and heartbeats forever.
        sim.spawn_daemon("alive", move |ctx| {
            let inbox = ctx.mailbox("alive-inbox");
            ctx.send(
                coord,
                Msg::new(MemberMsg::Join { node: NodeId(0), addr: inbox }),
                Duration::ZERO,
            );
            loop {
                ctx.sleep(Duration::from_millis(100));
                ctx.send(coord, Msg::new(MemberMsg::Heartbeat { node: NodeId(0) }), Duration::ZERO);
            }
        });
        // A member that joins and goes silent.
        sim.spawn_daemon("silent", move |ctx| {
            let inbox = ctx.mailbox("silent-inbox");
            ctx.send(
                coord,
                Msg::new(MemberMsg::Join { node: NodeId(1), addr: inbox }),
                Duration::ZERO,
            );
            loop {
                let _ = ctx.recv(inbox);
            }
        });
        let got: Arc<Mutex<Option<View>>> = Arc::new(Mutex::new(None));
        let got2 = got.clone();
        sim.spawn("client", move |ctx| {
            ctx.sleep(Duration::from_secs(2));
            let v: View = ctx.call(coord, GetView, Duration::ZERO);
            *got2.lock() = Some(v);
        });
        sim.run_until(SimTime::from_secs(3));
        let v = got.lock().clone().expect("view");
        assert_eq!(v.node_ids(), vec![NodeId(0)], "silent node evicted");
    }

    #[test]
    fn leave_is_immediate() {
        let mut sim = Sim::new(3);
        let coord = spawn_coordinator(&sim, cfg());
        sim.spawn("srv", move |ctx| {
            let inbox = ctx.shared_mailbox("srv-inbox");
            ctx.send(
                coord,
                Msg::new(MemberMsg::Join { node: NodeId(5), addr: inbox }),
                Duration::ZERO,
            );
            ctx.sleep(Duration::from_millis(10));
            ctx.send(coord, Msg::new(MemberMsg::Leave { node: NodeId(5) }), Duration::ZERO);
            ctx.sleep(Duration::from_millis(10));
            let v: View = ctx.call(coord, GetView, Duration::ZERO);
            assert!(v.members.is_empty());
        });
        sim.run_until(SimTime::from_secs(1));
    }
}
