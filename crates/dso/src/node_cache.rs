//! A co-located read cache shared by every function container on one FaaS
//! host.
//!
//! The PR-1 client cache lives inside one `DsoClient`, so its warmth dies
//! with the function invocation — exactly the ephemerality problem §3 of
//! the paper works around. A [`NodeCache`] instead belongs to the *host*
//! (see `faas::FnCtx::host`): containers come and go, each connecting a
//! fresh client, but they all share the host's cache, so the first
//! container's read warms every later one.
//!
//! Coherence is the same validate-or-lease protocol as the client cache:
//! entries remember the `(version, lamport)` piggybacked on the reply that
//! installed them; within the policy's lease they are served locally, and
//! after it they are revalidated with a dispatcher-level version probe.
//! Writes issued through a co-located client invalidate eagerly. Hits,
//! misses and invalidations are counted under `dso.node_cache.*`
//! (deliberately disjoint from the client-private `dso.read_cache.*`).

use bytes::Bytes;
use parking_lot::Mutex;
use simcore::SimTime;
use std::collections::HashMap;

use crate::intern::MethodName;
use crate::object::ObjectRef;

/// Cache key: one entry per `(object, method, arguments)` triple, the same
/// granularity as the client cache.
pub type NodeCacheKey = (ObjectRef, MethodName, Bytes);

/// One cached read result with the coherence metadata needed to serve or
/// revalidate it.
#[derive(Clone, Debug)]
pub struct NodeEntry {
    /// The encoded reply bytes.
    pub bytes: Bytes,
    /// Object version (mutation count) piggybacked on the installing read.
    pub version: u64,
    /// Lamport stamp piggybacked on the installing read (for causal
    /// admission).
    pub lamport: u64,
    /// Virtual time of the last validation against an owner node.
    pub validated_at: SimTime,
}

/// A per-host shared read cache. Cheap to clone the `Arc` around it; the
/// interior mutex is uncontended in simulation (one event at a time) and
/// exists so co-located simulated processes can share it mutably.
#[derive(Debug, Default)]
pub struct NodeCache {
    entries: Mutex<HashMap<NodeCacheKey, NodeEntry>>,
}

impl NodeCache {
    /// An empty cache.
    pub fn new() -> NodeCache {
        NodeCache::default()
    }

    /// Looks up an entry, cloning it out (the payload is refcounted).
    pub fn get(&self, key: &NodeCacheKey) -> Option<NodeEntry> {
        self.entries.lock().get(key).cloned()
    }

    /// Installs (or replaces) an entry.
    pub fn insert(&self, key: NodeCacheKey, entry: NodeEntry) {
        self.entries.lock().insert(key, entry);
    }

    /// Marks an entry as freshly validated at `now`, restarting its lease.
    pub fn revalidate(&self, key: &NodeCacheKey, now: SimTime) {
        if let Some(e) = self.entries.lock().get_mut(key) {
            e.validated_at = now;
        }
    }

    /// Drops one entry (failed revalidation).
    pub fn remove(&self, key: &NodeCacheKey) {
        self.entries.lock().remove(key);
    }

    /// Drops every entry for `obj` (a co-located client wrote it).
    /// Returns how many entries were removed.
    pub fn invalidate(&self, obj: &ObjectRef) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|(o, _, _), _| o != obj);
        before - entries.len()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::intern;

    fn key(obj: &str, method: &str) -> NodeCacheKey {
        (ObjectRef::new("T", obj), intern(method), Bytes::new())
    }

    fn entry(version: u64) -> NodeEntry {
        NodeEntry {
            bytes: Bytes::from_static(b"v"),
            version,
            lamport: version,
            validated_at: SimTime::ZERO,
        }
    }

    #[test]
    fn insert_get_revalidate_invalidate() {
        let nc = NodeCache::new();
        assert!(nc.is_empty());
        nc.insert(key("a", "get"), entry(3));
        nc.insert(key("a", "size"), entry(3));
        nc.insert(key("b", "get"), entry(1));
        assert_eq!(nc.len(), 3);
        assert_eq!(nc.get(&key("a", "get")).expect("cached").version, 3);
        assert!(nc.get(&key("c", "get")).is_none());

        let later = SimTime::ZERO + std::time::Duration::from_millis(5);
        nc.revalidate(&key("a", "get"), later);
        assert_eq!(nc.get(&key("a", "get")).expect("cached").validated_at, later);

        // A write to `a` drops both of its entries, not `b`'s.
        assert_eq!(nc.invalidate(&ObjectRef::new("T", "a")), 2);
        assert_eq!(nc.len(), 1);
        assert!(nc.get(&key("b", "get")).is_some());

        nc.remove(&key("b", "get"));
        assert!(nc.is_empty());
    }
}
