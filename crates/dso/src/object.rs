//! The shared-object model: references, the server-side object trait, and
//! the type registry ("uploading the jar" in the paper's terms).
//!
//! Fine-grained updates are *method calls shipped to the data*: a client
//! sends `(object reference, method name, encoded arguments)` and the owning
//! server runs the method against the materialized object (§4.2 of the
//! paper). Methods may also *defer* their reply — the substrate for
//! server-side synchronization objects such as barriers and futures.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::ObjectError;

/// Globally unique reference to a shared object: `(type name, key)`,
/// exactly as in §4.1 of the paper.
///
/// # Examples
///
/// ```
/// use dso::ObjectRef;
///
/// let r = ObjectRef::new("AtomicLong", "counter");
/// assert_eq!(r.type_name(), "AtomicLong");
/// assert_eq!(r.key(), "counter");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectRef {
    type_name: String,
    key: String,
}

impl ObjectRef {
    /// Creates a reference from a type name and key.
    pub fn new(type_name: impl Into<String>, key: impl Into<String>) -> ObjectRef {
        ObjectRef { type_name: type_name.into(), key: key.into() }
    }

    /// The object's registered type name.
    pub fn type_name(&self) -> &str {
        &self.type_name
    }

    /// The object's key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// 64-bit placement hash of this reference (FNV-1a over type and key).
    pub fn placement_hash(&self) -> u64 {
        let mut h = crate::ring::fnv1a(0, self.type_name.as_bytes());
        h = crate::ring::fnv1a(h, b"\0");
        crate::ring::mix(crate::ring::fnv1a(h, self.key.as_bytes()))
    }
}

impl fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectRef({}:{})", self.type_name, self.key)
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.type_name, self.key)
    }
}

/// A ticket identifying a deferred (parked) method call; used to complete
/// the call later.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ticket(pub u64);

/// What a method call produced.
#[derive(Debug)]
pub enum Reply {
    /// Respond to the caller now with this encoded value.
    Value(Vec<u8>),
    /// Defer the response; the object stored the call's [`Ticket`] and will
    /// complete it from a later invocation (via [`Effects::wakes`]).
    Park,
}

/// Full effect of one method invocation.
#[derive(Debug)]
pub struct Effects {
    /// Response for the *current* caller.
    pub reply: Reply,
    /// CPU time this method consumes on the server (drives throughput and
    /// the disjoint-access-parallelism experiments).
    pub cost: Duration,
    /// Deferred calls completed by this invocation, with their responses.
    pub wakes: Vec<(Ticket, Vec<u8>)>,
}

impl Effects {
    /// A plain value reply with the default "simple operation" cost.
    pub fn value<T: Serialize>(v: &T) -> Result<Effects, ObjectError> {
        Ok(Effects {
            reply: Reply::Value(
                simcore::codec::to_bytes(v).map_err(|e| ObjectError::App(e.to_string()))?,
            ),
            cost: costs::SIMPLE_OP,
            wakes: Vec::new(),
        })
    }

    /// A value reply with an explicit CPU cost.
    pub fn value_with_cost<T: Serialize>(v: &T, cost: Duration) -> Result<Effects, ObjectError> {
        let mut e = Effects::value(v)?;
        e.cost = cost;
        Ok(e)
    }

    /// Parks the current caller (reply comes later via a wake).
    pub fn park() -> Effects {
        Effects { reply: Reply::Park, cost: costs::SIMPLE_OP, wakes: Vec::new() }
    }

    /// Adds a deferred completion to this invocation's effects.
    ///
    /// # Errors
    ///
    /// Fails if the wake value cannot be encoded.
    pub fn wake<T: Serialize>(mut self, t: Ticket, v: &T) -> Result<Effects, ObjectError> {
        self.wakes
            .push((t, simcore::codec::to_bytes(v).map_err(|e| ObjectError::App(e.to_string()))?));
        Ok(self)
    }
}

/// Default CPU cost constants for object methods, calibrated so the
/// micro-benchmarks land in the paper's regimes (see DESIGN.md §4).
pub mod costs {
    use std::time::Duration;

    /// A simple operation on a Java-based DSO server (e.g. one arithmetic
    /// update): dominated by dispatch and (de)serialization of the
    /// Infinispan/Creson interceptor stack.
    pub const SIMPLE_OP: Duration = Duration::from_micros(35);

    /// Per-multiplication cost of the Fig. 2a "complex operation" loop on
    /// the JVM.
    pub const PER_MULT: Duration = Duration::from_nanos(55);

    /// Marginal (de)serialization cost per payload byte for bulk methods
    /// (e.g. byte-array get/set); calibrated so a 1 KB access lands at
    /// Table 2's ≈ 230 µs end-to-end.
    pub const PER_BYTE: Duration = Duration::from_nanos(25);
}

/// Context of one method invocation.
#[derive(Debug)]
pub struct CallCtx {
    /// The ticket of this call, for methods that park their caller.
    pub ticket: Ticket,
    /// Whether this invocation is an SMR re-execution on a replica (such
    /// invocations must not park).
    pub replicated: bool,
    /// The storage node executing this call. [`Mergeable`] objects use it
    /// as the actor id for per-replica CRDT state (e.g. the [`GCounter`]
    /// entry this replica owns).
    ///
    /// [`GCounter`]: crate::objects::GCounter
    pub node: u32,
}

/// A server-side shared object.
///
/// Implementations are plain state machines: `invoke` dispatches on the
/// method name, decodes arguments with [`simcore::codec`], mutates state
/// and returns [`Effects`]. `save`/`restore` support replication and
/// rebalancing ("marshalling" in the paper).
///
/// The `__create` method name is reserved: it is sent by client proxies to
/// initialize an object idempotently and is handled by the server, not by
/// `invoke`.
pub trait SharedObject: Send + 'static {
    /// Handles one method call.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectError`] for unknown methods, undecodable
    /// arguments, or application failures; the error is shipped back to the
    /// calling client.
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8])
        -> Result<Effects, ObjectError>;

    /// Whether `method` is read-only (never mutates the object).
    ///
    /// Read-only methods skip the SMR broadcast on replicated objects, do
    /// not advance the object's version, and — under
    /// [`crate::ConsistencyMode::ReplicaReads`] — may be served by any
    /// replica. The default classifies every method as mutating, which is
    /// always safe; objects opt methods in explicitly.
    fn is_readonly(&self, _method: &str) -> bool {
        false
    }

    /// Serializes the object's full state.
    fn save(&self) -> Vec<u8>;

    /// Replaces the object's state with a previously saved one.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectError::BadState`] if the bytes are not a valid state.
    fn restore(&mut self, state: &[u8]) -> Result<(), ObjectError>;

    /// The object's [`Mergeable`] view, if its state is convergent.
    ///
    /// Types whose state forms a join-semilattice (commutative,
    /// associative, idempotent merge) return `Some(self)` here; the
    /// server then reconciles replicas through [`Mergeable::merge`] on
    /// anti-entropy exchange under
    /// [`crate::ConsistencyMode::CrdtMerge`]. The default (`None`) keeps
    /// ordinary last-writer-wins transfer semantics.
    fn as_mergeable(&mut self) -> Option<&mut dyn Mergeable> {
        None
    }
}

/// Convergent (CRDT-style) object state: replicas that applied different
/// writes reconcile by merging, not by total order.
///
/// `merge` must be **commutative**, **associative**, and **idempotent**
/// over saved states (a join-semilattice join) — property-tested for the
/// built-in implementations in `tests/mergeable_props.rs`. Under
/// [`crate::ConsistencyMode::CrdtMerge`] the servers call it with the
/// peer replica's [`SharedObject::save`] bytes on every anti-entropy
/// exchange.
pub trait Mergeable {
    /// Merges another replica's saved state into this object.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectError::BadState`] if `other_state` does not decode.
    fn merge(&mut self, other_state: &[u8]) -> Result<(), ObjectError>;
}

/// Factory that builds an object from creation arguments (empty slice =
/// default construction).
pub type ObjectFactory =
    Arc<dyn Fn(&[u8]) -> Result<Box<dyn SharedObject>, ObjectError> + Send + Sync>;

/// Registry of object types available on the DSO servers.
///
/// The analogue of uploading the application jar to the servers: every type
/// used by an application must be registered before the cluster starts.
/// Registries are cheap to clone and shared between all server nodes.
///
/// # Examples
///
/// ```
/// use dso::{ObjectRegistry, objects::AtomicLong};
///
/// let mut reg = ObjectRegistry::new();
/// reg.register("AtomicLong", |args| AtomicLong::factory(args));
/// assert!(reg.contains("AtomicLong"));
/// ```
#[derive(Clone, Default)]
pub struct ObjectRegistry {
    factories: HashMap<String, ObjectFactory>,
    /// Type names registered through [`ObjectRegistry::register_mergeable`]:
    /// the set the servers consult to decide which objects take the
    /// merge-instead-of-SMR write path under
    /// [`crate::ConsistencyMode::CrdtMerge`].
    mergeable: std::collections::BTreeSet<String>,
}

impl ObjectRegistry {
    /// Creates an empty registry.
    pub fn new() -> ObjectRegistry {
        ObjectRegistry::default()
    }

    /// Creates a registry pre-loaded with the built-in object library
    /// (atomics, list, map, byte array, synchronization objects).
    pub fn with_builtins() -> ObjectRegistry {
        let mut r = ObjectRegistry::new();
        crate::objects::register_builtins(&mut r);
        r
    }

    /// Registers a type. Replaces any previous factory with the same name.
    pub fn register<F>(&mut self, type_name: &str, factory: F)
    where
        F: Fn(&[u8]) -> Result<Box<dyn SharedObject>, ObjectError> + Send + Sync + 'static,
    {
        self.factories.insert(type_name.to_string(), Arc::new(factory));
    }

    /// Registers a *mergeable* type: like [`register`](Self::register),
    /// and additionally marks the type as convergent so
    /// [`crate::ConsistencyMode::CrdtMerge`] applies its writes at the
    /// contacted replica and reconciles through anti-entropy merge. The
    /// factory's objects must return `Some` from
    /// [`SharedObject::as_mergeable`].
    pub fn register_mergeable<F>(&mut self, type_name: &str, factory: F)
    where
        F: Fn(&[u8]) -> Result<Box<dyn SharedObject>, ObjectError> + Send + Sync + 'static,
    {
        self.register(type_name, factory);
        self.mergeable.insert(type_name.to_string());
    }

    /// Whether a type is registered.
    pub fn contains(&self, type_name: &str) -> bool {
        self.factories.contains_key(type_name)
    }

    /// Whether `type_name` was registered as mergeable.
    pub fn is_mergeable(&self, type_name: &str) -> bool {
        self.mergeable.contains(type_name)
    }

    /// Type names registered as mergeable, sorted.
    pub fn mergeable_types(&self) -> Vec<String> {
        self.mergeable.iter().cloned().collect()
    }

    /// Instantiates an object of the given type.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the type is unknown or the factory rejects `args`.
    pub fn create(
        &self,
        type_name: &str,
        args: &[u8],
    ) -> Result<Box<dyn SharedObject>, ObjectError> {
        match self.factories.get(type_name) {
            Some(f) => f(args),
            None => Err(ObjectError::App(format!("type not registered: {type_name}"))),
        }
    }

    /// Registered type names, sorted.
    pub fn type_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.factories.keys().cloned().collect();
        v.sort();
        v
    }
}

impl fmt::Debug for ObjectRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectRegistry").field("types", &self.type_names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl SharedObject for Echo {
        fn invoke(
            &mut self,
            _call: &CallCtx,
            method: &str,
            args: &[u8],
        ) -> Result<Effects, ObjectError> {
            match method {
                "echo" => Ok(Effects {
                    reply: Reply::Value(args.to_vec()),
                    cost: Duration::ZERO,
                    wakes: Vec::new(),
                }),
                other => Err(ObjectError::MethodNotFound(other.to_string())),
            }
        }
        fn save(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore(&mut self, _state: &[u8]) -> Result<(), ObjectError> {
            Ok(())
        }
    }

    #[test]
    fn object_ref_accessors_and_hash() {
        let a = ObjectRef::new("T", "k1");
        let b = ObjectRef::new("T", "k2");
        let c = ObjectRef::new("U", "k1");
        assert_ne!(a.placement_hash(), b.placement_hash());
        assert_ne!(a.placement_hash(), c.placement_hash());
        assert_eq!(a.placement_hash(), ObjectRef::new("T", "k1").placement_hash());
        assert_eq!(a.to_string(), "T:k1");
    }

    #[test]
    fn registry_create_and_unknown() {
        let mut reg = ObjectRegistry::new();
        reg.register("Echo", |_| Ok(Box::new(Echo)));
        assert!(reg.contains("Echo"));
        assert!(!reg.contains("Nope"));
        let mut obj = reg.create("Echo", &[]).expect("create");
        let call = CallCtx { ticket: Ticket(0), replicated: false, node: 0 };
        let fx = obj.invoke(&call, "echo", &[1, 2]).expect("invoke");
        match fx.reply {
            Reply::Value(v) => assert_eq!(v, vec![1, 2]),
            Reply::Park => panic!("unexpected park"),
        }
        assert!(reg.create("Nope", &[]).is_err());
    }

    #[test]
    fn effects_builders() {
        let fx = Effects::value(&42u64).expect("encode");
        assert!(matches!(fx.reply, Reply::Value(_)));
        assert_eq!(fx.cost, costs::SIMPLE_OP);
        let fx = Effects::value_with_cost(&1u8, Duration::from_millis(1)).expect("encode");
        assert_eq!(fx.cost, Duration::from_millis(1));
        let fx = Effects::park().wake(Ticket(7), &9u32).expect("wake");
        assert!(matches!(fx.reply, Reply::Park));
        assert_eq!(fx.wakes.len(), 1);
        assert_eq!(fx.wakes[0].0, Ticket(7));
    }

    #[test]
    fn registry_reports_type_names_sorted() {
        let mut reg = ObjectRegistry::new();
        reg.register("B", |_| Ok(Box::new(Echo)));
        reg.register("A", |_| Ok(Box::new(Echo)));
        assert_eq!(reg.type_names(), vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn registry_tracks_mergeable_types() {
        let mut reg = ObjectRegistry::new();
        reg.register("Plain", |_| Ok(Box::new(Echo)));
        reg.register_mergeable("GCounter", crate::objects::GCounter::factory);
        assert!(reg.is_mergeable("GCounter"));
        assert!(!reg.is_mergeable("Plain"));
        assert!(!reg.is_mergeable("Unregistered"));
        assert_eq!(reg.mergeable_types(), vec!["GCounter".to_string()]);
        // register_mergeable registers the factory too.
        assert!(reg.contains("GCounter"));
        let mut obj = reg.create("GCounter", &[]).expect("create");
        assert!(obj.as_mergeable().is_some(), "a mergeable type exposes its merge view");
    }
}
