//! The micro-benchmark object of Fig. 2a: an integer-valued register with a
//! cheap operation (one multiplication) and an expensive one (10 k
//! sequential multiplications).
//!
//! Its CPU cost model is what exposes the architectural difference between
//! the DSO layer (multi-worker, disjoint-access parallel) and a
//! single-threaded Redis executing Lua scripts serially.

use serde::{Deserialize, Serialize};

use super::{dec, dec_create};
use crate::error::ObjectError as ObjErr;
use crate::object::{costs, CallCtx, Effects, SharedObject};

/// A shared register supporting simple and complex arithmetic updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arithmetic {
    value: f64,
}

impl Default for Arithmetic {
    fn default() -> Self {
        Arithmetic { value: 1.0 }
    }
}

impl Arithmetic {
    /// Registry type name.
    pub const TYPE: &'static str = "Arithmetic";

    /// Factory: creation args are an optional initial value.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let value = dec_create(args, 1.0f64)?;
        Ok(Box::new(Arithmetic { value }))
    }
}

impl SharedObject for Arithmetic {
    fn invoke(&mut self, _call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "get" => Effects::value(&self.value),
            // Simple operation: one multiplication.
            "mul" => {
                let x: f64 = dec(args)?;
                self.value = mul_n(self.value, x, 1);
                Effects::value(&self.value)
            }
            // Complex operation: n sequential multiplications, charged at
            // the per-multiplication JVM cost.
            "mulN" => {
                let (x, n): (f64, u32) = dec(args)?;
                self.value = mul_n(self.value, x, n);
                Effects::value_with_cost(&self.value, costs::SIMPLE_OP + costs::PER_MULT * n)
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn save(&self) -> Vec<u8> {
        // invariant: an f64 always encodes.
        simcore::codec::to_bytes(&self.value).expect("f64 encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.value =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        Ok(())
    }
}

/// `v * x^n`, keeping the magnitude bounded so long benchmark runs do not
/// overflow to infinity (the paper's benchmark is about throughput, not the
/// numeric result).
fn mul_n(v: f64, x: f64, n: u32) -> f64 {
    let mut out = v * x.powi(n.min(64) as i32);
    if !out.is_finite() || out == 0.0 {
        out = 1.0;
    }
    // Renormalize to avoid drifting to inf/0 over millions of ops.
    while out.abs() > 1e100 {
        out /= 1e100;
    }
    while out.abs() < 1e-100 {
        out *= 1e100;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{call, call_fx};
    use super::*;

    #[test]
    fn simple_and_complex_costs() {
        let mut a = Arithmetic::default();
        let fx = call_fx(&mut a, "mul", &2.0f64);
        assert_eq!(fx.cost, costs::SIMPLE_OP);
        let fx = call_fx(&mut a, "mulN", &(1.000001f64, 10_000u32));
        assert_eq!(fx.cost, costs::SIMPLE_OP + costs::PER_MULT * 10_000);
    }

    #[test]
    fn value_updates() {
        let mut a = Arithmetic::default();
        assert_eq!(call::<f64>(&mut a, "get", &()), 1.0);
        assert_eq!(call::<f64>(&mut a, "mul", &3.0f64), 3.0);
        assert_eq!(call::<f64>(&mut a, "mul", &2.0f64), 6.0);
    }

    #[test]
    fn stays_finite_under_extreme_inputs() {
        let mut v = 1.0;
        for _ in 0..1000 {
            v = mul_n(v, 1e50, 64);
            assert!(v.is_finite() && v != 0.0);
        }
        for _ in 0..1000 {
            v = mul_n(v, 1e-50, 64);
            assert!(v.is_finite() && v != 0.0);
        }
    }

    #[test]
    fn save_restore() {
        let mut a = Arithmetic::default();
        let _: f64 = call(&mut a, "mul", &5.0f64);
        let mut b = Arithmetic::default();
        b.restore(&a.save()).expect("restore");
        assert_eq!(a, b);
    }
}
