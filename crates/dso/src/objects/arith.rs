//! The micro-benchmark object of Fig. 2a: an integer-valued register with a
//! cheap operation (one multiplication) and an expensive one (10 k
//! sequential multiplications).
//!
//! Its CPU cost model is what exposes the architectural difference between
//! the DSO layer (multi-worker, disjoint-access parallel) and a
//! single-threaded Redis executing Lua scripts serially.
//!
//! The counter family also includes [`GCounter`], the first [`Mergeable`]
//! object: a grow-only CRDT counter whose per-replica entries reconcile
//! by entrywise max under `ConsistencyMode::CrdtMerge`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use super::{dec, dec_create};
use crate::error::ObjectError as ObjErr;
use crate::object::{costs, CallCtx, Effects, Mergeable, SharedObject};

/// A shared register supporting simple and complex arithmetic updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arithmetic {
    value: f64,
}

impl Default for Arithmetic {
    fn default() -> Self {
        Arithmetic { value: 1.0 }
    }
}

impl Arithmetic {
    /// Registry type name.
    pub const TYPE: &'static str = "Arithmetic";

    /// Factory: creation args are an optional initial value.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let value = dec_create(args, 1.0f64)?;
        Ok(Box::new(Arithmetic { value }))
    }
}

impl SharedObject for Arithmetic {
    fn invoke(&mut self, _call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "get" => Effects::value(&self.value),
            // Simple operation: one multiplication.
            "mul" => {
                let x: f64 = dec(args)?;
                self.value = mul_n(self.value, x, 1);
                Effects::value(&self.value)
            }
            // Complex operation: n sequential multiplications, charged at
            // the per-multiplication JVM cost.
            "mulN" => {
                let (x, n): (f64, u32) = dec(args)?;
                self.value = mul_n(self.value, x, n);
                Effects::value_with_cost(&self.value, costs::SIMPLE_OP + costs::PER_MULT * n)
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn save(&self) -> Vec<u8> {
        // invariant: an f64 always encodes.
        simcore::codec::to_bytes(&self.value).expect("f64 encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.value =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        Ok(())
    }
}

/// A grow-only CRDT counter (G-Counter): one monotone entry per storage
/// node, total value = the sum of all entries.
///
/// `inc` bumps the entry of the *executing* replica
/// ([`CallCtx::node`]), so concurrent increments at different replicas
/// touch disjoint entries and [`Mergeable::merge`] — entrywise max — is
/// commutative, associative, and idempotent. Under
/// [`crate::ConsistencyMode::CrdtMerge`] this is the convergent
/// counterpart of `AtomicLong::incrementAndGet`: writes skip the SMR
/// multicast and replicas reconcile on anti-entropy exchange.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GCounter {
    counts: BTreeMap<u32, u64>,
}

impl GCounter {
    /// Registry type name.
    pub const TYPE: &'static str = "GCounter";

    /// Factory: creation args are an optional initial entry map.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let counts = dec_create(args, BTreeMap::new())?;
        Ok(Box::new(GCounter { counts }))
    }

    /// Total value: the sum of every replica's entry.
    pub fn value(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl SharedObject for GCounter {
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "get" => Effects::value(&self.value()),
            "inc" => {
                let d: u64 = dec(args)?;
                *self.counts.entry(call.node).or_default() += d;
                Effects::value(&self.value())
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        method == "get"
    }

    fn save(&self) -> Vec<u8> {
        // invariant: a BTreeMap of integers always encodes.
        simcore::codec::to_bytes(&self.counts).expect("counter map encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.counts =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        Ok(())
    }

    fn as_mergeable(&mut self) -> Option<&mut dyn Mergeable> {
        Some(self)
    }
}

impl Mergeable for GCounter {
    fn merge(&mut self, other_state: &[u8]) -> Result<(), ObjErr> {
        let other: BTreeMap<u32, u64> =
            simcore::codec::from_bytes(other_state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        for (actor, n) in other {
            let e = self.counts.entry(actor).or_default();
            *e = (*e).max(n);
        }
        Ok(())
    }
}

/// `v * x^n`, keeping the magnitude bounded so long benchmark runs do not
/// overflow to infinity (the paper's benchmark is about throughput, not the
/// numeric result).
fn mul_n(v: f64, x: f64, n: u32) -> f64 {
    let mut out = v * x.powi(n.min(64) as i32);
    if !out.is_finite() || out == 0.0 {
        out = 1.0;
    }
    // Renormalize to avoid drifting to inf/0 over millions of ops.
    while out.abs() > 1e100 {
        out /= 1e100;
    }
    while out.abs() < 1e-100 {
        out *= 1e100;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{call, call_fx};
    use super::*;

    #[test]
    fn simple_and_complex_costs() {
        let mut a = Arithmetic::default();
        let fx = call_fx(&mut a, "mul", &2.0f64);
        assert_eq!(fx.cost, costs::SIMPLE_OP);
        let fx = call_fx(&mut a, "mulN", &(1.000001f64, 10_000u32));
        assert_eq!(fx.cost, costs::SIMPLE_OP + costs::PER_MULT * 10_000);
    }

    #[test]
    fn value_updates() {
        let mut a = Arithmetic::default();
        assert_eq!(call::<f64>(&mut a, "get", &()), 1.0);
        assert_eq!(call::<f64>(&mut a, "mul", &3.0f64), 3.0);
        assert_eq!(call::<f64>(&mut a, "mul", &2.0f64), 6.0);
    }

    #[test]
    fn stays_finite_under_extreme_inputs() {
        let mut v = 1.0;
        for _ in 0..1000 {
            v = mul_n(v, 1e50, 64);
            assert!(v.is_finite() && v != 0.0);
        }
        for _ in 0..1000 {
            v = mul_n(v, 1e-50, 64);
            assert!(v.is_finite() && v != 0.0);
        }
    }

    #[test]
    fn save_restore() {
        let mut a = Arithmetic::default();
        let _: f64 = call(&mut a, "mul", &5.0f64);
        let mut b = Arithmetic::default();
        b.restore(&a.save()).expect("restore");
        assert_eq!(a, b);
    }

    #[test]
    fn gcounter_attributes_incs_to_the_executing_node() {
        use super::super::testutil::call_at_node;
        let mut c = GCounter::default();
        assert_eq!(call_at_node::<u64>(&mut c, "inc", &3u64, 0), 3);
        assert_eq!(call_at_node::<u64>(&mut c, "inc", &2u64, 1), 5);
        assert_eq!(call_at_node::<u64>(&mut c, "inc", &1u64, 0), 6);
        assert_eq!(call::<u64>(&mut c, "get", &()), 6);
        assert!(c.is_readonly("get") && !c.is_readonly("inc"));
    }

    #[test]
    fn gcounter_merge_is_entrywise_max() {
        use super::super::testutil::call_at_node;
        let mut a = GCounter::default();
        let mut b = GCounter::default();
        let _: u64 = call_at_node(&mut a, "inc", &5u64, 0);
        let _: u64 = call_at_node(&mut b, "inc", &3u64, 1);
        // Merging an older copy of yourself is a no-op (idempotent), while
        // disjoint entries sum.
        let a_state = a.save();
        a.as_mergeable().expect("mergeable").merge(&b.save()).expect("merge");
        assert_eq!(a.value(), 8);
        a.as_mergeable().expect("mergeable").merge(&a_state).expect("self merge");
        assert_eq!(a.value(), 8, "re-merging own earlier state must not double-count");
        b.as_mergeable().expect("mergeable").merge(&a.save()).expect("merge");
        assert_eq!(b.value(), 8, "merge converges both replicas");
        assert!(a.as_mergeable().expect("mergeable").merge(&[0xff, 0xfe]).is_err());
    }
}
