//! Linearizable atomic scalars: the workhorses of fine-grained shared
//! state (the π-estimation counter, k-means' iteration counter, …).

use serde::{Deserialize, Serialize};

use super::{dec, dec_create};
use crate::error::ObjectError as ObjErr;
use crate::object::{costs, CallCtx, Effects, SharedObject};

/// A shared 64-bit integer with atomic read-modify-write methods,
/// mirroring `java.util.concurrent.atomic.AtomicLong`.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicLong {
    value: i64,
}

impl AtomicLong {
    /// Registry type name.
    pub const TYPE: &'static str = "AtomicLong";

    /// Factory: creation args are an optional initial value.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let value = dec_create(args, 0i64)?;
        Ok(Box::new(AtomicLong { value }))
    }
}

impl SharedObject for AtomicLong {
    fn invoke(&mut self, _call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "get" => Effects::value(&self.value),
            "set" => {
                self.value = dec(args)?;
                Effects::value(&())
            }
            "addAndGet" => {
                let d: i64 = dec(args)?;
                self.value = self.value.wrapping_add(d);
                Effects::value(&self.value)
            }
            "getAndAdd" => {
                let d: i64 = dec(args)?;
                let old = self.value;
                self.value = self.value.wrapping_add(d);
                Effects::value(&old)
            }
            "incrementAndGet" => {
                self.value = self.value.wrapping_add(1);
                Effects::value(&self.value)
            }
            "decrementAndGet" => {
                self.value = self.value.wrapping_sub(1);
                Effects::value(&self.value)
            }
            "compareAndSet" => {
                let (expect, update): (i64, i64) = dec(args)?;
                let ok = self.value == expect;
                if ok {
                    self.value = update;
                }
                Effects::value(&ok)
            }
            "getAndSet" => {
                let new: i64 = dec(args)?;
                let old = self.value;
                self.value = new;
                Effects::value(&old)
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "get")
    }

    fn save(&self) -> Vec<u8> {
        // invariant: an i64 always encodes.
        simcore::codec::to_bytes(&self.value).expect("i64 encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.value =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        Ok(())
    }
}

/// A shared boolean, mirroring `AtomicBoolean`.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicBoolean {
    value: bool,
}

impl AtomicBoolean {
    /// Registry type name.
    pub const TYPE: &'static str = "AtomicBoolean";

    /// Factory: creation args are an optional initial value.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let value = dec_create(args, false)?;
        Ok(Box::new(AtomicBoolean { value }))
    }
}

impl SharedObject for AtomicBoolean {
    fn invoke(&mut self, _call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "get" => Effects::value(&self.value),
            "set" => {
                self.value = dec(args)?;
                Effects::value(&())
            }
            "compareAndSet" => {
                let (expect, update): (bool, bool) = dec(args)?;
                let ok = self.value == expect;
                if ok {
                    self.value = update;
                }
                Effects::value(&ok)
            }
            "getAndSet" => {
                let new: bool = dec(args)?;
                let old = self.value;
                self.value = new;
                Effects::value(&old)
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "get")
    }

    fn save(&self) -> Vec<u8> {
        // invariant: a bool always encodes.
        simcore::codec::to_bytes(&self.value).expect("bool encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.value =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        Ok(())
    }
}

/// A shared mutable byte array — the 1 KB payload object of the Table 2
/// latency micro-benchmark.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicByteArray {
    data: Vec<u8>,
}

impl AtomicByteArray {
    /// Registry type name.
    pub const TYPE: &'static str = "AtomicByteArray";

    /// Factory: creation args are optional initial contents.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let data = dec_create(args, Vec::new())?;
        Ok(Box::new(AtomicByteArray { data }))
    }
}

impl SharedObject for AtomicByteArray {
    fn invoke(&mut self, _call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "get" => {
                let cost = costs::SIMPLE_OP + costs::PER_BYTE * self.data.len() as u32;
                Effects::value_with_cost(&self.data, cost)
            }
            "set" => {
                self.data = dec(args)?;
                let cost = costs::SIMPLE_OP + costs::PER_BYTE * self.data.len() as u32;
                Effects::value_with_cost(&(), cost)
            }
            "len" => Effects::value(&(self.data.len() as u64)),
            "getByte" => {
                let i: u64 = dec(args)?;
                Effects::value(&self.data.get(i as usize).copied())
            }
            "setByte" => {
                let (i, b): (u64, u8) = dec(args)?;
                let i = i as usize;
                if i >= self.data.len() {
                    return Err(ObjErr::App(format!(
                        "index {i} out of bounds (len {})",
                        self.data.len()
                    )));
                }
                self.data[i] = b;
                Effects::value(&())
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "get" | "len" | "getByte")
    }

    fn save(&self) -> Vec<u8> {
        // invariant: a Vec<u8> always encodes.
        simcore::codec::to_bytes(&self.data).expect("bytes encode")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.data =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::call;
    use super::*;

    #[test]
    fn atomic_long_rmw_methods() {
        let mut o = AtomicLong::default();
        assert_eq!(call::<i64>(&mut o, "get", &()), 0);
        let _: () = call(&mut o, "set", &5i64);
        assert_eq!(call::<i64>(&mut o, "addAndGet", &10i64), 15);
        assert_eq!(call::<i64>(&mut o, "getAndAdd", &1i64), 15);
        assert_eq!(call::<i64>(&mut o, "incrementAndGet", &()), 17);
        assert_eq!(call::<i64>(&mut o, "decrementAndGet", &()), 16);
        assert!(call::<bool>(&mut o, "compareAndSet", &(16i64, 99i64)));
        assert!(!call::<bool>(&mut o, "compareAndSet", &(16i64, 0i64)));
        assert_eq!(call::<i64>(&mut o, "getAndSet", &7i64), 99);
        assert_eq!(call::<i64>(&mut o, "get", &()), 7);
    }

    #[test]
    fn atomic_long_save_restore_and_factory() {
        let mut o = AtomicLong::default();
        let _: () = call(&mut o, "set", &(-3i64));
        let state = o.save();
        let mut o2 = AtomicLong::default();
        o2.restore(&state).expect("restore");
        assert_eq!(call::<i64>(&mut o2, "get", &()), -3);
        let init = simcore::codec::to_bytes(&42i64).expect("encode");
        let mut o3 = AtomicLong::factory(&init).expect("factory");
        assert_eq!(call::<i64>(o3.as_mut(), "get", &()), 42);
    }

    #[test]
    fn atomic_long_unknown_method() {
        let mut o = AtomicLong::default();
        let call_ctx =
            crate::object::CallCtx { ticket: crate::object::Ticket(0), replicated: false, node: 0 };
        let err = o.invoke(&call_ctx, "frobnicate", &[]).unwrap_err();
        assert!(matches!(err, ObjErr::MethodNotFound(_)));
    }

    #[test]
    fn atomic_boolean() {
        let mut o = AtomicBoolean::default();
        assert!(!call::<bool>(&mut o, "get", &()));
        assert!(call::<bool>(&mut o, "compareAndSet", &(false, true)));
        assert!(call::<bool>(&mut o, "get", &()));
        assert!(call::<bool>(&mut o, "getAndSet", &false));
        assert!(!call::<bool>(&mut o, "get", &()));
    }

    #[test]
    fn byte_array_ops_and_bounds() {
        let init = simcore::codec::to_bytes(&vec![1u8, 2, 3]).expect("encode");
        let mut o = AtomicByteArray::factory(&init).expect("factory");
        assert_eq!(call::<u64>(o.as_mut(), "len", &()), 3);
        assert_eq!(call::<Option<u8>>(o.as_mut(), "getByte", &1u64), Some(2));
        assert_eq!(call::<Option<u8>>(o.as_mut(), "getByte", &9u64), None);
        let _: () = call(o.as_mut(), "setByte", &(0u64, 9u8));
        assert_eq!(call::<Vec<u8>>(o.as_mut(), "get", &()), vec![9, 2, 3]);
        let call_ctx =
            crate::object::CallCtx { ticket: crate::object::Ticket(0), replicated: false, node: 0 };
        let args = simcore::codec::to_bytes(&(9u64, 1u8)).expect("encode");
        assert!(o.invoke(&call_ctx, "setByte", &args).is_err());
    }

    #[test]
    fn bad_args_reported() {
        let mut o = AtomicLong::default();
        let call_ctx =
            crate::object::CallCtx { ticket: crate::object::Ticket(0), replicated: false, node: 0 };
        let err = o.invoke(&call_ctx, "set", &[1, 2]).unwrap_err();
        assert!(matches!(err, ObjErr::BadArgs(_)));
    }
}
