//! Shared containers: a list and a string-keyed map over opaque
//! (codec-encoded) element bytes. Typed views live in [`crate::api`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use super::{dec, dec_create};
use crate::error::ObjectError as ObjErr;
use crate::object::{CallCtx, Effects, SharedObject};

/// A shared append-mostly list of opaque elements.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListObject {
    items: Vec<Vec<u8>>,
}

impl ListObject {
    /// Registry type name.
    pub const TYPE: &'static str = "List";

    /// Factory: creation args are optional initial elements.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let items = dec_create(args, Vec::new())?;
        Ok(Box::new(ListObject { items }))
    }
}

impl SharedObject for ListObject {
    fn invoke(&mut self, _call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "add" => {
                let item: Vec<u8> = dec(args)?;
                self.items.push(item);
                Effects::value(&(self.items.len() as u64))
            }
            "get" => {
                let i: u64 = dec(args)?;
                Effects::value(&self.items.get(i as usize).cloned())
            }
            "set" => {
                let (i, item): (u64, Vec<u8>) = dec(args)?;
                let i = i as usize;
                if i >= self.items.len() {
                    return Err(ObjErr::App(format!(
                        "index {i} out of bounds (len {})",
                        self.items.len()
                    )));
                }
                self.items[i] = item;
                Effects::value(&())
            }
            "size" => Effects::value(&(self.items.len() as u64)),
            "clear" => {
                self.items.clear();
                Effects::value(&())
            }
            "toVec" => Effects::value(&self.items),
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "get" | "size" | "toVec")
    }

    fn save(&self) -> Vec<u8> {
        // invariant: a Vec of byte vectors always encodes.
        simcore::codec::to_bytes(&self.items).expect("list encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.items =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        Ok(())
    }
}

/// A shared map with string keys and opaque values.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapObject {
    entries: BTreeMap<String, Vec<u8>>,
}

impl MapObject {
    /// Registry type name.
    pub const TYPE: &'static str = "Map";

    /// Factory: creation args are optional initial entries.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let entries = dec_create(args, BTreeMap::new())?;
        Ok(Box::new(MapObject { entries }))
    }
}

impl SharedObject for MapObject {
    fn invoke(&mut self, _call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "put" => {
                let (k, v): (String, Vec<u8>) = dec(args)?;
                Effects::value(&self.entries.insert(k, v))
            }
            "get" => {
                let k: String = dec(args)?;
                Effects::value(&self.entries.get(&k).cloned())
            }
            "remove" => {
                let k: String = dec(args)?;
                Effects::value(&self.entries.remove(&k))
            }
            "containsKey" => {
                let k: String = dec(args)?;
                Effects::value(&self.entries.contains_key(&k))
            }
            "size" => Effects::value(&(self.entries.len() as u64)),
            "keys" => {
                let keys: Vec<String> = self.entries.keys().cloned().collect();
                Effects::value(&keys)
            }
            "clear" => {
                self.entries.clear();
                Effects::value(&())
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "get" | "containsKey" | "size" | "keys")
    }

    fn save(&self) -> Vec<u8> {
        // invariant: the entry map always encodes.
        simcore::codec::to_bytes(&self.entries).expect("map encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.entries =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::call;
    use super::*;

    #[test]
    fn list_basic_flow() {
        let mut o = ListObject::default();
        assert_eq!(call::<u64>(&mut o, "size", &()), 0);
        assert_eq!(call::<u64>(&mut o, "add", &vec![1u8]), 1);
        assert_eq!(call::<u64>(&mut o, "add", &vec![2u8]), 2);
        assert_eq!(call::<Option<Vec<u8>>>(&mut o, "get", &0u64), Some(vec![1]));
        assert_eq!(call::<Option<Vec<u8>>>(&mut o, "get", &5u64), None);
        let _: () = call(&mut o, "set", &(1u64, vec![9u8]));
        assert_eq!(call::<Vec<Vec<u8>>>(&mut o, "toVec", &()), vec![vec![1u8], vec![9u8]]);
        let _: () = call(&mut o, "clear", &());
        assert_eq!(call::<u64>(&mut o, "size", &()), 0);
    }

    #[test]
    fn list_set_out_of_bounds() {
        let mut o = ListObject::default();
        let cc =
            crate::object::CallCtx { ticket: crate::object::Ticket(0), replicated: false, node: 0 };
        let args = simcore::codec::to_bytes(&(0u64, vec![1u8])).expect("encode");
        assert!(o.invoke(&cc, "set", &args).is_err());
    }

    #[test]
    fn map_basic_flow() {
        let mut o = MapObject::default();
        assert_eq!(call::<Option<Vec<u8>>>(&mut o, "put", &("a".to_string(), vec![1u8])), None);
        assert_eq!(
            call::<Option<Vec<u8>>>(&mut o, "put", &("a".to_string(), vec![2u8])),
            Some(vec![1])
        );
        assert!(call::<bool>(&mut o, "containsKey", &"a".to_string()));
        assert!(!call::<bool>(&mut o, "containsKey", &"b".to_string()));
        assert_eq!(call::<u64>(&mut o, "size", &()), 1);
        assert_eq!(call::<Vec<String>>(&mut o, "keys", &()), vec!["a".to_string()]);
        assert_eq!(call::<Option<Vec<u8>>>(&mut o, "remove", &"a".to_string()), Some(vec![2]));
        assert_eq!(call::<u64>(&mut o, "size", &()), 0);
    }

    #[test]
    fn save_restore_round_trip() {
        let mut o = MapObject::default();
        let _: Option<Vec<u8>> = call(&mut o, "put", &("k".to_string(), vec![7u8]));
        let mut o2 = MapObject::default();
        o2.restore(&o.save()).expect("restore");
        assert_eq!(o, o2);
        let mut l = ListObject::default();
        let _: u64 = call(&mut l, "add", &vec![3u8]);
        let mut l2 = ListObject::default();
        l2.restore(&l.save()).expect("restore");
        assert_eq!(l, l2);
    }
}
