//! The built-in shared-object library (Table 1 of the paper): atomics,
//! containers, a byte array, and server-side synchronization objects.
//!
//! Method names follow the paper's Java flavour (`addAndGet`,
//! `compareAndSet`, `await`, …) so the listings translate one-to-one.

mod arith;
mod atomics;
mod containers;
mod sync;

pub use arith::{Arithmetic, GCounter};
pub use atomics::{AtomicBoolean, AtomicByteArray, AtomicLong};
pub use containers::{ListObject, MapObject};
pub use sync::{CountDownLatch, CyclicBarrier, FutureObject, Semaphore};

use serde::de::DeserializeOwned;

use crate::error::ObjectError;
use crate::object::ObjectRegistry;

/// Decodes method arguments, mapping failures to [`ObjectError::BadArgs`].
pub(crate) fn dec<T: DeserializeOwned>(args: &[u8]) -> Result<T, ObjectError> {
    simcore::codec::from_bytes(args).map_err(|e| ObjectError::BadArgs(e.to_string()))
}

/// Decodes creation arguments: empty input yields the provided default.
pub(crate) fn dec_create<T: DeserializeOwned>(args: &[u8], default: T) -> Result<T, ObjectError> {
    if args.is_empty() {
        Ok(default)
    } else {
        simcore::codec::from_bytes(args).map_err(|e| ObjectError::BadState(e.to_string()))
    }
}

/// Registers every built-in type under its canonical name.
pub fn register_builtins(reg: &mut ObjectRegistry) {
    reg.register(AtomicLong::TYPE, AtomicLong::factory);
    reg.register(AtomicBoolean::TYPE, AtomicBoolean::factory);
    reg.register(AtomicByteArray::TYPE, AtomicByteArray::factory);
    reg.register(ListObject::TYPE, ListObject::factory);
    reg.register(MapObject::TYPE, MapObject::factory);
    reg.register(CyclicBarrier::TYPE, CyclicBarrier::factory);
    reg.register(Semaphore::TYPE, Semaphore::factory);
    reg.register(CountDownLatch::TYPE, CountDownLatch::factory);
    reg.register(FutureObject::TYPE, FutureObject::factory);
    reg.register(Arithmetic::TYPE, Arithmetic::factory);
    // The convergent counter registers as *mergeable*, which is what lets
    // `ConsistencyMode::CrdtMerge` route its writes past the SMR multicast
    // and reconcile replicas by merge on anti-entropy exchange.
    reg.register_mergeable(GCounter::TYPE, GCounter::factory);
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::object::{CallCtx, Effects, Reply, SharedObject, Ticket};

    /// Invokes a method on a raw object and decodes the immediate value.
    pub fn call<R: serde::de::DeserializeOwned>(
        obj: &mut dyn SharedObject,
        method: &str,
        args: &impl serde::Serialize,
    ) -> R {
        match call_fx(obj, method, args).reply {
            Reply::Value(v) => simcore::codec::from_bytes(&v).expect("decode reply"),
            Reply::Park => panic!("unexpected park from {method}"),
        }
    }

    /// Invokes a method and returns the full effects.
    pub fn call_fx(
        obj: &mut dyn SharedObject,
        method: &str,
        args: &impl serde::Serialize,
    ) -> Effects {
        call_fx_ticket(obj, method, args, Ticket(0))
    }

    /// Invokes a method with an explicit ticket (for park/wake tests).
    pub fn call_fx_ticket(
        obj: &mut dyn SharedObject,
        method: &str,
        args: &impl serde::Serialize,
        ticket: Ticket,
    ) -> Effects {
        let call = CallCtx { ticket, replicated: false, node: 0 };
        let bytes = simcore::codec::to_bytes(args).expect("encode args");
        obj.invoke(&call, method, &bytes).expect("invoke ok")
    }

    /// Invokes a method as if executing on storage node `node` (for
    /// per-replica CRDT attribution tests).
    pub fn call_at_node<R: serde::de::DeserializeOwned>(
        obj: &mut dyn SharedObject,
        method: &str,
        args: &impl serde::Serialize,
        node: u32,
    ) -> R {
        let call = CallCtx { ticket: Ticket(0), replicated: false, node };
        let bytes = simcore::codec::to_bytes(args).expect("encode args");
        match obj.invoke(&call, method, &bytes).expect("invoke ok").reply {
            Reply::Value(v) => simcore::codec::from_bytes(&v).expect("decode reply"),
            Reply::Park => panic!("unexpected park from {method}"),
        }
    }

    /// Decodes a wake payload.
    pub fn wake_value<R: serde::de::DeserializeOwned>(bytes: &[u8]) -> R {
        simcore::codec::from_bytes(bytes).expect("decode wake")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_register_all_types() {
        let reg = ObjectRegistry::with_builtins();
        for t in [
            "AtomicLong",
            "AtomicBoolean",
            "AtomicByteArray",
            "List",
            "Map",
            "CyclicBarrier",
            "Semaphore",
            "CountDownLatch",
            "Future",
            "Arithmetic",
            "GCounter",
        ] {
            assert!(reg.contains(t), "missing builtin {t}");
            assert!(reg.create(t, &[]).is_ok(), "default-create {t}");
        }
        assert!(reg.is_mergeable("GCounter"), "the CRDT counter registers as mergeable");
        assert!(!reg.is_mergeable("AtomicLong"), "plain builtins stay last-writer-wins");
    }
}
