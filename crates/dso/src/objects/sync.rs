//! Server-side synchronization objects (§3.1, Table 1): cyclic barrier,
//! semaphore, count-down latch and future.
//!
//! Unlike polling-based approaches over S3 or SQS (Fig. 6), these block the
//! *call* on the server: a method may park its caller and a later
//! invocation completes it, so waiters are released by a push the moment
//! the condition holds. Per the paper (footnote 2), synchronization
//! objects are ephemeral and never replicated.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use super::{dec, dec_create};
use crate::error::ObjectError as ObjErr;
use crate::object::{CallCtx, Effects, SharedObject, Ticket};

/// A reusable barrier for a fixed number of parties, mirroring
/// `java.util.concurrent.CyclicBarrier`.
///
/// `await` parks each caller until the last party arrives; everyone is then
/// released with the generation number, and the barrier resets.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct CyclicBarrier {
    parties: u32,
    generation: u64,
    #[serde(skip)]
    waiting: Vec<Ticket>,
}

impl CyclicBarrier {
    /// Registry type name.
    pub const TYPE: &'static str = "CyclicBarrier";

    /// Factory: creation args are the number of parties.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let parties = dec_create(args, 0u32)?;
        Ok(Box::new(CyclicBarrier { parties, generation: 0, waiting: Vec::new() }))
    }
}

impl SharedObject for CyclicBarrier {
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "await" => {
                let () = dec(args)?;
                if self.parties == 0 {
                    return Err(ObjErr::App("barrier has zero parties".to_string()));
                }
                if (self.waiting.len() as u32) + 1 == self.parties {
                    // Last arrival: release the whole generation.
                    let gen = self.generation;
                    self.generation += 1;
                    let waiters = std::mem::take(&mut self.waiting);
                    let mut fx = Effects::value(&gen)?;
                    for t in waiters {
                        fx = fx.wake(t, &gen)?;
                    }
                    Ok(fx)
                } else {
                    self.waiting.push(call.ticket);
                    Ok(Effects::park())
                }
            }
            "getParties" => Effects::value(&self.parties),
            "getNumberWaiting" => Effects::value(&(self.waiting.len() as u32)),
            "getGeneration" => Effects::value(&self.generation),
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "getParties" | "getNumberWaiting" | "getGeneration")
    }

    fn save(&self) -> Vec<u8> {
        // Waiting tickets are node-local and meaningless elsewhere.
        // invariant: a (u32, u64) pair always encodes.
        simcore::codec::to_bytes(&(self.parties, self.generation)).expect("barrier encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        let (parties, generation): (u32, u64) =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        self.parties = parties;
        self.generation = generation;
        self.waiting.clear();
        Ok(())
    }
}

/// A counting semaphore, mirroring `java.util.concurrent.Semaphore`.
/// Waiters are granted permits in FIFO order.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Semaphore {
    permits: i64,
    #[serde(skip)]
    queue: VecDeque<(Ticket, i64)>,
}

impl Semaphore {
    /// Registry type name.
    pub const TYPE: &'static str = "Semaphore";

    /// Factory: creation args are the initial permit count.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let permits = dec_create(args, 0i64)?;
        Ok(Box::new(Semaphore { permits, queue: VecDeque::new() }))
    }

    fn drain(&mut self, mut fx: Effects) -> Result<Effects, ObjErr> {
        while let Some(&(t, n)) = self.queue.front() {
            if self.permits < n {
                break;
            }
            self.permits -= n;
            self.queue.pop_front();
            fx = fx.wake(t, &())?;
        }
        Ok(fx)
    }
}

impl SharedObject for Semaphore {
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "acquire" => {
                let n: i64 = dec(args)?;
                if n <= 0 {
                    return Err(ObjErr::BadArgs("acquire needs n > 0".to_string()));
                }
                if self.queue.is_empty() && self.permits >= n {
                    self.permits -= n;
                    Effects::value(&())
                } else {
                    self.queue.push_back((call.ticket, n));
                    Ok(Effects::park())
                }
            }
            "tryAcquire" => {
                let n: i64 = dec(args)?;
                let ok = self.queue.is_empty() && self.permits >= n;
                if ok {
                    self.permits -= n;
                }
                Effects::value(&ok)
            }
            "release" => {
                let n: i64 = dec(args)?;
                self.permits += n;
                let fx = Effects::value(&())?;
                self.drain(fx)
            }
            "availablePermits" => Effects::value(&self.permits),
            "getQueueLength" => Effects::value(&(self.queue.len() as u64)),
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "availablePermits" | "getQueueLength")
    }

    fn save(&self) -> Vec<u8> {
        // invariant: an i64 always encodes.
        simcore::codec::to_bytes(&self.permits).expect("semaphore encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.permits =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        self.queue.clear();
        Ok(())
    }
}

/// A one-shot count-down latch, mirroring `CountDownLatch`.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct CountDownLatch {
    count: u64,
    #[serde(skip)]
    waiting: Vec<Ticket>,
}

impl CountDownLatch {
    /// Registry type name.
    pub const TYPE: &'static str = "CountDownLatch";

    /// Factory: creation args are the initial count.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let count = dec_create(args, 0u64)?;
        Ok(Box::new(CountDownLatch { count, waiting: Vec::new() }))
    }
}

impl SharedObject for CountDownLatch {
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "await" => {
                let () = dec(args)?;
                if self.count == 0 {
                    Effects::value(&())
                } else {
                    self.waiting.push(call.ticket);
                    Ok(Effects::park())
                }
            }
            "countDown" => {
                let () = dec(args)?;
                self.count = self.count.saturating_sub(1);
                let mut fx = Effects::value(&self.count)?;
                if self.count == 0 {
                    for t in std::mem::take(&mut self.waiting) {
                        fx = fx.wake(t, &())?;
                    }
                }
                Ok(fx)
            }
            "getCount" => Effects::value(&self.count),
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "getCount")
    }

    fn save(&self) -> Vec<u8> {
        // invariant: a u64 always encodes.
        simcore::codec::to_bytes(&self.count).expect("latch encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.count =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        self.waiting.clear();
        Ok(())
    }
}

/// A write-once future: `get` blocks until `set` provides the value — the
/// primitive behind the map-phase synchronization of Fig. 6.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FutureObject {
    value: Option<Vec<u8>>,
    #[serde(skip)]
    waiting: Vec<Ticket>,
}

impl FutureObject {
    /// Registry type name.
    pub const TYPE: &'static str = "Future";

    /// Factory: creation args must be empty (futures start unset).
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjErr> {
        let value = dec_create(args, None)?;
        Ok(Box::new(FutureObject { value, waiting: Vec::new() }))
    }

    fn raw_value_effects(bytes: Vec<u8>) -> Effects {
        Effects {
            reply: crate::object::Reply::Value(bytes),
            cost: crate::object::costs::SIMPLE_OP,
            wakes: Vec::new(),
        }
    }
}

impl SharedObject for FutureObject {
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "get" => match &self.value {
                Some(v) => Ok(Self::raw_value_effects(v.clone())),
                None => {
                    self.waiting.push(call.ticket);
                    Ok(Effects::park())
                }
            },
            "set" => {
                let v: Vec<u8> = dec(args)?;
                if self.value.is_some() {
                    return Effects::value(&false);
                }
                self.value = Some(v.clone());
                let mut fx = Effects::value(&true)?;
                for t in std::mem::take(&mut self.waiting) {
                    // Wake with the raw encoded value so getters decode T.
                    fx.wakes.push((t, v.clone()));
                }
                Ok(fx)
            }
            "isDone" => Effects::value(&self.value.is_some()),
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "isDone")
    }

    fn save(&self) -> Vec<u8> {
        // invariant: an Option<Vec<u8>> always encodes.
        simcore::codec::to_bytes(&self.value).expect("future encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjErr> {
        self.value =
            simcore::codec::from_bytes(state).map_err(|e| ObjErr::BadState(e.to_string()))?;
        self.waiting.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{call, call_fx_ticket, wake_value};
    use super::*;
    use crate::object::Reply;

    fn t(i: u64) -> Ticket {
        Ticket(i)
    }

    #[test]
    fn barrier_parks_then_releases_all() {
        let args = simcore::codec::to_bytes(&3u32).expect("encode");
        let mut b = CyclicBarrier::factory(&args).expect("factory");
        let fx1 = call_fx_ticket(b.as_mut(), "await", &(), t(1));
        assert!(matches!(fx1.reply, Reply::Park));
        let fx2 = call_fx_ticket(b.as_mut(), "await", &(), t(2));
        assert!(matches!(fx2.reply, Reply::Park));
        assert_eq!(call::<u32>(b.as_mut(), "getNumberWaiting", &()), 2);
        let fx3 = call_fx_ticket(b.as_mut(), "await", &(), t(3));
        match fx3.reply {
            Reply::Value(v) => assert_eq!(wake_value::<u64>(&v), 0),
            Reply::Park => panic!("last arrival must not park"),
        }
        assert_eq!(fx3.wakes.len(), 2);
        for (_, v) in &fx3.wakes {
            assert_eq!(wake_value::<u64>(v), 0);
        }
        // Reusable: next generation.
        let fx4 = call_fx_ticket(b.as_mut(), "await", &(), t(4));
        assert!(matches!(fx4.reply, Reply::Park));
        assert_eq!(call::<u32>(b.as_mut(), "getNumberWaiting", &()), 1);
    }

    #[test]
    fn barrier_zero_parties_rejected() {
        let mut b = CyclicBarrier::default();
        let cc = CallCtx { ticket: t(0), replicated: false, node: 0 };
        let args = simcore::codec::to_bytes(&()).expect("encode");
        assert!(b.invoke(&cc, "await", &args).is_err());
    }

    #[test]
    fn semaphore_fifo_and_permits() {
        let args = simcore::codec::to_bytes(&2i64).expect("encode");
        let mut s = Semaphore::factory(&args).expect("factory");
        let fx = call_fx_ticket(s.as_mut(), "acquire", &1i64, t(1));
        assert!(matches!(fx.reply, Reply::Value(_)));
        assert_eq!(call::<i64>(s.as_mut(), "availablePermits", &()), 1);
        // Wants 2, only 1 left: parks.
        let fx = call_fx_ticket(s.as_mut(), "acquire", &2i64, t(2));
        assert!(matches!(fx.reply, Reply::Park));
        // FIFO: a later small request must not jump the queue.
        let fx = call_fx_ticket(s.as_mut(), "acquire", &1i64, t(3));
        assert!(matches!(fx.reply, Reply::Park));
        assert!(!call::<bool>(s.as_mut(), "tryAcquire", &1i64));
        // Release 1: t2 (needs 2) gets both, t3 still waits.
        let fx = call_fx_ticket(s.as_mut(), "release", &1i64, t(4));
        assert_eq!(fx.wakes.len(), 1);
        assert_eq!(fx.wakes[0].0, t(2));
        assert_eq!(call::<i64>(s.as_mut(), "availablePermits", &()), 0);
        // Release 1 more: t3 proceeds.
        let fx = call_fx_ticket(s.as_mut(), "release", &1i64, t(5));
        assert_eq!(fx.wakes.len(), 1);
        assert_eq!(fx.wakes[0].0, t(3));
    }

    #[test]
    fn latch_counts_down_and_releases() {
        let args = simcore::codec::to_bytes(&2u64).expect("encode");
        let mut l = CountDownLatch::factory(&args).expect("factory");
        let fx = call_fx_ticket(l.as_mut(), "await", &(), t(1));
        assert!(matches!(fx.reply, Reply::Park));
        let fx = call_fx_ticket(l.as_mut(), "countDown", &(), t(2));
        assert!(fx.wakes.is_empty());
        let fx = call_fx_ticket(l.as_mut(), "countDown", &(), t(3));
        assert_eq!(fx.wakes.len(), 1);
        // Await after release returns immediately.
        let fx = call_fx_ticket(l.as_mut(), "await", &(), t(4));
        assert!(matches!(fx.reply, Reply::Value(_)));
    }

    #[test]
    fn future_set_wakes_getters_with_value() {
        let mut f = FutureObject::default();
        assert!(!call::<bool>(&mut f, "isDone", &()));
        let fx = call_fx_ticket(&mut f, "get", &(), t(1));
        assert!(matches!(fx.reply, Reply::Park));
        let payload = simcore::codec::to_bytes(&1234u32).expect("encode");
        let fx = call_fx_ticket(&mut f, "set", &payload, t(2));
        match fx.reply {
            Reply::Value(v) => assert!(wake_value::<bool>(&v)),
            Reply::Park => panic!("set must not park"),
        }
        assert_eq!(fx.wakes.len(), 1);
        assert_eq!(wake_value::<u32>(&fx.wakes[0].1), 1234);
        // Second set is rejected; get returns immediately.
        let fx = call_fx_ticket(&mut f, "set", &payload, t(3));
        match fx.reply {
            Reply::Value(v) => assert!(!wake_value::<bool>(&v)),
            Reply::Park => panic!("set must not park"),
        }
        let fx = call_fx_ticket(&mut f, "get", &(), t(4));
        match fx.reply {
            Reply::Value(v) => assert_eq!(wake_value::<u32>(&v), 1234),
            Reply::Park => panic!("get after set must not park"),
        }
    }

    #[test]
    fn restore_clears_waiters() {
        let args = simcore::codec::to_bytes(&3u32).expect("encode");
        let mut b = CyclicBarrier::factory(&args).expect("factory");
        let _ = call_fx_ticket(b.as_mut(), "await", &(), t(1));
        let state = b.save();
        let mut b2 = CyclicBarrier::default();
        b2.restore(&state).expect("restore");
        assert_eq!(call::<u32>(&mut b2, "getParties", &()), 3);
        assert_eq!(call::<u32>(&mut b2, "getNumberWaiting", &()), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::object::Reply;
    use proptest::prelude::*;

    // Replays a random acquire/release schedule against the semaphore and
    // checks the safety invariants: the permit ledger always balances,
    // waiters are served FIFO, and a parked head never fits in the
    // available permits.
    proptest! {
        #[test]
        fn semaphore_never_overcommits(
            initial in 0i64..5,
            script in proptest::collection::vec((0u8..2, 1i64..4), 1..40),
        ) {
            let args = simcore::codec::to_bytes(&initial).expect("encode");
            let mut sem = Semaphore::factory(&args).expect("factory");
            let mut outstanding = 0i64; // permits currently held
            let mut released = 0i64; // permits released so far
            let mut parked: Vec<(Ticket, i64)> = Vec::new();
            let cc = |t: u64| CallCtx { ticket: Ticket(t), replicated: false, node: 0 };
            for (t, (op, n)) in (1u64..).zip(script) {
                if op == 0 {
                    // acquire(n)
                    let a = simcore::codec::to_bytes(&n).expect("encode");
                    let fx = sem.invoke(&cc(t), "acquire", &a).expect("invoke");
                    match fx.reply {
                        Reply::Value(_) => outstanding += n,
                        Reply::Park => parked.push((Ticket(t), n)),
                    }
                    prop_assert!(fx.wakes.is_empty(), "acquire never wakes others");
                } else {
                    // release(n)
                    let a = simcore::codec::to_bytes(&n).expect("encode");
                    let fx = sem.invoke(&cc(t), "release", &a).expect("invoke");
                    released += n;
                    for (woken, _) in &fx.wakes {
                        let pos = parked.iter().position(|(pt, _)| pt == woken)
                            .expect("woken ticket was parked");
                        // FIFO: only the head can be woken.
                        prop_assert_eq!(pos, 0, "semaphore must wake FIFO");
                        let (_, need) = parked.remove(0);
                        outstanding += need;
                    }
                }
                // Ledger invariant: held permits never exceed initial + released.
                let a = simcore::codec::to_bytes(&()).expect("encode");
                let fx = sem.invoke(&cc(0), "availablePermits", &a).expect("invoke");
                if let Reply::Value(v) = fx.reply {
                    let avail: i64 = simcore::codec::from_bytes(&v).expect("decode");
                    // Ledger: available = initial + released - outstanding
                    // (treating releases as permit donations, as the
                    // semaphore does).
                    prop_assert_eq!(
                        avail,
                        initial + released - outstanding,
                        "permit ledger out of balance"
                    );
                    // A parked head must never fit in the available permits.
                    if let Some((_, need)) = parked.first() {
                        prop_assert!(avail < *need, "parked head must not fit: avail={avail} need={need}");
                    }
                }
            }
        }

        #[test]
        fn latch_releases_exactly_once_all_waiters(
            count in 1u64..6,
            waiters in 1u64..8,
        ) {
            let args = simcore::codec::to_bytes(&count).expect("encode");
            let mut latch = CountDownLatch::factory(&args).expect("factory");
            let cc = |t: u64| CallCtx { ticket: Ticket(t), replicated: false, node: 0 };
            let unit = simcore::codec::to_bytes(&()).expect("encode");
            for w in 0..waiters {
                let fx = latch.invoke(&cc(100 + w), "await", &unit).expect("invoke");
                prop_assert!(matches!(fx.reply, Reply::Park));
            }
            let mut woken = 0;
            for i in 0..count {
                let fx = latch.invoke(&cc(i), "countDown", &unit).expect("invoke");
                woken += fx.wakes.len();
                if i + 1 < count {
                    prop_assert_eq!(fx.wakes.len(), 0, "early release");
                }
            }
            prop_assert_eq!(woken as u64, waiters, "every waiter released exactly once");
            // Late await returns immediately.
            let fx = latch.invoke(&cc(999), "await", &unit).expect("invoke");
            prop_assert!(matches!(fx.reply, Reply::Value(_)));
        }
    }
}
