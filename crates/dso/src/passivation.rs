//! Passivation: marshalling shared objects out to stable (object) storage
//! and restoring them later — §4.1's "they reside in memory … and can be
//! passivated to stable storage using standard mechanisms (marshalling)".
//!
//! Passivation snapshots every storage node, deduplicates replicas by
//! version, and writes one object per key under a prefix in the object
//! store. Restoration replays the marshalled states through the regular
//! invocation path (`__restore`), so placement and replication follow the
//! *current* ring — a passivated dataset can be restored into a cluster
//! of any size.

use std::collections::HashMap;

use simcore::Ctx;

use crate::client::DsoClient;
use crate::error::DsoError;
use crate::object::ObjectRef;
use crate::protocol::{ObjectRecord, SnapshotAll, SnapshotReply};

/// Result of a passivation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassivationReport {
    /// Objects written to the store.
    pub objects: usize,
    /// Total marshalled bytes.
    pub bytes: usize,
    /// Storage nodes that contributed snapshots.
    pub nodes: usize,
}

fn storage_key(prefix: &str, obj: &ObjectRef) -> String {
    format!("{prefix}/{}/{}", obj.type_name(), obj.key())
}

/// Writes every object in the cluster to `s3` under `prefix`.
///
/// # Errors
///
/// Propagates [`DsoError::Timeout`] if a storage node does not answer its
/// snapshot request.
pub fn passivate(
    ctx: &mut Ctx,
    cli: &mut DsoClient,
    s3: &cloudstore::S3Handle,
    prefix: &str,
) -> Result<PassivationReport, DsoError> {
    let view = cli.refresh_view(ctx);
    let timeout = cli.config().call_timeout * 4;
    let lat_model = cli.config().client_net;
    let mut best: HashMap<ObjectRef, ObjectRecord> = HashMap::new();
    let mut nodes = 0;
    for (_, addr) in &view.members {
        let lat = lat_model.sample(ctx.rng());
        let reply: Option<SnapshotReply> = ctx.call_timeout(*addr, SnapshotAll, lat, timeout);
        let SnapshotReply(records) = reply.ok_or(DsoError::Timeout)?;
        nodes += 1;
        for r in records {
            match best.get(&r.obj) {
                Some(existing) if existing.version >= r.version => {}
                _ => {
                    best.insert(r.obj.clone(), r);
                }
            }
        }
    }
    let mut objects: Vec<&ObjectRecord> = best.values().collect();
    objects.sort_by(|a, b| a.obj.cmp(&b.obj));
    let mut bytes = 0;
    for r in &objects {
        // invariant: ObjectRecord derives Serialize and holds only plain
        // data, so encoding cannot fail.
        let payload = simcore::codec::to_bytes(*r).expect("record encodes");
        bytes += payload.len();
        s3.put(ctx, &storage_key(prefix, &r.obj), payload);
    }
    Ok(PassivationReport { objects: objects.len(), bytes, nodes })
}

/// Restores every object stored under `prefix` into the cluster.
///
/// Objects are re-placed under the cluster's current view; versions guard
/// against downgrading objects that were mutated after the snapshot.
///
/// # Errors
///
/// Propagates client errors; fails on undecodable records.
pub fn restore(
    ctx: &mut Ctx,
    cli: &mut DsoClient,
    s3: &cloudstore::S3Handle,
    prefix: &str,
) -> Result<usize, DsoError> {
    let list_prefix = format!("{prefix}/");
    let keys = s3.list(ctx, &list_prefix);
    let mut restored = 0;
    for key in keys {
        let payload = s3.get(ctx, &key).ok_or(DsoError::Retry)?;
        let record: ObjectRecord = simcore::codec::from_bytes(&payload)
            .map_err(|e| DsoError::Object(crate::error::ObjectError::BadState(e.to_string())))?;
        // invariant: a (Bytes, u64) pair always encodes.
        let args =
            simcore::codec::to_bytes(&(record.state, record.version)).expect("restore args encode");
        cli.invoke(ctx, &record.obj, "__restore", args.into(), record.rf, None, false, false)?;
        restored += 1;
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AtomicLong;
    use crate::{DsoCluster, DsoConfig, ObjectRegistry};
    use cloudstore::{spawn_s3, S3Config};
    use parking_lot::Mutex;
    use simcore::{LatencyModel, Sim};
    use std::sync::Arc;
    use std::time::Duration;

    fn immediate_s3() -> S3Config {
        S3Config { visibility_delay: LatencyModel::fixed(Duration::ZERO), ..S3Config::default() }
    }

    #[test]
    fn passivate_then_restore_into_a_fresh_cluster() {
        let mut sim = Sim::new(51);
        let s3 = spawn_s3(&sim, immediate_s3());
        let a = DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
        let b = DsoCluster::start(&sim, 3, DsoConfig::default(), ObjectRegistry::with_builtins());
        let (ha, hb) = (a.client_handle(), b.client_handle());
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        sim.spawn("operator", move |ctx| {
            let mut ca = ha.connect();
            // Populate cluster A with a mix of plain and replicated objects.
            for i in 0..12 {
                let c = if i % 2 == 0 {
                    AtomicLong::new(&format!("c{i}"))
                } else {
                    AtomicLong::persistent(&format!("c{i}"), 0, 2)
                };
                c.set(ctx, &mut ca, 100 + i as i64).expect("write");
            }
            let report = passivate(ctx, &mut ca, &s3, "backup").expect("passivate");
            assert_eq!(report.objects, 12);
            assert_eq!(report.nodes, 2);
            assert!(report.bytes > 0);
            // Restore into the *differently sized* cluster B.
            let mut cb = hb.connect();
            let restored = restore(ctx, &mut cb, &s3, "backup").expect("restore");
            assert_eq!(restored, 12);
            for i in 0..12 {
                let c = if i % 2 == 0 {
                    AtomicLong::new(&format!("c{i}"))
                } else {
                    AtomicLong::persistent(&format!("c{i}"), 0, 2)
                };
                assert_eq!(c.get(ctx, &mut cb).expect("read"), 100 + i as i64, "c{i}");
            }
            *ok2.lock() = true;
        });
        sim.run_until_idle().expect_quiescent();
        assert!(*ok.lock());
    }

    #[test]
    fn restore_does_not_downgrade_newer_objects() {
        let mut sim = Sim::new(52);
        let s3 = spawn_s3(&sim, immediate_s3());
        let cluster =
            DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        sim.spawn("operator", move |ctx| {
            let mut cli = handle.connect();
            let c = AtomicLong::new("x");
            c.set(ctx, &mut cli, 1).expect("write");
            passivate(ctx, &mut cli, &s3, "snap").expect("passivate");
            // Mutate after the snapshot: many ops push the version ahead.
            for _ in 0..5 {
                c.increment_and_get(ctx, &mut cli).expect("bump");
            }
            let before = c.get(ctx, &mut cli).expect("read");
            restore(ctx, &mut cli, &s3, "snap").expect("restore");
            let after = c.get(ctx, &mut cli).expect("read");
            assert_eq!(after, before, "restore must not roll back newer state");
            *ok2.lock() = true;
        });
        sim.run_until_idle().expect_quiescent();
        assert!(*ok.lock());
    }

    #[test]
    fn replicas_are_deduplicated() {
        let mut sim = Sim::new(53);
        let s3 = spawn_s3(&sim, immediate_s3());
        let cluster =
            DsoCluster::start(&sim, 3, DsoConfig::default(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        sim.spawn("operator", move |ctx| {
            let mut cli = handle.connect();
            // rf = 3 on a 3-node cluster: every node holds a copy.
            let c = AtomicLong::persistent("tripled", 0, 3);
            c.set(ctx, &mut cli, 9).expect("write");
            let report = passivate(ctx, &mut cli, &s3, "dedupe").expect("passivate");
            assert_eq!(report.objects, 1, "three replicas collapse to one record");
            assert_eq!(report.nodes, 3);
            *ok2.lock() = true;
        });
        sim.run_until_idle().expect_quiescent();
        assert!(*ok.lock());
    }
}
