//! Passivation: marshalling shared objects out to stable (object) storage
//! and restoring them later — §4.1's "they reside in memory … and can be
//! passivated to stable storage using standard mechanisms (marshalling)".
//!
//! This module predates [`crate::durability`] and is now a thin
//! compatibility shim over it: [`passivate`] writes a single checkpoint
//! blob (deduplicated by version across replicas) and [`restore`] runs a
//! one-shot recovery, replaying the marshalled states through the regular
//! invocation path (`__restore`) so placement and replication follow the
//! *current* ring — a passivated dataset can still be restored into a
//! cluster of any size. New code should use [`crate::checkpoint`] /
//! [`crate::recover_into`] (or [`crate::DsoCluster::recover_from`] after a
//! full-cluster crash) directly: they add WAL overlay, generation
//! handling, LIST read repair, and garbage collection that this shim does
//! not expose.

use simcore::Ctx;

use crate::client::DsoClient;
use crate::config::DurabilityConfig;
use crate::durability::DurabilityStore;
use crate::error::DsoError;

/// Result of a passivation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassivationReport {
    /// Objects written to the store.
    pub objects: usize,
    /// Total marshalled bytes.
    pub bytes: usize,
    /// Storage nodes that contributed snapshots.
    pub nodes: usize,
}

fn shim_config(s3: &cloudstore::S3Handle, prefix: &str) -> DurabilityConfig {
    DurabilityConfig::new(DurabilityStore::new(s3.clone(), prefix))
}

/// Writes every object in the cluster to `s3` under `prefix` as one
/// checkpoint blob.
///
/// # Errors
///
/// Propagates [`DsoError::Timeout`] if a storage node does not answer its
/// snapshot request.
#[deprecated(note = "use dso::checkpoint with a DurabilityConfig instead")]
pub fn passivate(
    ctx: &mut Ctx,
    cli: &mut DsoClient,
    s3: &cloudstore::S3Handle,
    prefix: &str,
) -> Result<PassivationReport, DsoError> {
    let report = crate::durability::checkpoint(ctx, cli, &shim_config(s3, prefix))?;
    Ok(PassivationReport { objects: report.objects, bytes: report.bytes, nodes: report.nodes })
}

/// Restores every object passivated under `prefix` into the cluster.
///
/// Objects are re-placed under the cluster's current view; versions guard
/// against downgrading objects that were mutated after the snapshot.
///
/// # Errors
///
/// Propagates client errors; fails on undecodable records.
#[deprecated(note = "use dso::recover_into or DsoCluster::recover_from instead")]
pub fn restore(
    ctx: &mut Ctx,
    cli: &mut DsoClient,
    s3: &cloudstore::S3Handle,
    prefix: &str,
) -> Result<usize, DsoError> {
    crate::durability::recover_into(ctx, cli, &shim_config(s3, prefix)).map(|r| r.objects)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::api::AtomicLong;
    use crate::{DsoCluster, DsoConfig, ObjectRegistry};
    use cloudstore::{spawn_s3, S3Config};
    use parking_lot::Mutex;
    use simcore::{LatencyModel, Sim};
    use std::sync::Arc;
    use std::time::Duration;

    fn immediate_s3() -> S3Config {
        S3Config { visibility_delay: LatencyModel::fixed(Duration::ZERO), ..S3Config::default() }
    }

    #[test]
    fn passivate_then_restore_into_a_fresh_cluster() {
        let mut sim = Sim::new(51);
        let s3 = spawn_s3(&sim, immediate_s3());
        let a = DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
        let b = DsoCluster::start(&sim, 3, DsoConfig::default(), ObjectRegistry::with_builtins());
        let (ha, hb) = (a.client_handle(), b.client_handle());
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        sim.spawn("operator", move |ctx| {
            let mut ca = ha.connect();
            // Populate cluster A with a mix of plain and replicated objects.
            for i in 0..12 {
                let c = if i % 2 == 0 {
                    AtomicLong::new(&format!("c{i}"))
                } else {
                    AtomicLong::persistent(&format!("c{i}"), 0, 2)
                };
                c.set(ctx, &mut ca, 100 + i as i64).expect("write");
            }
            let report = passivate(ctx, &mut ca, &s3, "backup").expect("passivate");
            assert_eq!(report.objects, 12);
            assert_eq!(report.nodes, 2);
            assert!(report.bytes > 0);
            // Restore into the *differently sized* cluster B.
            let mut cb = hb.connect();
            let restored = restore(ctx, &mut cb, &s3, "backup").expect("restore");
            assert_eq!(restored, 12);
            for i in 0..12 {
                let c = if i % 2 == 0 {
                    AtomicLong::new(&format!("c{i}"))
                } else {
                    AtomicLong::persistent(&format!("c{i}"), 0, 2)
                };
                assert_eq!(c.get(ctx, &mut cb).expect("read"), 100 + i as i64, "c{i}");
            }
            *ok2.lock() = true;
        });
        sim.run_until_idle().expect_quiescent();
        assert!(*ok.lock());
    }

    #[test]
    fn restore_does_not_downgrade_newer_objects() {
        let mut sim = Sim::new(52);
        let s3 = spawn_s3(&sim, immediate_s3());
        let cluster =
            DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        sim.spawn("operator", move |ctx| {
            let mut cli = handle.connect();
            let c = AtomicLong::new("x");
            c.set(ctx, &mut cli, 1).expect("write");
            passivate(ctx, &mut cli, &s3, "snap").expect("passivate");
            // Mutate after the snapshot: many ops push the version ahead.
            for _ in 0..5 {
                c.increment_and_get(ctx, &mut cli).expect("bump");
            }
            let before = c.get(ctx, &mut cli).expect("read");
            restore(ctx, &mut cli, &s3, "snap").expect("restore");
            let after = c.get(ctx, &mut cli).expect("read");
            assert_eq!(after, before, "restore must not roll back newer state");
            *ok2.lock() = true;
        });
        sim.run_until_idle().expect_quiescent();
        assert!(*ok.lock());
    }

    #[test]
    fn replicas_are_deduplicated() {
        let mut sim = Sim::new(53);
        let s3 = spawn_s3(&sim, immediate_s3());
        let cluster =
            DsoCluster::start(&sim, 3, DsoConfig::default(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let ok = Arc::new(Mutex::new(false));
        let ok2 = ok.clone();
        sim.spawn("operator", move |ctx| {
            let mut cli = handle.connect();
            // rf = 3 on a 3-node cluster: every node holds a copy.
            let c = AtomicLong::persistent("tripled", 0, 3);
            c.set(ctx, &mut cli, 9).expect("write");
            let report = passivate(ctx, &mut cli, &s3, "dedupe").expect("passivate");
            assert_eq!(report.objects, 1, "three replicas collapse to one record");
            assert_eq!(report.nodes, 3);
            *ok2.lock() = true;
        });
        sim.run_until_idle().expect_quiescent();
        assert!(*ok.lock());
    }
}
