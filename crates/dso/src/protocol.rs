//! Wire protocol of the DSO layer: node ids, views, client requests and
//! server-to-server messages.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use simcore::{Addr, SpanId};

use crate::error::ObjectError;
use crate::intern::MethodName;
use crate::object::ObjectRef;
use crate::skeen::{Mid, SkeenMsg, Stamp};

/// Identifier of a DSO storage node.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A totally-ordered membership view (view synchrony, §4.1).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct View {
    /// Monotonically increasing view id.
    pub id: u64,
    /// Member nodes with their mailbox addresses, sorted by node id.
    pub members: Vec<(NodeId, Addr)>,
}

impl View {
    /// An empty pre-initialization view.
    pub fn empty() -> View {
        View { id: 0, members: Vec::new() }
    }

    /// Node ids of the members.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.members.iter().map(|(n, _)| *n).collect()
    }

    /// Address of a member, if present.
    pub fn addr_of(&self, node: NodeId) -> Option<Addr> {
        self.members.iter().find(|(n, _)| *n == node).map(|(_, a)| *a)
    }
}

/// A client's invocation request (also carried inside SMR payloads).
///
/// Cloning is cheap: the method name is interned and the payloads are
/// reference-counted [`Bytes`], so the client constructs the request once
/// and clones it per retry or batch item.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InvokeReq {
    /// Target object.
    pub obj: ObjectRef,
    /// Method name; `"__create"` is reserved for idempotent initialization.
    pub method: MethodName,
    /// Codec-encoded arguments.
    pub args: Bytes,
    /// Replication factor of the object (1 = ephemeral, unreplicated).
    pub rf: u8,
    /// Creation arguments, sent once per client proxy so the object can be
    /// materialized if absent (idempotent).
    pub create: Option<Bytes>,
    /// Declared read-only: the method must not mutate the object. Read-only
    /// requests skip the SMR path on replicated objects and, under
    /// [`crate::ConsistencyMode::ReplicaReads`], may be served by any
    /// replica.
    pub readonly: bool,
    /// Causal dependency piggybacked by the client, `TraceCtx`-style: the
    /// highest Lamport stamp the session has observed (`0` = none, the
    /// value every non-causal policy sends). Mutations are stamped
    /// strictly above it — `max(stored, dep) + 1` — deterministically per
    /// applied write, so SMR replicas assign identical stamps.
    pub dep: u64,
    /// Client-side trace span of this attempt; server-side execution spans
    /// are parented under it ([`SpanId::NONE`] when untraced).
    pub span: SpanId,
}

/// Server's reply to an invocation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InvokeResp {
    /// The method's encoded return value.
    Value {
        /// Encoded return value.
        bytes: Bytes,
        /// The object's version (mutation count) when the method ran; `0`
        /// also for replies without a meaningful version (deferred wakes,
        /// unit replies of maintenance methods). Clients use it for
        /// monotonic reads and cache validation.
        version: u64,
        /// The object's Lamport stamp when the method ran (`0` where
        /// `version` is also meaningless). Under
        /// [`crate::ConsistencyMode::Causal`] the client folds it into
        /// its session frontier and rejects replica reads behind it.
        lamport: u64,
    },
    /// Contacted node is not an owner; the attached view id hints the
    /// client to refresh.
    NotOwner {
        /// Server's current view id.
        view: u64,
    },
    /// Transient failure (object in transfer, SMR aborted by view change).
    Retry,
    /// The node's admission controller shed the request (token bucket
    /// empty or dispatch queue full). Retryable: the client backs off for
    /// at least `retry_after` and tries again, without refreshing the view
    /// (ownership is not in question).
    Overloaded {
        /// Server's hint for the minimum client backoff.
        retry_after: std::time::Duration,
    },
    /// The object rejected the call.
    Error(ObjectError),
}

/// Payload replicated through total-order multicast for persistent objects.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SmrOp {
    /// The original invocation.
    pub req: InvokeReq,
    /// Reply address of the calling client; only the initiating node
    /// responds, the others apply silently.
    pub respond_to: Option<Addr>,
    /// When the operation arrived inside a [`BatchReq`], the item tag the
    /// reply must carry (the reply is then a [`BatchItemResp`]).
    pub respond_tag: Option<u32>,
    /// Trace span of the SMR round, begun by the initiating node when it
    /// multicasts; replicas parent their apply spans under it.
    pub round_span: SpanId,
}

/// A batch of independent invocations for objects homed on one node,
/// shipped as a single message. The server fans the items out to its
/// workers; each item is answered individually as a [`BatchItemResp`]
/// carrying the item's tag, so replies stream back as they complete.
#[derive(Debug, Serialize, Deserialize)]
pub struct BatchReq {
    /// `(tag, operation)` pairs; tags are echoed in the replies.
    pub items: Vec<(u32, InvokeReq)>,
}

/// Reply to one item of a [`BatchReq`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchItemResp {
    /// The tag of the [`BatchReq`] item this answers.
    pub tag: u32,
    /// The item's outcome.
    pub resp: InvokeResp,
}

/// Cheap version probe, answered directly by a node's dispatcher without
/// touching a worker: used by clients to validate cached read results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VersionReq {
    /// The object whose version is asked for.
    pub obj: ObjectRef,
    /// Its replication factor (needed for the ownership check).
    pub rf: u8,
}

/// Reply to a [`VersionReq`]. `None` means the node does not currently
/// store the object (not an owner, or not yet materialized) — clients must
/// treat that as a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionResp(pub Option<u64>);

/// Server-to-server messages.
#[derive(Debug, Serialize, Deserialize)]
pub enum PeerMsg {
    /// A Skeen protocol message carrying an [`SmrOp`].
    Smr {
        /// Sending node.
        from: NodeId,
        /// View id the sender ran in. Messages from another view are
        /// dropped: both sides of a membership change must agree on the
        /// multicast group, otherwise a reset on one side leaves a
        /// never-finalized message blocking the other side's delivery
        /// queue forever.
        epoch: u64,
        /// Protocol message.
        msg: SkeenMsg<SmrOp>,
    },
    /// State transfer of an object during rebalancing.
    Transfer {
        /// Object being moved/copied.
        obj: ObjectRef,
        /// Replication factor recorded at creation.
        rf: u8,
        /// Serialized object state.
        state: Vec<u8>,
        /// Version (applied-operation count) for conflict resolution.
        version: u64,
        /// Lamport stamp travelling with the state, so causal sessions
        /// survive rebalancing.
        lamport: u64,
    },
    /// Anti-entropy exchange under [`crate::ConsistencyMode::CrdtMerge`]:
    /// a replica pushes the full saved state of a [`Mergeable`] object;
    /// the receiver reconciles through [`Mergeable::merge`] (never
    /// last-writer-wins replacement).
    ///
    /// [`Mergeable`]: crate::object::Mergeable
    /// [`Mergeable::merge`]: crate::object::Mergeable::merge
    Merge {
        /// Object being reconciled.
        obj: ObjectRef,
        /// Replication factor recorded at creation.
        rf: u8,
        /// The sender's full saved state.
        state: Vec<u8>,
    },
}

/// Messages understood by the membership coordinator.
#[derive(Debug, Serialize, Deserialize)]
pub enum MemberMsg {
    /// A server announces itself (on start or restart).
    Join {
        /// Its node id.
        node: NodeId,
        /// Its request mailbox.
        addr: Addr,
    },
    /// Periodic liveness signal.
    Heartbeat {
        /// Sending node.
        node: NodeId,
    },
    /// Graceful departure.
    Leave {
        /// Departing node.
        node: NodeId,
    },
}

/// Control-plane request to a storage node: leave the cluster gracefully.
/// The node announces [`MemberMsg::Leave`], waits for the view excluding
/// it, transfers every object it still stores to the new owners, then
/// retires. Contrast with a crash, where state on the node is simply lost
/// (recovered only via replication).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DrainNode;

/// RPC to the coordinator: fetch the current view (used by clients and by
/// servers that fall behind).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GetView;

/// RPC to a storage node: dump every locally-stored object (passivation,
/// §4.1: objects "can be passivated to stable storage using standard
/// mechanisms").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SnapshotAll;

/// One marshalled object in a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectRecord {
    /// The object's reference.
    pub obj: ObjectRef,
    /// Its replication factor.
    pub rf: u8,
    /// Applied-operation count, for conflict resolution.
    pub version: u64,
    /// Marshalled state.
    pub state: Vec<u8>,
}

/// Reply to [`SnapshotAll`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotReply(pub Vec<ObjectRecord>);

/// One entry of a node's write-ahead log: the post-state of an applied
/// mutation, tagged with the version that produced it. A physical redo
/// record rather than a replayable command — installing the state at its
/// version is idempotent and deterministic regardless of the method's
/// blocking/merge semantics, and replicas logging the same SMR apply
/// produce byte-identical records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalRecord {
    /// The mutated object.
    pub obj: ObjectRef,
    /// Its replication factor.
    pub rf: u8,
    /// The method that produced this state (observability only; replay
    /// installs `state` directly and never re-executes the method).
    pub method: MethodName,
    /// The object's version after the mutation.
    pub version: u64,
    /// The object's Lamport stamp after the mutation.
    pub lamport: u64,
    /// Marshalled post-mutation state.
    pub state: Vec<u8>,
}

/// One group-commit batch of [`WalRecord`]s, written to the durability
/// store as a single versioned key
/// (`{prefix}/wal/{gen:08}-{node:08}-{seq:016}`). Sequence numbers are
/// contiguous per `(gen, node)` stream, which is what lets recovery detect
/// a LIST hiding a segment (eventual consistency) as a gap and re-list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalSegment {
    /// Cluster incarnation the segment belongs to (bumped per recovery so
    /// a recovered cluster never overwrites its predecessor's log).
    pub gen: u32,
    /// The node that wrote the segment.
    pub node: NodeId,
    /// Contiguous per-`(gen, node)` sequence number, starting at 1.
    pub seq: u64,
    /// Mutations coalesced into the records below (group commit keeps only
    /// the newest state per object per batch).
    pub coalesced: u64,
    /// The batch, sorted by object reference.
    pub records: Vec<WalRecord>,
}

/// A full-cluster checkpoint blob, written to the durability store as a
/// single key (`{prefix}/ckpt/{gen:08}-{seq:016}`) so the object states
/// and their metadata become visible atomically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointBlob {
    /// Cluster incarnation that took the checkpoint.
    pub gen: u32,
    /// Checkpoint sequence within the incarnation, starting at 1.
    pub seq: u64,
    /// WAL high-water marks observed (via LIST) *before* the snapshot was
    /// taken: `(gen, node, highest segment seq)` per stream. Monotonic
    /// lower bounds — the snapshot state subsumes at least these segments,
    /// and recovery re-LISTs until every floor is satisfied (read repair
    /// against the store's visibility delay).
    pub floors: Vec<(u32, NodeId, u64)>,
    /// Deduplicated object states (newest version per object), sorted by
    /// object reference.
    pub objects: Vec<ObjectRecord>,
}

/// Coordinator's push of a new view to the members.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewUpdate(pub View);

/// Convenience alias re-exported for driver code.
pub type SmrStamp = Stamp;
/// Convenience alias re-exported for driver code.
pub type SmrMid = Mid;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_lookup() {
        let a = Addr::from_raw(1);
        let b = Addr::from_raw(2);
        let v = View { id: 3, members: vec![(NodeId(0), a), (NodeId(2), b)] };
        assert_eq!(v.node_ids(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(v.addr_of(NodeId(2)), Some(b));
        assert_eq!(v.addr_of(NodeId(1)), None);
        assert_eq!(View::empty().id, 0);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(format!("{:?}", NodeId(4)), "n4");
    }
}
