//! The pluggable read-path policy layer: one strategy object per client
//! that decides *where* reads and writes are routed, *which* replies a
//! session may accept, and *how long* cached results may be served without
//! revalidation.
//!
//! Every [`crate::ConsistencyMode`] maps to one [`ReadPolicy`]
//! implementation, built at [`crate::DsoClientHandle::connect`] time by
//! [`policy_for`]. The client core ([`crate::DsoClient`]) is
//! policy-agnostic: it asks the policy for a route, sends the request, and
//! filters the reply through [`ReadPolicy::admit`] — a rejected reply
//! retries at the primary, which is never behind an acknowledged write.
//!
//! The default policies ([`LinearizablePolicy`], [`ReplicaReadsPolicy`])
//! re-express the pre-refactor routing byte-for-byte: same RNG draws, same
//! round-robin arithmetic, same admission rule — pinned by the golden
//! determinism hashes in `tests/kernel_determinism.rs`.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use crate::client::MonotonicReads;
use crate::config::{ConsistencyMode, DsoConfig};
use crate::object::ObjectRef;
use crate::protocol::NodeId;
use crate::ring::Ring;

/// A client-side consistency strategy: routing, admission, dependency
/// piggybacking, and cache-lease policy for one session.
///
/// Implementations are stateful (round-robin counters, causal frontiers)
/// and live for the lifetime of one [`crate::DsoClient`].
pub trait ReadPolicy: fmt::Debug + Send {
    /// The policy's name, used in spans and debug output.
    fn name(&self) -> &'static str;

    /// Picks the node a declared read-only call contacts.
    fn route_read(&mut self, ring: &Ring, obj: &ObjectRef, rf: u8) -> Option<NodeId>;

    /// Picks the node a mutating call contacts. Defaults to the primary;
    /// only convergent policies deviate.
    fn route_write(&mut self, ring: &Ring, obj: &ObjectRef, rf: u8) -> Option<NodeId> {
        let _ = rf;
        ring.primary(obj)
    }

    /// The causal dependency to piggyback on a request
    /// ([`crate::protocol::InvokeReq::dep`]); `0` means none.
    fn dep(&self, obj: &ObjectRef) -> u64 {
        let _ = obj;
        0
    }

    /// Whether a reply carrying `(version, lamport)` is admissible for
    /// this session. Accepting also records the observation; rejecting
    /// makes the client retry at the primary.
    fn admit(
        &mut self,
        monotonic: &mut MonotonicReads,
        obj: &ObjectRef,
        version: u64,
        lamport: u64,
    ) -> bool;

    /// Records the outcome of an acknowledged write through this session.
    fn observe_write(
        &mut self,
        monotonic: &mut MonotonicReads,
        obj: &ObjectRef,
        version: u64,
        lamport: u64,
    ) {
        let _ = lamport;
        monotonic.observe(obj, version);
    }

    /// How long a cached read result may be served without revalidation;
    /// `None` means every cache hit must be version-validated.
    fn lease(&self) -> Option<Duration> {
        None
    }
}

/// Builds the policy for a configuration. Called once per client at
/// connect time.
pub fn policy_for(cfg: &DsoConfig) -> Box<dyn ReadPolicy> {
    match cfg.consistency {
        ConsistencyMode::Linearizable => Box::new(LinearizablePolicy { lease: cfg.cache_lease }),
        ConsistencyMode::ReplicaReads => {
            Box::new(ReplicaReadsPolicy { rr: 0, lease: cfg.cache_lease })
        }
        ConsistencyMode::Causal => {
            Box::new(CausalPolicy { rr: 0, clock: 0, deps: HashMap::new(), lease: cfg.cache_lease })
        }
        ConsistencyMode::BoundedStaleness => {
            Box::new(BoundedStalenessPolicy { lease: cfg.staleness_bound })
        }
        ConsistencyMode::CrdtMerge => Box::new(CrdtMergePolicy { rr: 0, lease: cfg.cache_lease }),
    }
}

/// Round-robin pick over the placement set; increments the counter only
/// when a replica choice was actually made (`rf > 1`), exactly matching
/// the pre-refactor routing arithmetic.
fn round_robin(rr: &mut u64, ring: &Ring, obj: &ObjectRef, rf: u8) -> Option<NodeId> {
    if rf > 1 {
        let placement = ring.placement(obj, rf.max(1));
        let node = if placement.is_empty() {
            None
        } else {
            Some(placement[(*rr % placement.len() as u64) as usize])
        };
        *rr = rr.wrapping_add(1);
        node
    } else {
        ring.primary(obj)
    }
}

/// [`ConsistencyMode::Linearizable`]: every call — read or write — goes to
/// the primary; replies pass through the monotonic-version filter (which
/// the primary trivially satisfies).
#[derive(Debug)]
pub struct LinearizablePolicy {
    lease: Option<Duration>,
}

impl ReadPolicy for LinearizablePolicy {
    fn name(&self) -> &'static str {
        "linearizable"
    }

    fn route_read(&mut self, ring: &Ring, obj: &ObjectRef, _rf: u8) -> Option<NodeId> {
        ring.primary(obj)
    }

    fn admit(
        &mut self,
        monotonic: &mut MonotonicReads,
        obj: &ObjectRef,
        version: u64,
        _lamport: u64,
    ) -> bool {
        monotonic.admit(obj, version)
    }

    fn lease(&self) -> Option<Duration> {
        self.lease
    }
}

/// [`ConsistencyMode::ReplicaReads`]: reads round-robin over the replica
/// group; the monotonic-version filter rejects replies from replicas that
/// trail something this session already observed.
#[derive(Debug)]
pub struct ReplicaReadsPolicy {
    rr: u64,
    lease: Option<Duration>,
}

impl ReadPolicy for ReplicaReadsPolicy {
    fn name(&self) -> &'static str {
        "replica-reads"
    }

    fn route_read(&mut self, ring: &Ring, obj: &ObjectRef, rf: u8) -> Option<NodeId> {
        round_robin(&mut self.rr, ring, obj, rf)
    }

    fn admit(
        &mut self,
        monotonic: &mut MonotonicReads,
        obj: &ObjectRef,
        version: u64,
        _lamport: u64,
    ) -> bool {
        monotonic.admit(obj, version)
    }

    fn lease(&self) -> Option<Duration> {
        self.lease
    }
}

/// [`ConsistencyMode::Causal`]: replica reads guarded by a per-object
/// Lamport frontier. The session tracks the highest stamp it has observed
/// per object (`deps`) and overall (`clock`); writes piggyback the clock
/// as their dependency, so their server-side stamps land strictly above
/// everything the session has seen, and reads are admitted only when the
/// serving replica's stamp has caught up with the frontier — which yields
/// monotonic reads *and* read-your-writes per session (the two guarantees
/// [`crate::verify::check_causal`] checks).
#[derive(Debug)]
pub struct CausalPolicy {
    rr: u64,
    /// Highest Lamport stamp observed anywhere in this session.
    clock: u64,
    /// Per-object Lamport frontier: the minimum stamp a read may return.
    deps: HashMap<ObjectRef, u64>,
    lease: Option<Duration>,
}

impl ReadPolicy for CausalPolicy {
    fn name(&self) -> &'static str {
        "causal"
    }

    fn route_read(&mut self, ring: &Ring, obj: &ObjectRef, rf: u8) -> Option<NodeId> {
        round_robin(&mut self.rr, ring, obj, rf)
    }

    fn dep(&self, _obj: &ObjectRef) -> u64 {
        self.clock
    }

    fn admit(
        &mut self,
        monotonic: &mut MonotonicReads,
        obj: &ObjectRef,
        version: u64,
        lamport: u64,
    ) -> bool {
        let need = self.deps.get(obj).copied().unwrap_or(0);
        if lamport < need {
            return false;
        }
        if !monotonic.admit(obj, version) {
            return false;
        }
        self.clock = self.clock.max(lamport);
        self.deps.insert(obj.clone(), lamport);
        true
    }

    fn observe_write(
        &mut self,
        monotonic: &mut MonotonicReads,
        obj: &ObjectRef,
        version: u64,
        lamport: u64,
    ) {
        monotonic.observe(obj, version);
        self.clock = self.clock.max(lamport);
        let e = self.deps.entry(obj.clone()).or_insert(0);
        *e = (*e).max(lamport);
    }

    fn lease(&self) -> Option<Duration> {
        self.lease
    }
}

/// [`ConsistencyMode::BoundedStaleness`]: reads go to the *primary* and
/// cache entries are served without revalidation for `staleness_bound`.
/// Because an entry is installed or revalidated from the primary — which
/// is globally current at that instant — a lease-served read is stale by
/// at most the bound, by construction. This is the PR-1 `cache_lease`
/// promoted to a first-class, verified mode
/// ([`crate::verify::check_staleness_bound`]).
#[derive(Debug)]
pub struct BoundedStalenessPolicy {
    lease: Option<Duration>,
}

impl ReadPolicy for BoundedStalenessPolicy {
    fn name(&self) -> &'static str {
        "bounded-staleness"
    }

    fn route_read(&mut self, ring: &Ring, obj: &ObjectRef, _rf: u8) -> Option<NodeId> {
        ring.primary(obj)
    }

    fn admit(
        &mut self,
        monotonic: &mut MonotonicReads,
        obj: &ObjectRef,
        version: u64,
        _lamport: u64,
    ) -> bool {
        monotonic.admit(obj, version)
    }

    fn lease(&self) -> Option<Duration> {
        self.lease
    }
}

/// [`ConsistencyMode::CrdtMerge`]: both reads and writes round-robin over
/// the replica group and every reply is admitted. Replica versions diverge
/// under merge (each replica counts its own mutations), so version-based
/// monotonicity is meaningless here; what the mode guarantees instead is
/// *convergence* — replicas reconcile by commutative merge on the
/// anti-entropy cadence — which `tests/mergeable_props.rs` verifies across
/// schedules.
#[derive(Debug)]
pub struct CrdtMergePolicy {
    rr: u64,
    lease: Option<Duration>,
}

impl ReadPolicy for CrdtMergePolicy {
    fn name(&self) -> &'static str {
        "crdt-merge"
    }

    fn route_read(&mut self, ring: &Ring, obj: &ObjectRef, rf: u8) -> Option<NodeId> {
        round_robin(&mut self.rr, ring, obj, rf)
    }

    fn route_write(&mut self, ring: &Ring, obj: &ObjectRef, rf: u8) -> Option<NodeId> {
        round_robin(&mut self.rr, ring, obj, rf)
    }

    fn admit(
        &mut self,
        monotonic: &mut MonotonicReads,
        obj: &ObjectRef,
        version: u64,
        _lamport: u64,
    ) -> bool {
        monotonic.observe(obj, version);
        true
    }

    fn lease(&self) -> Option<Duration> {
        self.lease
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Ring {
        Ring::new(&[NodeId(0), NodeId(1), NodeId(2)])
    }

    fn obj(k: &str) -> ObjectRef {
        ObjectRef::new("T", k)
    }

    #[test]
    fn policy_for_matches_mode() {
        let lin = DsoConfig::default();
        assert_eq!(policy_for(&lin).name(), "linearizable");
        let rr =
            DsoConfig::builder().consistency(ConsistencyMode::ReplicaReads).build().expect("valid");
        assert_eq!(policy_for(&rr).name(), "replica-reads");
        let causal =
            DsoConfig::builder().consistency(ConsistencyMode::Causal).build().expect("valid");
        assert_eq!(policy_for(&causal).name(), "causal");
        let bounded = DsoConfig::builder()
            .consistency(ConsistencyMode::BoundedStaleness)
            .read_cache(true)
            .staleness_bound(Duration::from_millis(5))
            .build()
            .expect("valid");
        let bounded = policy_for(&bounded);
        assert_eq!(bounded.name(), "bounded-staleness");
        assert_eq!(bounded.lease(), Some(Duration::from_millis(5)));
        let crdt =
            DsoConfig::builder().consistency(ConsistencyMode::CrdtMerge).build().expect("valid");
        assert_eq!(policy_for(&crdt).name(), "crdt-merge");
    }

    #[test]
    fn linearizable_always_routes_to_the_primary() {
        let r = ring();
        let mut p = LinearizablePolicy { lease: None };
        let o = obj("a");
        let primary = r.primary(&o);
        for _ in 0..5 {
            assert_eq!(p.route_read(&r, &o, 3), primary);
            assert_eq!(p.route_write(&r, &o, 3), primary);
        }
    }

    #[test]
    fn replica_reads_round_robin_only_when_replicated() {
        let r = ring();
        let mut p = ReplicaReadsPolicy { rr: 0, lease: None };
        let o = obj("a");
        let placement = r.placement(&o, 3);
        let picks: Vec<_> = (0..6).map(|_| p.route_read(&r, &o, 3).expect("routed")).collect();
        assert_eq!(picks[0..3], placement[..], "cycles the placement set in order");
        assert_eq!(picks[3..6], placement[..]);
        // Unreplicated reads go to the primary and do not advance the
        // round-robin counter.
        assert_eq!(p.rr, 6);
        assert_eq!(p.route_read(&r, &o, 1), r.primary(&o));
        assert_eq!(p.rr, 6);
    }

    #[test]
    fn causal_frontier_gates_reads_and_feeds_deps() {
        let r = ring();
        let mut p = CausalPolicy { rr: 0, clock: 0, deps: HashMap::new(), lease: None };
        let mut m = MonotonicReads::new();
        let o = obj("a");
        assert_eq!(p.dep(&o), 0, "fresh session has no dependencies");
        // A write stamped 7 raises the session clock and the object's
        // frontier.
        p.observe_write(&mut m, &o, 1, 7);
        assert_eq!(p.dep(&o), 7);
        // A replica still at stamp 6 is behind the frontier: rejected
        // (read-your-writes); a caught-up one is admitted.
        assert!(!p.admit(&mut m, &o, 1, 6));
        assert!(p.admit(&mut m, &o, 1, 7));
        // Reads ratchet the frontier too (monotonic reads).
        assert!(p.admit(&mut m, &o, 2, 9));
        assert!(!p.admit(&mut m, &o, 2, 8));
        // The clock is global across objects; per-object frontiers are not.
        let b = obj("b");
        assert_eq!(p.dep(&b), 9);
        assert!(p.admit(&mut m, &b, 1, 0), "object b has no frontier yet");
        let _ = r;
    }

    #[test]
    fn crdt_merge_spreads_writes_and_admits_everything() {
        let r = ring();
        let mut p = CrdtMergePolicy { rr: 0, lease: None };
        let mut m = MonotonicReads::new();
        let o = obj("a");
        let placement = r.placement(&o, 3);
        let w: Vec<_> = (0..3).map(|_| p.route_write(&r, &o, 3).expect("routed")).collect();
        assert_eq!(w, placement, "writes cycle the replica group");
        // Divergent replica versions are all admissible: convergence, not
        // monotonicity, is the contract.
        assert!(p.admit(&mut m, &o, 5, 0));
        assert!(p.admit(&mut m, &o, 2, 0));
    }
}
