//! Consistent hashing with virtual nodes, as in Cassandra (§4.1): every
//! storage node knows the full membership, so any object's location is a
//! local computation — no broadcast, disjoint-access parallelism, and
//! minimal disruption when nodes come and go.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::object::ObjectRef;
use crate::protocol::NodeId;

/// Number of virtual nodes per physical node.
pub const VNODES: u32 = 64;

/// FNV-1a 64-bit hash step; start with `0` (or chain calls).
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    if h == 0 {
        h = 0xcbf2_9ce4_8422_2325;
    }
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: FNV-1a alone clusters similar short keys (e.g.
/// `key-1`, `key-2`) into a narrow band of the ring, which would pile all
/// objects onto one node; this avalanche step restores uniformity.
pub fn mix(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// A consistent-hash ring over a set of nodes.
///
/// # Examples
///
/// ```
/// use dso::{Ring, ObjectRef};
/// use dso::protocol::NodeId;
///
/// let ring = Ring::new(&[NodeId(0), NodeId(1), NodeId(2)]);
/// let obj = ObjectRef::new("AtomicLong", "counter");
/// let placement = ring.placement(&obj, 2);
/// assert_eq!(placement.len(), 2);
/// assert_ne!(placement[0], placement[1]);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    points: BTreeMap<u64, NodeId>,
    nodes: Vec<NodeId>,
}

impl Ring {
    /// Builds a ring over `nodes` with [`VNODES`] virtual nodes each.
    pub fn new(nodes: &[NodeId]) -> Ring {
        let mut points = BTreeMap::new();
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort();
        sorted.dedup();
        for &n in &sorted {
            for v in 0..VNODES {
                let mut h = fnv1a(0, &n.0.to_le_bytes());
                h = fnv1a(h, &v.to_le_bytes());
                points.insert(mix(h), n);
            }
        }
        Ring { points, nodes: sorted }
    }

    /// The distinct nodes on the ring, sorted by id.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The first `rf` distinct nodes clockwise from the object's hash.
    /// The first entry is the object's *primary*. Returns fewer than `rf`
    /// nodes if the ring is smaller than `rf`.
    pub fn placement(&self, obj: &ObjectRef, rf: u8) -> Vec<NodeId> {
        self.placement_by_hash(obj.placement_hash(), rf)
    }

    /// Placement for a raw hash (see [`Ring::placement`]).
    pub fn placement_by_hash(&self, hash: u64, rf: u8) -> Vec<NodeId> {
        let want = (rf as usize).min(self.nodes.len());
        let mut out: Vec<NodeId> = Vec::with_capacity(want);
        for (_, &n) in self.points.range(hash..).chain(self.points.range(..hash)) {
            if !out.contains(&n) {
                out.push(n);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The primary node for an object, if the ring is non-empty.
    pub fn primary(&self, obj: &ObjectRef) -> Option<NodeId> {
        self.placement(obj, 1).first().copied()
    }
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ring")
            .field("nodes", &self.nodes)
            .field("points", &self.points.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn obj(i: usize) -> ObjectRef {
        ObjectRef::new("T", format!("key-{i}"))
    }

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let ring = Ring::new(&nodes(5));
        for i in 0..100 {
            let o = obj(i);
            let p1 = ring.placement(&o, 3);
            let p2 = ring.placement(&o, 3);
            assert_eq!(p1, p2);
            assert_eq!(p1.len(), 3);
            let mut d = p1.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn rf_larger_than_ring_is_capped() {
        let ring = Ring::new(&nodes(2));
        let p = ring.placement(&obj(0), 5);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_ring() {
        let ring = Ring::new(&[]);
        assert!(ring.is_empty());
        assert!(ring.primary(&obj(0)).is_none());
        assert!(ring.placement(&obj(0), 2).is_empty());
    }

    #[test]
    fn duplicate_nodes_deduped() {
        let ring = Ring::new(&[NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(ring.nodes(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = Ring::new(&nodes(4));
        let mut counts = std::collections::HashMap::new();
        const N: usize = 4000;
        for i in 0..N {
            let p = ring.primary(&obj(i)).expect("non-empty");
            *counts.entry(p).or_insert(0usize) += 1;
        }
        for (&node, &c) in &counts {
            let frac = c as f64 / N as f64;
            assert!((frac - 0.25).abs() < 0.12, "node {node:?} got fraction {frac}");
        }
    }

    #[test]
    fn minimal_disruption_on_node_removal() {
        let before = Ring::new(&nodes(5));
        let after = Ring::new(&nodes(4)); // node 4 removed
        const N: usize = 2000;
        let mut moved = 0usize;
        for i in 0..N {
            let o = obj(i);
            let b = before.primary(&o).expect("primary");
            let a = after.primary(&o).expect("primary");
            if b != NodeId(4) && a != b {
                moved += 1;
            }
        }
        // Objects not on the removed node should essentially never move.
        assert_eq!(moved, 0, "{moved} unaffected objects moved");
    }

    #[test]
    fn secondary_differs_from_primary_after_failover() {
        // When the primary dies, the old secondary becomes the new primary:
        // the rf=2 placement under the old ring contains the new primary.
        let before = Ring::new(&nodes(3));
        for i in 0..200 {
            let o = obj(i);
            let p = before.placement(&o, 2);
            let dead = p[0];
            let remaining: Vec<NodeId> = nodes(3).into_iter().filter(|n| *n != dead).collect();
            let after = Ring::new(&remaining);
            let new_primary = after.primary(&o).expect("primary");
            assert_eq!(new_primary, p[1], "new primary should be the old secondary for {o}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Removing one node never changes the placement of objects whose
        /// replica set did not include it (minimal disruption).
        #[test]
        fn removal_only_disrupts_owned_objects(
            n in 2u32..8,
            removed in 0u32..8,
            keys in proptest::collection::vec("[a-z]{1,12}", 1..40),
            rf in 1u8..4,
        ) {
            let removed = removed % n;
            let all: Vec<NodeId> = (0..n).map(NodeId).collect();
            let remaining: Vec<NodeId> =
                all.iter().copied().filter(|x| x.0 != removed).collect();
            let before = Ring::new(&all);
            let after = Ring::new(&remaining);
            for k in &keys {
                let o = ObjectRef::new("T", k.clone());
                let pb = before.placement(&o, rf);
                if !pb.contains(&NodeId(removed)) {
                    let pa = after.placement(&o, rf);
                    prop_assert_eq!(pb, pa);
                }
            }
        }

        /// Placement always returns min(rf, n) distinct nodes.
        #[test]
        fn placement_size_and_distinctness(
            n in 1u32..10,
            key in "[a-z0-9]{1,16}",
            rf in 1u8..6,
        ) {
            let ring = Ring::new(&(0..n).map(NodeId).collect::<Vec<_>>());
            let p = ring.placement(&ObjectRef::new("X", key), rf);
            prop_assert_eq!(p.len(), (rf as usize).min(n as usize));
            let mut d = p.clone();
            d.sort();
            d.dedup();
            prop_assert_eq!(d.len(), p.len());
        }
    }
}
