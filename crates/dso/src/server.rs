//! A DSO storage node.
//!
//! Each node runs one *dispatcher* process (its network-facing mailbox) and
//! a pool of *worker* processes. Requests are routed to a worker by the
//! object's placement hash, which gives both per-object serialization
//! (linearizability) and disjoint-access parallelism across objects — the
//! property behind Crucial's Fig. 2a win on complex operations.
//!
//! Persistent objects (`rf > 1`) take the SMR path: the contacted replica
//! initiates a Skeen total-order multicast among the replica group; every
//! replica applies the delivered operation, and the initiating node replies
//! to the client.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::{Addr, Ctx, LatencyModel, Msg, Pid, Request, Sim, SimTime, SpanId, Ticker};

use crate::config::{AdmissionConfig, ConsistencyMode, DsoConfig, DurabilityLevel};
use crate::durability::wal::{wal_daemon, PendingAck, WalState};
use crate::object::{CallCtx, ObjectRef, ObjectRegistry, Reply, SharedObject, Ticket};
use crate::protocol::{
    BatchItemResp, BatchReq, DrainNode, InvokeReq, InvokeResp, MemberMsg, NodeId, PeerMsg, SmrOp,
    VersionReq, VersionResp, View, ViewUpdate, WalRecord,
};
use crate::ring::Ring;
use crate::skeen::{Action, Skeen};

/// Handle to a running storage node, used by harnesses and the control
/// plane to crash it abruptly or drain it gracefully.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    /// The node's id.
    pub node: NodeId,
    pids: Arc<Mutex<Vec<Pid>>>,
    /// The dispatcher's inbox, published once the node is up and cleared
    /// when it retires — the target for [`DrainNode`].
    inbox: Arc<Mutex<Option<Addr>>>,
    peer_net: LatencyModel,
}

impl ServerHandle {
    /// Kills the dispatcher and all workers without any goodbye — the
    /// "(abrupt) removal of a node" from Fig. 8. The membership
    /// coordinator notices through missed heartbeats.
    pub fn crash(&self, sim: &Sim) {
        for pid in self.pids.lock().iter() {
            sim.kill(*pid);
        }
    }

    /// Kills the node from inside the simulation (e.g. from a fault
    /// injector process).
    pub fn crash_from(&self, ctx: &mut Ctx) {
        for pid in self.pids.lock().iter() {
            ctx.kill(*pid);
        }
    }

    /// Asks the node to drain gracefully: it leaves the membership view,
    /// transfers every object it still stores to the new owners under the
    /// leave view, then retires its processes. Returns `false` when the
    /// node is not (or no longer) running. See [`DrainNode`].
    pub fn drain_from(&self, ctx: &mut Ctx) -> bool {
        let Some(addr) = *self.inbox.lock() else { return false };
        let lat = self.peer_net.sample(ctx.rng());
        ctx.send(addr, Msg::new(DrainNode), lat);
        true
    }
}

struct Stored {
    obj: Box<dyn SharedObject>,
    rf: u8,
    version: u64,
    /// Lamport stamp of the last applied mutation. Stamped as
    /// `max(stored, req.dep) + 1`, which is deterministic per applied
    /// write, so SMR replicas assign identical stamps without exchanging
    /// clocks.
    lamport: u64,
}

struct NodeShared {
    node: NodeId,
    cfg: DsoConfig,
    registry: ObjectRegistry,
    objects: Mutex<HashMap<ObjectRef, Stored>>,
    parked: Mutex<HashMap<Ticket, Addr>>,
    next_ticket: AtomicU64,
    /// Invocations routed to workers and not yet finished (queued +
    /// executing) — the "queue depth" the admission controller bounds.
    inflight: AtomicU64,
    /// The node's write-ahead-log buffer; `Some` only when durability is
    /// active (see [`crate::DurabilityConfig`]). Workers append applied
    /// mutations, the per-node WAL daemon group-commits them.
    wal: Option<Arc<WalState>>,
}

/// Per-node admission controller: a token bucket (sustained rate + burst)
/// and a queue-depth cap, both over virtual time. See [`AdmissionConfig`].
struct Shedder {
    cfg: AdmissionConfig,
    tokens: f64,
    last_refill: SimTime,
}

impl Shedder {
    fn new(cfg: AdmissionConfig, now: SimTime) -> Shedder {
        Shedder { tokens: cfg.burst, last_refill: now, cfg }
    }

    /// Refills by elapsed virtual time and takes one token; `false` means
    /// the request must be shed (bucket empty or queue full).
    fn admit(&mut self, now: SimTime, inflight: u64) -> bool {
        let dt = now.saturating_duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.cfg.rate).min(self.cfg.burst);
        if self.tokens < 1.0 || inflight >= u64::from(self.cfg.max_queue_depth) {
            return false;
        }
        self.tokens -= 1.0;
        true
    }
}

enum WorkItem {
    Client {
        req: InvokeReq,
        reply_to: Addr,
        /// Batch-item tag the reply must echo (see [`BatchReq`]).
        tag: Option<u32>,
    },
    Apply {
        op: SmrOp,
    },
}

/// Spawns a storage node (dispatcher + workers). The node joins the
/// membership coordinator at `coordinator` and serves once a view that
/// includes it is installed.
pub fn spawn_server(
    sim: &Sim,
    node: NodeId,
    cfg: DsoConfig,
    registry: ObjectRegistry,
    coordinator: Addr,
) -> ServerHandle {
    let (handle, shared, pids, inbox_slot) = prepare_server(node, cfg, registry);
    let main = sim.spawn_daemon(&format!("dso-{node}"), move |ctx| {
        server_main(ctx, coordinator, shared, pids, inbox_slot);
    });
    handle.pids.lock().push(main);
    handle
}

/// [`spawn_server`] from inside the simulation — used by the control plane
/// to scale out without leaving virtual time.
pub fn spawn_server_from(
    ctx: &mut Ctx,
    node: NodeId,
    cfg: DsoConfig,
    registry: ObjectRegistry,
    coordinator: Addr,
) -> ServerHandle {
    let (handle, shared, pids, inbox_slot) = prepare_server(node, cfg, registry);
    let main = ctx.spawn_daemon(&format!("dso-{node}"), move |c| {
        server_main(c, coordinator, shared, pids, inbox_slot);
    });
    handle.pids.lock().push(main);
    handle
}

type ServerParts = (ServerHandle, Arc<NodeShared>, Arc<Mutex<Vec<Pid>>>, Arc<Mutex<Option<Addr>>>);

fn prepare_server(node: NodeId, cfg: DsoConfig, registry: ObjectRegistry) -> ServerParts {
    let pids = Arc::new(Mutex::new(Vec::new()));
    let inbox_slot = Arc::new(Mutex::new(None));
    let handle = ServerHandle {
        node,
        pids: pids.clone(),
        inbox: inbox_slot.clone(),
        peer_net: cfg.peer_net,
    };
    let wal = cfg.durability_active().map(|_| Arc::new(WalState::new(node)));
    let shared = Arc::new(NodeShared {
        node,
        cfg,
        registry,
        objects: Mutex::new(HashMap::new()),
        parked: Mutex::new(HashMap::new()),
        next_ticket: AtomicU64::new(1),
        inflight: AtomicU64::new(0),
        wal,
    });
    (handle, shared, pids, inbox_slot)
}

fn server_main(
    ctx: &mut Ctx,
    coordinator: Addr,
    shared: Arc<NodeShared>,
    pids: Arc<Mutex<Vec<Pid>>>,
    inbox_slot: Arc<Mutex<Option<Addr>>>,
) {
    let node = shared.node;
    let cfg = shared.cfg.clone();
    let inbox = ctx.mailbox(&format!("dso-{node}-inbox"));
    *inbox_slot.lock() = Some(inbox);

    // Worker pool. Worker mailboxes are owned by the dispatcher, so an
    // abrupt node crash closes them all at once.
    let mut workers: Vec<Addr> = Vec::with_capacity(cfg.workers_per_node as usize);
    let mut worker_pids: Vec<Pid> = Vec::with_capacity(cfg.workers_per_node as usize);
    for w in 0..cfg.workers_per_node {
        let wmb = ctx.mailbox(&format!("dso-{node}-w{w}"));
        workers.push(wmb);
        let sh = shared.clone();
        let pid = ctx.spawn_daemon(&format!("dso-{node}-w{w}"), move |wc| {
            worker_loop(wc, wmb, sh);
        });
        worker_pids.push(pid);
        pids.lock().push(pid);
    }

    // The WAL daemon exists only when durability is active; every other
    // configuration runs the exact pre-existing process set, which keeps
    // default-config schedules (and their golden hashes) byte-identical.
    let mut wal_pid: Option<Pid> = None;
    if let (Some(wal), Some(d)) = (shared.wal.clone(), cfg.durability_active().cloned()) {
        let client_net = cfg.client_net;
        let pid = ctx.spawn_daemon(&format!("dso-{node}-wal"), move |wc| {
            wal_daemon(wc, wal, d, client_net);
        });
        pids.lock().push(pid);
        wal_pid = Some(pid);
    }

    // Join the cluster.
    {
        let lat = cfg.peer_net.sample(ctx.rng());
        ctx.send(coordinator, Msg::new(MemberMsg::Join { node, addr: inbox }), lat);
    }

    let mut view = View::empty();
    let mut ring = Ring::new(&[]);
    let mut skeen: Skeen<SmrOp> = Skeen::new(node);
    let mut hb = Ticker::new(ctx.now(), cfg.heartbeat_interval);
    // The anti-entropy ticker exists only under `CrdtMerge`; every other
    // mode runs the exact pre-existing recv/heartbeat cadence, which keeps
    // default-config schedules (and their golden hashes) byte-identical.
    let mut anti_entropy = (cfg.consistency == ConsistencyMode::CrdtMerge)
        .then(|| Ticker::new(ctx.now(), cfg.anti_entropy_interval));
    let mut shedder = cfg.admission.map(|a| Shedder::new(a, ctx.now()));
    let mut draining = false;

    loop {
        let timeout = match &anti_entropy {
            Some(ae) => hb.remaining(ctx.now()).min(ae.remaining(ctx.now())),
            None => hb.remaining(ctx.now()),
        };
        let msg = ctx.recv_timeout(inbox, timeout);
        if hb.poll(ctx.now()) {
            let lat = cfg.peer_net.sample(ctx.rng());
            ctx.send(coordinator, Msg::new(MemberMsg::Heartbeat { node }), lat);
            // Queue-depth gauge, stamped on the heartbeat cadence so the
            // control plane (and operators) can see dispatcher pressure.
            ctx.metric_push("dso.queue_depth", shared.inflight.load(Ordering::SeqCst) as f64);
        }
        if let Some(ae) = anti_entropy.as_mut() {
            if ae.poll(ctx.now()) {
                anti_entropy_round(ctx, &shared, &view, &ring);
            }
        }
        let Some(msg) = msg else { continue };

        let msg = match msg.try_take::<Request>() {
            Ok(req) => {
                if req.body.is::<crate::protocol::SnapshotAll>() {
                    let (reply_to, _) = req.take::<crate::protocol::SnapshotAll>();
                    let records = snapshot_all(&shared);
                    let bytes: usize = records.iter().map(|r| r.state.len()).sum();
                    let lat = cfg.client_net.sample(ctx.rng())
                        + Duration::from_secs_f64(bytes as f64 / cfg.transfer_bandwidth);
                    ctx.reply(reply_to, crate::protocol::SnapshotReply(records), lat);
                    continue;
                }
                if req.body.is::<VersionReq>() {
                    // Version probe: answered straight from the dispatcher,
                    // no worker hop, no method CPU — the cheap half of the
                    // client cache's validate-then-reuse protocol.
                    let (reply_to, probe) = req.take::<VersionReq>();
                    let owned = ring.placement(&probe.obj, probe.rf.max(1)).contains(&shared.node);
                    let version = if owned {
                        shared.objects.lock().get(&probe.obj).map(|s| s.version)
                    } else {
                        None
                    };
                    let lat = cfg.client_net.sample(ctx.rng());
                    ctx.reply(reply_to, VersionResp(version), lat);
                    continue;
                }
                if req.body.is::<BatchReq>() {
                    let (reply_to, batch) = req.take::<BatchReq>();
                    for (tag, item) in batch.items {
                        handle_client_invoke(
                            ctx,
                            &shared,
                            &view,
                            &ring,
                            &workers,
                            &mut skeen,
                            &mut shedder,
                            item,
                            reply_to,
                            Some(tag),
                        );
                    }
                    continue;
                }
                let (reply_to, invoke) = req.take::<InvokeReq>();
                handle_client_invoke(
                    ctx,
                    &shared,
                    &view,
                    &ring,
                    &workers,
                    &mut skeen,
                    &mut shedder,
                    invoke,
                    reply_to,
                    None,
                );
                continue;
            }
            Err(other) => other,
        };
        let msg = match msg.try_take::<PeerMsg>() {
            Ok(PeerMsg::Smr { from, epoch, msg }) => {
                if epoch != view.id {
                    // Stale- or future-epoch SMR traffic: drop it; the
                    // client retries once both replicas share the view.
                    continue;
                }
                let actions = skeen.handle(from, msg);
                process_skeen_actions(ctx, &shared, &view, &workers, &mut skeen, actions);
                continue;
            }
            Ok(PeerMsg::Transfer { obj, rf, state, version, lamport }) => {
                install_transfer(&shared, obj, rf, state, version, lamport);
                continue;
            }
            Ok(PeerMsg::Merge { obj, rf, state }) => {
                apply_merge(ctx, &shared, obj, rf, state);
                continue;
            }
            Err(other) => other,
        };
        let msg = match msg.try_take::<ViewUpdate>() {
            Ok(ViewUpdate(new_view)) => {
                if new_view.id > view.id {
                    let new_ring = Ring::new(&new_view.node_ids());
                    rebalance(ctx, &shared, &view, &ring, &new_view, &new_ring);
                    // Abort in-flight SMR: a departed replica can never
                    // answer, and a stalled message would head-of-line
                    // block every later delivery. Clients retry.
                    skeen.reset();
                    view = new_view;
                    ring = new_ring;
                    if draining && view.addr_of(node).is_none() {
                        // The leave view is installed and `rebalance` has
                        // pushed every object to its new owners (this node
                        // is in no placement). Retire: kill the workers and
                        // return, which closes the owned mailboxes.
                        ctx.trace(format!("dso-{node}: drained, retiring"));
                        inbox_slot.lock().take();
                        // Final WAL flush: records buffered before the
                        // drain (and any Sync acks riding them) must not
                        // die with the node.
                        if let (Some(wal), Some(d)) = (&shared.wal, cfg.durability_active()) {
                            wal.flush(ctx, d, &cfg.client_net);
                        }
                        if let Some(p) = wal_pid {
                            ctx.kill(p);
                        }
                        for p in &worker_pids {
                            ctx.kill(*p);
                        }
                        return;
                    }
                }
                continue;
            }
            Err(other) => other,
        };
        match msg.try_take::<DrainNode>() {
            Ok(DrainNode) => {
                if !draining {
                    draining = true;
                    ctx.metric_incr("dso.drains");
                    let mark = ctx.span_instant("dso.drain", "dso");
                    ctx.span_annotate(mark, "node", node.to_string());
                    // Announce the graceful departure; the coordinator's
                    // next view excludes this node and is also pushed to
                    // it, which triggers the transfer-out + retire above.
                    let lat = cfg.peer_net.sample(ctx.rng());
                    ctx.send(coordinator, Msg::new(MemberMsg::Leave { node }), lat);
                }
            }
            Err(other) => {
                ctx.trace(format!("dso-{node}: dropping unknown message {other:?}"));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_client_invoke(
    ctx: &mut Ctx,
    shared: &Arc<NodeShared>,
    view: &View,
    ring: &Ring,
    workers: &[Addr],
    skeen: &mut Skeen<SmrOp>,
    shedder: &mut Option<Shedder>,
    req: InvokeReq,
    reply_to: Addr,
    tag: Option<u32>,
) {
    let cfg = &shared.cfg;
    if let Some(s) = shedder {
        // Admission gate, ahead of any ownership or routing work: shedding
        // here keeps queueing (and thus latency) bounded under overload.
        if !s.admit(ctx.now(), shared.inflight.load(Ordering::SeqCst)) {
            ctx.metric_incr("dso.shed");
            let mark = ctx.span_instant("dso.shed", "dso");
            ctx.span_annotate(mark, "obj", req.obj.to_string());
            let lat = cfg.client_net.sample(ctx.rng());
            let resp = InvokeResp::Overloaded { retry_after: s.cfg.retry_after };
            reply_tagged(ctx, reply_to, tag, resp, lat);
            return;
        }
    }
    let placement = ring.placement(&req.obj, req.rf.max(1));
    if !placement.contains(&shared.node) {
        let lat = cfg.client_net.sample(ctx.rng());
        reply_tagged(ctx, reply_to, tag, InvokeResp::NotOwner { view: view.id }, lat);
        return;
    }
    // Declared read-only operations never mutate, so they skip the SMR
    // broadcast even on replicated objects: this node serves them from its
    // local copy (the read fast path). Under the default primary-only
    // routing this stays linearizable; under replica reads the client
    // enforces monotonicity via the returned version.
    //
    // Under `CrdtMerge`, *writes* to mergeable objects also skip SMR: the
    // contacted replica applies locally and the replica group reconciles
    // by merge on the anti-entropy cadence — convergence without ordering.
    let crdt = cfg.consistency == ConsistencyMode::CrdtMerge
        && shared.registry.is_mergeable(req.obj.type_name());
    if req.rf > 1 && placement.len() > 1 && !req.readonly && !crdt {
        // SMR path: totally-order the operation among the replica group.
        // The round span covers multicast through total-order delivery at
        // the initiating node; every replica's apply span nests under it.
        let round_span = ctx.span_begin_under(req.span, "dso.smr_round", "dso");
        ctx.span_annotate(round_span, "obj", req.obj.to_string());
        ctx.metric_incr("dso.smr_rounds");
        let op = SmrOp { req, respond_to: Some(reply_to), respond_tag: tag, round_span };
        let (_mid, actions) = skeen.multicast(placement, op);
        process_skeen_actions(ctx, shared, view, workers, skeen, actions);
    } else {
        route_to_worker(ctx, shared, workers, WorkItem::Client { req, reply_to, tag });
    }
}

/// Replies to a client, wrapping the response in a [`BatchItemResp`] when
/// the request arrived as a batch item. Also used by the WAL daemon to
/// release acknowledgements deferred under [`DurabilityLevel::Sync`].
pub(crate) fn reply_tagged(
    ctx: &mut Ctx,
    reply_to: Addr,
    tag: Option<u32>,
    resp: InvokeResp,
    lat: Duration,
) {
    match tag {
        Some(tag) => ctx.reply(reply_to, BatchItemResp { tag, resp }, lat),
        None => ctx.reply(reply_to, resp, lat),
    }
}

/// Executes Skeen actions: peer sends go on the wire, self-sends loop back
/// through the state machine immediately (zero network cost), deliveries
/// are dispatched to workers in order.
fn process_skeen_actions(
    ctx: &mut Ctx,
    shared: &Arc<NodeShared>,
    view: &View,
    workers: &[Addr],
    skeen: &mut Skeen<SmrOp>,
    actions: Vec<Action<SmrOp>>,
) {
    let node = shared.node;
    let mut stack: Vec<Action<SmrOp>> = actions;
    // Reverse stack processing keeps relative order of same-batch actions.
    stack.reverse();
    while let Some(action) = stack.pop() {
        match action {
            Action::Send { to, msg } => {
                if to == node {
                    let mut more = skeen.handle(node, msg);
                    more.reverse();
                    stack.extend(more);
                } else if let Some(addr) = view.addr_of(to) {
                    let lat = shared.cfg.peer_net.sample(ctx.rng());
                    ctx.send(addr, Msg::new(PeerMsg::Smr { from: node, epoch: view.id, msg }), lat);
                } else {
                    // Peer not in our view (crashed / not yet seen): the
                    // multicast stalls and the client retries after its
                    // timeout.
                    ctx.trace(format!("dso-{node}: dropping SMR message to absent {to}"));
                }
            }
            Action::Deliver { mid, payload, .. } => {
                let mut op = payload;
                if mid.node != node {
                    // Only the initiating replica answers the client.
                    op.respond_to = None;
                } else {
                    // Delivered back at the initiator: the ordering round
                    // is decided (the applies are children of it).
                    ctx.span_end(op.round_span);
                }
                route_to_worker(ctx, shared, workers, WorkItem::Apply { op });
            }
        }
    }
}

fn route_to_worker(ctx: &mut Ctx, shared: &Arc<NodeShared>, workers: &[Addr], item: WorkItem) {
    let obj = match &item {
        WorkItem::Client { req, .. } => &req.obj,
        WorkItem::Apply { op } => &op.req.obj,
    };
    // One worker per object (by placement hash): per-object serialization,
    // disjoint-access parallelism across objects.
    let idx = (obj.placement_hash() % workers.len() as u64) as usize;
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    // Intra-node handoff costs nothing on the simulated network.
    ctx.send(workers[idx], Msg::new(item), Duration::ZERO);
}

/// Buffers the post-state of an applied mutation into the node's WAL
/// (a physical redo record — replay installs the newest version per
/// object). Returns whether anything was logged, i.e. whether durability
/// is active on this node.
fn wal_log(shared: &Arc<NodeShared>, obj: &ObjectRef, stored: &Stored, req: &InvokeReq) -> bool {
    let Some(wal) = &shared.wal else { return false };
    wal.log(WalRecord {
        obj: obj.clone(),
        rf: stored.rf,
        method: req.method.clone(),
        version: stored.version,
        lamport: stored.lamport,
        state: stored.obj.save(),
    });
    true
}

/// Marshals every locally-stored object (the passivation dump).
fn snapshot_all(shared: &Arc<NodeShared>) -> Vec<crate::protocol::ObjectRecord> {
    let objects = shared.objects.lock();
    let mut records: Vec<crate::protocol::ObjectRecord> = objects
        .iter()
        .map(|(obj, stored)| crate::protocol::ObjectRecord {
            obj: obj.clone(),
            rf: stored.rf,
            version: stored.version,
            state: stored.obj.save(),
        })
        .collect();
    records.sort_by(|a, b| a.obj.cmp(&b.obj));
    records
}

fn install_transfer(
    shared: &Arc<NodeShared>,
    obj: ObjectRef,
    rf: u8,
    state: Vec<u8>,
    version: u64,
    lamport: u64,
) {
    let mut objects = shared.objects.lock();
    let newer = objects.get(&obj).is_none_or(|s| s.version < version);
    if !newer {
        return;
    }
    let mut instance = match shared.registry.create(obj.type_name(), &[]) {
        Ok(i) => i,
        Err(_) => return, // unknown type on this node: drop the transfer
    };
    if instance.restore(&state).is_ok() {
        objects.insert(obj, Stored { obj: instance, rf, version, lamport });
    }
}

/// One anti-entropy round under [`ConsistencyMode::CrdtMerge`]: push the
/// full saved state of every locally-stored mergeable replicated object to
/// its peer replicas. Receivers reconcile through [`apply_merge`]; the
/// exchange is convergent because merges are commutative, associative and
/// idempotent.
fn anti_entropy_round(ctx: &mut Ctx, shared: &Arc<NodeShared>, view: &View, ring: &Ring) {
    let node = shared.node;
    // Snapshot under the lock, then sort: HashMap iteration order is not
    // deterministic across runs and sends must be.
    let mut batch: Vec<(ObjectRef, u8, Vec<u8>)> = {
        let objects = shared.objects.lock();
        objects
            .iter()
            .filter(|(obj_ref, stored)| {
                stored.rf > 1 && shared.registry.is_mergeable(obj_ref.type_name())
            })
            .map(|(obj_ref, stored)| (obj_ref.clone(), stored.rf, stored.obj.save()))
            .collect()
    };
    batch.sort_by(|a, b| a.0.cmp(&b.0));
    for (obj, rf, state) in batch {
        for peer in ring.placement(&obj, rf.max(1)) {
            if peer == node {
                continue;
            }
            if let Some(addr) = view.addr_of(peer) {
                let lat = shared.cfg.peer_net.sample(ctx.rng());
                let msg = PeerMsg::Merge { obj: obj.clone(), rf, state: state.clone() };
                ctx.send(addr, Msg::new(msg), lat);
            }
        }
    }
}

/// Applies an incoming [`PeerMsg::Merge`]: reconcile through the object's
/// [`Mergeable`](crate::object::Mergeable) hook, bumping the version only
/// when the merge actually changed state (so caches and monotonic reads
/// see merges as mutations, and idempotent re-merges cost nothing). An
/// absent object installs from the pushed state, like a transfer.
fn apply_merge(ctx: &mut Ctx, shared: &Arc<NodeShared>, obj: ObjectRef, rf: u8, state: Vec<u8>) {
    let mut objects = shared.objects.lock();
    match objects.get_mut(&obj) {
        Some(stored) => {
            let before = stored.obj.save();
            let merged = match stored.obj.as_mergeable() {
                Some(m) => m.merge(&state).is_ok(),
                None => false, // registered mergeable but instance is not: drop
            };
            if merged && stored.obj.save() != before {
                stored.version += 1;
                stored.lamport += 1;
                if let Some(wal) = &shared.wal {
                    wal.log(WalRecord {
                        obj: obj.clone(),
                        rf: stored.rf,
                        method: crate::intern::intern("__merge"),
                        version: stored.version,
                        lamport: stored.lamport,
                        state: stored.obj.save(),
                    });
                }
                ctx.metric_incr("dso.merges");
            }
        }
        None => {
            let Ok(mut instance) = shared.registry.create(obj.type_name(), &[]) else {
                return;
            };
            if instance.restore(&state).is_ok() {
                let stored = Stored { obj: instance, rf, version: 1, lamport: 1 };
                if let Some(wal) = &shared.wal {
                    wal.log(WalRecord {
                        obj: obj.clone(),
                        rf,
                        method: crate::intern::intern("__merge"),
                        version: 1,
                        lamport: 1,
                        state: stored.obj.save(),
                    });
                }
                objects.insert(obj, stored);
                ctx.metric_incr("dso.merges");
            }
        }
    }
}

/// On a view change, push object state to new owners and drop objects this
/// node no longer holds (§4.1: "the nodes re-balance data according to the
/// new view").
fn rebalance(
    ctx: &mut Ctx,
    shared: &Arc<NodeShared>,
    _old_view: &View,
    old_ring: &Ring,
    new_view: &View,
    new_ring: &Ring,
) {
    let node = shared.node;
    let mut to_remove: Vec<ObjectRef> = Vec::new();
    let mut to_send: Vec<(Addr, ObjectRef, u8, Vec<u8>, u64, u64)> = Vec::new();
    {
        let objects = shared.objects.lock();
        for (obj_ref, stored) in objects.iter() {
            let rf = stored.rf.max(1);
            let newp = new_ring.placement(obj_ref, rf);
            let oldp = old_ring.placement(obj_ref, rf);
            let keep = newp.contains(&node);
            let targets: Vec<NodeId> = if keep {
                newp.iter().copied().filter(|p| *p != node && !oldp.contains(p)).collect()
            } else {
                to_remove.push(obj_ref.clone());
                newp
            };
            if !targets.is_empty() {
                let state = stored.obj.save();
                for t in targets {
                    if let Some(addr) = new_view.addr_of(t) {
                        to_send.push((
                            addr,
                            obj_ref.clone(),
                            rf,
                            state.clone(),
                            stored.version,
                            stored.lamport,
                        ));
                    }
                }
            }
        }
    }
    for (addr, obj, rf, state, version, lamport) in to_send {
        let lat = shared.cfg.peer_net.sample(ctx.rng())
            + Duration::from_secs_f64(state.len() as f64 / shared.cfg.transfer_bandwidth);
        ctx.send(addr, Msg::new(PeerMsg::Transfer { obj, rf, state, version, lamport }), lat);
    }
    if !to_remove.is_empty() {
        let mut objects = shared.objects.lock();
        for r in &to_remove {
            objects.remove(r);
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

enum CallOutcome {
    Reply(InvokeResp, Duration),
    Parked(Duration),
}

fn worker_loop(ctx: &mut Ctx, inbox: Addr, shared: Arc<NodeShared>) {
    loop {
        let item = ctx.recv(inbox).take::<WorkItem>();
        match item {
            WorkItem::Client { req, reply_to, tag } => {
                // Execution parents directly under the client's attempt span.
                let parent = req.span;
                execute(ctx, &shared, req, Some(reply_to), tag, false, parent);
            }
            WorkItem::Apply { op } => {
                // Replicated applies parent under the SMR round span.
                let parent = op.round_span;
                execute(ctx, &shared, op.req, op.respond_to, op.respond_tag, true, parent);
            }
        }
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one method call against the object store: materializes the object
/// if needed, invokes the method, charges its CPU cost, completes any
/// deferred calls it woke, and replies. `parent` is the trace span this
/// execution belongs to (the client's attempt span, or the SMR round span
/// for replicated applies).
#[allow(clippy::too_many_arguments)]
fn execute(
    ctx: &mut Ctx,
    shared: &Arc<NodeShared>,
    req: InvokeReq,
    reply_to: Option<Addr>,
    tag: Option<u32>,
    replicated: bool,
    parent: SpanId,
) {
    let exec_span = ctx.span_begin_under(parent, "dso.exec", "dso");
    ctx.span_annotate(exec_span, "obj", req.obj.to_string());
    ctx.span_annotate(exec_span, "method", req.method.to_string());
    if replicated {
        ctx.span_annotate(exec_span, "replicated", "true");
    }
    let ticket = Ticket(shared.next_ticket.fetch_add(1, Ordering::SeqCst));
    if let Some(rt) = reply_to {
        shared.parked.lock().insert(ticket, rt);
    }
    let mut wakes: Vec<(Ticket, Vec<u8>)> = Vec::new();
    if &req.method == "__restore" {
        let (outcome, logged) = restore_object(shared, &req);
        finish(ctx, shared, ticket, reply_to, tag, outcome, &[], logged, exec_span);
        return;
    }
    // Whether this call's effect was WAL-logged: under `Sync` durability
    // such a reply is deferred until the covering segment is flushed.
    let mut logged = false;
    let outcome = {
        let mut objects = shared.objects.lock();
        if !objects.contains_key(&req.obj) {
            match materialize(shared, &req) {
                Ok(Some(stored)) => {
                    objects.insert(req.obj.clone(), stored);
                }
                Ok(None) => {
                    // Persistent object awaiting transfer from a replica.
                    drop(objects);
                    finish(
                        ctx,
                        shared,
                        ticket,
                        reply_to,
                        tag,
                        CallOutcome::Reply(InvokeResp::Retry, Duration::ZERO),
                        &[],
                        false,
                        exec_span,
                    );
                    return;
                }
                Err(e) => {
                    drop(objects);
                    finish(
                        ctx,
                        shared,
                        ticket,
                        reply_to,
                        tag,
                        CallOutcome::Reply(InvokeResp::Error(e), Duration::ZERO),
                        &[],
                        false,
                        exec_span,
                    );
                    return;
                }
            }
        }
        // invariant: the contains_key/materialize branch above inserted the
        // entry (or returned early), all while holding the objects lock.
        let stored = objects.get_mut(&req.obj).expect("object just ensured");
        if &req.method == "__create" {
            // Idempotent explicit creation: materialization above (or a
            // pre-existing object) is all that is needed. Logged so the
            // object exists after recovery even if never mutated.
            logged = wal_log(shared, &req.obj, stored, &req);
            CallOutcome::Reply(
                InvokeResp::Value {
                    bytes: unit_bytes(),
                    version: stored.version,
                    lamport: stored.lamport,
                },
                crate::object::costs::SIMPLE_OP,
            )
        } else if req.readonly && !stored.obj.is_readonly(&req.method) {
            // The client flagged the call read-only but the object does
            // not classify the method as such: executing it could mutate
            // state outside the SMR order. Reject rather than corrupt.
            CallOutcome::Reply(
                InvokeResp::Error(crate::error::ObjectError::App(format!(
                    "method {} is not read-only",
                    req.method
                ))),
                Duration::ZERO,
            )
        } else {
            let mutating = !stored.obj.is_readonly(&req.method);
            // Runtime read-only verification: the read fast path *trusts*
            // `is_readonly` (skipping SMR and the version bump), so a
            // method misdeclared as read-only would silently fork replicas.
            // Snapshot the state around the call and reject on mutation —
            // except for methods the simanalyze purity pass already proved
            // side-effect-free, where the static proof replaces the check.
            let verify = !mutating
                && shared.cfg.verify_readonly
                && !shared.cfg.pure_methods.contains(req.obj.type_name(), &req.method);
            let snapshot = if verify {
                ctx.metric_incr("dso.readonly_snapshots");
                Some(stored.obj.save())
            } else {
                None
            };
            let call = CallCtx { ticket, replicated, node: shared.node.0 };
            match stored.obj.invoke(&call, &req.method, &req.args) {
                Ok(effects) if snapshot.as_ref().is_some_and(|s| *s != stored.obj.save()) => {
                    // invariant: snapshot is Some in this arm, per the guard.
                    let s = snapshot.expect("guard checked snapshot");
                    // Restore is best-effort: the bytes came from save() on
                    // this very instance moments ago, so it cannot fail.
                    let _ = stored.obj.restore(&s);
                    CallOutcome::Reply(
                        InvokeResp::Error(crate::error::ObjectError::ReadonlyViolation(format!(
                            "{}::{}",
                            req.obj, req.method
                        ))),
                        effects.cost,
                    )
                }
                Ok(effects) => {
                    // The version counts *mutations*, so read-only calls
                    // leave it unchanged — that is what lets replicas and
                    // caches compare versions meaningfully. The Lamport
                    // stamp advances past the caller's piggybacked
                    // dependency, deterministically per applied write.
                    if mutating {
                        stored.version += 1;
                        stored.lamport = stored.lamport.max(req.dep) + 1;
                        logged = wal_log(shared, &req.obj, stored, &req);
                    }
                    let version = stored.version;
                    let lamport = stored.lamport;
                    wakes = effects.wakes;
                    match effects.reply {
                        Reply::Value(v) => CallOutcome::Reply(
                            InvokeResp::Value { bytes: v.into(), version, lamport },
                            effects.cost,
                        ),
                        Reply::Park if replicated => CallOutcome::Reply(
                            InvokeResp::Error(crate::error::ObjectError::App(
                                "blocking methods are not allowed on replicated objects"
                                    .to_string(),
                            )),
                            effects.cost,
                        ),
                        Reply::Park if tag.is_some() => CallOutcome::Reply(
                            InvokeResp::Error(crate::error::ObjectError::App(
                                "blocking methods are not allowed in batched invocations"
                                    .to_string(),
                            )),
                            effects.cost,
                        ),
                        Reply::Park => CallOutcome::Parked(effects.cost),
                    }
                }
                Err(e) => CallOutcome::Reply(InvokeResp::Error(e), Duration::ZERO),
            }
        }
    };
    finish(ctx, shared, ticket, reply_to, tag, outcome, &wakes, logged, exec_span);
}

/// The encoded unit value `()`, shared by maintenance replies.
fn unit_bytes() -> bytes::Bytes {
    // invariant: encoding the unit type is infallible in the codec.
    simcore::codec::to_bytes(&()).expect("unit encodes").into()
}

/// Un-passivates an object: rebuilds it from a marshalled snapshot,
/// keeping whichever version is newer. Arguments: `(state, version)`.
/// The second return is whether the install was WAL-logged — a recovered
/// object is re-logged under the new cluster's generation, which is what
/// lets garbage collection retire the old generation's segments.
fn restore_object(shared: &Arc<NodeShared>, req: &InvokeReq) -> (CallOutcome, bool) {
    let parsed: Result<(Vec<u8>, u64), _> = simcore::codec::from_bytes(&req.args);
    let (state, version) = match parsed {
        Ok(p) => p,
        Err(e) => {
            return (
                CallOutcome::Reply(
                    InvokeResp::Error(crate::error::ObjectError::BadArgs(e.to_string())),
                    Duration::ZERO,
                ),
                false,
            )
        }
    };
    let mut logged = false;
    let mut objects = shared.objects.lock();
    let newer = objects.get(&req.obj).is_none_or(|s| s.version <= version);
    if newer {
        let instance = shared
            .registry
            .create(req.obj.type_name(), &[])
            .and_then(|mut o| o.restore(&state).map(|()| o));
        match instance {
            Ok(obj) => {
                // Passivation records carry no Lamport stamp; the version
                // is a sound floor (stamps advance at least as fast).
                let stored = Stored { obj, rf: req.rf.max(1), version, lamport: version };
                logged = wal_log(shared, &req.obj, &stored, req);
                objects.insert(req.obj.clone(), stored);
            }
            Err(e) => return (CallOutcome::Reply(InvokeResp::Error(e), Duration::ZERO), false),
        }
    }
    let cost =
        crate::object::costs::SIMPLE_OP + crate::object::costs::PER_BYTE * state.len() as u32;
    (
        CallOutcome::Reply(
            InvokeResp::Value { bytes: unit_bytes(), version, lamport: version },
            cost,
        ),
        logged,
    )
}

/// Creates the object for `req` if possible: from the request's creation
/// arguments, or default-constructed for ephemeral objects. Returns
/// `Ok(None)` when a persistent object should instead arrive by transfer.
fn materialize(
    shared: &Arc<NodeShared>,
    req: &InvokeReq,
) -> Result<Option<Stored>, crate::error::ObjectError> {
    let args: Option<&[u8]> = req.create.as_deref();
    let args = match args {
        Some(a) => a,
        None if req.rf <= 1 => &[],
        None => return Ok(None),
    };
    let obj = shared.registry.create(req.obj.type_name(), args)?;
    Ok(Some(Stored { obj, rf: req.rf.max(1), version: 0, lamport: 0 }))
}

/// Charges the CPU cost, wakes deferred callers, replies, and closes the
/// execution span. `logged` marks calls whose effect was WAL-logged:
/// under [`DurabilityLevel::Sync`] their successful replies are parked on
/// the WAL and sent by the daemon once the covering segment PUT returns —
/// the ack contract is "durable at the replying replica". Wakes (deferred
/// blocking-call completions) always reply immediately: the state change
/// that woke them is acknowledged through the waking call itself.
#[allow(clippy::too_many_arguments)]
fn finish(
    ctx: &mut Ctx,
    shared: &Arc<NodeShared>,
    ticket: Ticket,
    reply_to: Option<Addr>,
    tag: Option<u32>,
    outcome: CallOutcome,
    wakes: &[(Ticket, Vec<u8>)],
    logged: bool,
    exec_span: SpanId,
) {
    let cost = match &outcome {
        CallOutcome::Reply(_, c) => *c,
        CallOutcome::Parked(c) => *c,
    };
    if !cost.is_zero() {
        ctx.compute(cost);
    }
    for (t, bytes) in wakes {
        let target = shared.parked.lock().remove(t);
        if let Some(addr) = target {
            let lat = shared.cfg.client_net.sample(ctx.rng());
            // Deferred wakes complete blocking calls; those never come
            // from batches, and version 0 marks "no version observed"
            // (lamport likewise).
            let resp = InvokeResp::Value { bytes: bytes.clone().into(), version: 0, lamport: 0 };
            ctx.reply(addr, resp, lat);
        }
    }
    match outcome {
        CallOutcome::Reply(resp, _) => {
            shared.parked.lock().remove(&ticket);
            if let Some(rt) = reply_to {
                let defer = logged
                    && shared.cfg.durability_level() == DurabilityLevel::Sync
                    && matches!(resp, InvokeResp::Value { .. });
                match (&shared.wal, defer) {
                    (Some(wal), true) => {
                        ctx.metric_incr("dso.sync_deferred_acks");
                        wal.queue_ack(PendingAck { reply_to: rt, tag, resp });
                    }
                    _ => {
                        let lat = shared.cfg.client_net.sample(ctx.rng());
                        reply_tagged(ctx, rt, tag, resp, lat);
                    }
                }
            }
        }
        CallOutcome::Parked(_) => {
            // Ticket stays registered; a later invocation wakes it. The
            // span still closes here: the method body has run, what
            // remains is waiting for another call to complete it.
            ctx.span_annotate(exec_span, "parked", "true");
        }
    }
    ctx.span_end(exec_span);
}
