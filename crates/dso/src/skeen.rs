//! Skeen's total-order multicast, the ordering layer under state machine
//! replication (§5 of the paper: "The current implementation uses Skeen's
//! algorithm" via JGroups TOA).
//!
//! This module is a *pure* protocol state machine: feeding it messages
//! yields actions (sends and deliveries) without any I/O, which makes it
//! directly unit- and property-testable. The DSO server drives it with the
//! simulated network.
//!
//! The protocol, per message `m` multicast to group `G` by initiator `i`:
//!
//! 1. `i` sends `Run(m)` to every member of `G`.
//! 2. Each member stamps `m` with its incremented Lamport clock and sends
//!    the proposal back to `i`, holding `m` as *pending*.
//! 3. `i` takes the maximum proposal as the final timestamp and sends
//!    `Final` to every member.
//! 4. Members deliver pending messages in final-timestamp order, as soon as
//!    no other pending message could receive a smaller timestamp.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::protocol::NodeId;

/// Globally unique multicast-message id: `(initiator, sequence)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Mid {
    /// Initiating node.
    pub node: NodeId,
    /// Initiator-local sequence number.
    pub seq: u64,
}

impl fmt::Debug for Mid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mid({}/{})", self.node.0, self.seq)
    }
}

/// A logical timestamp, made unique by the stamping node's id.
pub type Stamp = (u64, NodeId);

/// Wire messages of the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SkeenMsg<M> {
    /// Step 1: initiator disseminates the payload to the group.
    Run {
        /// Message id.
        mid: Mid,
        /// Full destination group (needed by the initiator for `Final`).
        group: Vec<NodeId>,
        /// Application payload.
        payload: M,
    },
    /// Step 2: member proposes a timestamp to the initiator.
    Propose {
        /// Message id.
        mid: Mid,
        /// Proposed stamp.
        ts: Stamp,
    },
    /// Step 3: initiator announces the agreed (maximum) timestamp.
    Final {
        /// Message id.
        mid: Mid,
        /// Final stamp.
        ts: Stamp,
    },
}

/// An instruction for the driver: either put a message on the wire or hand
/// a payload to the application in total order.
#[derive(Debug, PartialEq)]
pub enum Action<M> {
    /// Send `msg` to node `to` (possibly the local node itself).
    Send {
        /// Destination.
        to: NodeId,
        /// Protocol message.
        msg: SkeenMsg<M>,
    },
    /// Deliver `payload` locally; deliveries happen in the same order at
    /// every group member.
    Deliver {
        /// Message id.
        mid: Mid,
        /// Final stamp (identical at all members).
        ts: Stamp,
        /// Application payload.
        payload: M,
    },
}

struct Pending<M> {
    ts: Stamp,
    is_final: bool,
    payload: M,
}

struct Collecting {
    group: Vec<NodeId>,
    max: Stamp,
    awaiting: usize,
}

/// Per-node protocol state.
///
/// # Examples
///
/// ```
/// use dso::skeen::{Skeen, Action};
/// use dso::protocol::NodeId;
///
/// let (a, b) = (NodeId(0), NodeId(1));
/// let mut sa = Skeen::<String>::new(a);
/// let mut sb = Skeen::<String>::new(b);
/// let (_, actions) = sa.multicast(vec![a, b], "op".to_string());
/// // Drive the messages by hand (normally the server/network does this)…
/// # let mut wire: Vec<(NodeId, NodeId, dso::skeen::SkeenMsg<String>)> = Vec::new();
/// # let mut delivered = 0;
/// # let mut queue: Vec<(NodeId, NodeId, dso::skeen::SkeenMsg<String>)> =
/// #     actions.into_iter().map(|x| match x {
/// #         Action::Send { to, msg } => (a, to, msg),
/// #         _ => unreachable!(),
/// #     }).collect();
/// # while let Some((from, to, msg)) = queue.pop() {
/// #     let node = if to == a { &mut sa } else { &mut sb };
/// #     for act in node.handle(from, msg) {
/// #         match act {
/// #             Action::Send { to: t, msg: m } => queue.push((to, t, m)),
/// #             Action::Deliver { .. } => delivered += 1,
/// #         }
/// #     }
/// # }
/// # assert_eq!(delivered, 2);
/// ```
pub struct Skeen<M> {
    node: NodeId,
    clock: u64,
    next_seq: u64,
    pending: HashMap<Mid, Pending<M>>,
    // Delivery frontier ordered by (stamp, mid).
    order: BTreeMap<(Stamp, Mid), Mid>,
    collecting: HashMap<Mid, Collecting>,
}

impl<M: fmt::Debug> fmt::Debug for Skeen<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Skeen")
            .field("node", &self.node)
            .field("clock", &self.clock)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<M: Clone> Skeen<M> {
    /// Creates the state machine for `node`.
    pub fn new(node: NodeId) -> Skeen<M> {
        Skeen {
            node,
            clock: 0,
            next_seq: 0,
            pending: HashMap::new(),
            order: BTreeMap::new(),
            collecting: HashMap::new(),
        }
    }

    /// Number of messages accepted but not yet delivered locally.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Aborts every in-flight multicast (pending deliveries and open
    /// collections), keeping the logical clock and sequence numbers.
    ///
    /// Called on a view change: a crashed member can never answer its
    /// proposal, so undelivered messages would otherwise block the
    /// delivery queue head forever (view synchrony discards them; the
    /// calling clients time out and retry under the new view).
    pub fn reset(&mut self) {
        self.pending.clear();
        self.order.clear();
        self.collecting.clear();
    }

    /// Starts a multicast of `payload` to `group` (which should include the
    /// local node if it must deliver too).
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn multicast(&mut self, group: Vec<NodeId>, payload: M) -> (Mid, Vec<Action<M>>) {
        assert!(!group.is_empty(), "multicast group must not be empty");
        let mid = Mid { node: self.node, seq: self.next_seq };
        self.next_seq += 1;
        self.collecting.insert(
            mid,
            Collecting { group: group.clone(), max: (0, NodeId(0)), awaiting: group.len() },
        );
        let actions = group
            .iter()
            .map(|&to| Action::Send {
                to,
                msg: SkeenMsg::Run { mid, group: group.clone(), payload: payload.clone() },
            })
            .collect();
        (mid, actions)
    }

    /// Feeds one protocol message; returns resulting sends and deliveries.
    pub fn handle(&mut self, _from: NodeId, msg: SkeenMsg<M>) -> Vec<Action<M>> {
        match msg {
            SkeenMsg::Run { mid, payload, .. } => {
                self.clock += 1;
                let ts: Stamp = (self.clock, self.node);
                self.pending.insert(mid, Pending { ts, is_final: false, payload });
                self.order.insert((ts, mid), mid);
                vec![Action::Send { to: mid.node, msg: SkeenMsg::Propose { mid, ts } }]
            }
            SkeenMsg::Propose { mid, ts } => {
                let done = {
                    let c = match self.collecting.get_mut(&mid) {
                        Some(c) => c,
                        // Late/duplicate proposal for a finished collection.
                        None => return Vec::new(),
                    };
                    if ts > c.max {
                        c.max = ts;
                    }
                    c.awaiting -= 1;
                    c.awaiting == 0
                };
                if !done {
                    return Vec::new();
                }
                // invariant: `done` came from get_mut on this very key above,
                // with no intervening removal.
                let c = self.collecting.remove(&mid).expect("collecting entry");
                c.group
                    .iter()
                    .map(|&to| Action::Send { to, msg: SkeenMsg::Final { mid, ts: c.max } })
                    .collect()
            }
            SkeenMsg::Final { mid, ts } => {
                self.clock = self.clock.max(ts.0);
                if let Some(p) = self.pending.get_mut(&mid) {
                    let old = (p.ts, mid);
                    p.ts = ts;
                    p.is_final = true;
                    self.order.remove(&old);
                    self.order.insert((ts, mid), mid);
                }
                self.drain()
            }
        }
    }

    /// Delivers every head-of-line finalized message.
    fn drain(&mut self) -> Vec<Action<M>> {
        let mut out = Vec::new();
        while let Some((&key, &mid)) = self.order.iter().next() {
            let ((ts, _), mid) = (key, mid);
            let deliverable = self.pending.get(&mid).map(|p| p.is_final).unwrap_or(false);
            if !deliverable {
                break;
            }
            self.order.remove(&(ts, mid));
            // invariant: `deliverable` required pending[mid].is_final just
            // above; order and pending are mutated in lockstep.
            let p = self.pending.remove(&mid).expect("pending entry");
            out.push(Action::Deliver { mid, ts, payload: p.payload });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    type Net<M> = VecDeque<(NodeId, NodeId, SkeenMsg<M>)>; // (from, to, msg)

    /// Drives a set of nodes to quiescence, picking the next in-flight
    /// message with `pick`. Returns per-node delivery logs.
    fn drive<M: Clone + fmt::Debug>(
        nodes: &mut HashMap<NodeId, Skeen<M>>,
        net: &mut Net<M>,
        mut pick: impl FnMut(usize) -> usize,
    ) -> HashMap<NodeId, Vec<(Mid, M)>> {
        let mut logs: HashMap<NodeId, Vec<(Mid, M)>> = HashMap::new();
        while !net.is_empty() {
            let idx = pick(net.len());
            let (from, to, msg) = net.remove(idx).expect("index in range");
            let actions = nodes.get_mut(&to).expect("node exists").handle(from, msg);
            for a in actions {
                match a {
                    Action::Send { to: t, msg: m } => net.push_back((to, t, m)),
                    Action::Deliver { mid, payload, .. } => {
                        logs.entry(to).or_default().push((mid, payload));
                    }
                }
            }
        }
        logs
    }

    fn start<M: Clone>(
        nodes: &mut HashMap<NodeId, Skeen<M>>,
        net: &mut Net<M>,
        initiator: NodeId,
        group: &[NodeId],
        payload: M,
    ) -> Mid {
        let (mid, actions) =
            nodes.get_mut(&initiator).expect("initiator").multicast(group.to_vec(), payload);
        for a in actions {
            match a {
                Action::Send { to, msg } => net.push_back((initiator, to, msg)),
                Action::Deliver { .. } => unreachable!("multicast never delivers directly"),
            }
        }
        mid
    }

    fn make_nodes(n: u32) -> HashMap<NodeId, Skeen<String>> {
        (0..n).map(|i| (NodeId(i), Skeen::new(NodeId(i)))).collect()
    }

    #[test]
    fn single_message_delivered_everywhere() {
        let mut nodes = make_nodes(3);
        let mut net = Net::new();
        let group: Vec<NodeId> = (0..3).map(NodeId).collect();
        start(&mut nodes, &mut net, NodeId(0), &group, "a".to_string());
        let logs = drive(&mut nodes, &mut net, |_| 0);
        for n in &group {
            assert_eq!(logs[n].len(), 1, "node {n:?}");
            assert_eq!(logs[n][0].1, "a");
        }
    }

    #[test]
    fn concurrent_messages_same_order_fifo_network() {
        let mut nodes = make_nodes(3);
        let mut net = Net::new();
        let group: Vec<NodeId> = (0..3).map(NodeId).collect();
        for i in 0..5 {
            let initiator = NodeId(i % 3);
            start(&mut nodes, &mut net, initiator, &group, format!("m{i}"));
        }
        let logs = drive(&mut nodes, &mut net, |_| 0);
        let reference: Vec<_> = logs[&NodeId(0)].iter().map(|(m, _)| *m).collect();
        assert_eq!(reference.len(), 5);
        for n in &group {
            let seq: Vec<_> = logs[n].iter().map(|(m, _)| *m).collect();
            assert_eq!(seq, reference, "node {n:?} diverged");
        }
    }

    #[test]
    fn lifo_network_still_totally_ordered() {
        let mut nodes = make_nodes(4);
        let mut net = Net::new();
        let group: Vec<NodeId> = (0..4).map(NodeId).collect();
        for i in 0..6 {
            start(&mut nodes, &mut net, NodeId(i % 4), &group, format!("m{i}"));
        }
        let logs = drive(&mut nodes, &mut net, |len| len - 1);
        let reference: Vec<_> = logs[&NodeId(0)].iter().map(|(m, _)| *m).collect();
        assert_eq!(reference.len(), 6);
        for n in &group {
            let seq: Vec<_> = logs[n].iter().map(|(m, _)| *m).collect();
            assert_eq!(seq, reference);
        }
    }

    #[test]
    fn two_member_group_latency_is_three_one_way_hops_for_remote() {
        // Structural check used by the latency calibration: for rf=2 the
        // non-initiator replica receives Run, sends Propose, receives
        // Final — three one-way message hops before delivery.
        let mut a = Skeen::<u8>::new(NodeId(0));
        let mut b = Skeen::<u8>::new(NodeId(1));
        let (mid, acts) = a.multicast(vec![NodeId(0), NodeId(1)], 9);
        assert_eq!(acts.len(), 2);
        // Hop 1: Run reaches b.
        let run_msg = acts
            .into_iter()
            .find_map(|x| match x {
                Action::Send { to: NodeId(1), msg } => Some(msg),
                Action::Send { to: NodeId(0), msg } => {
                    // Self-run handled locally.
                    let _ = a.handle(NodeId(0), msg);
                    None
                }
                _ => None,
            })
            .expect("run to b");
        let acts_b = b.handle(NodeId(0), run_msg);
        // Hop 2: Propose back to a (plus a's own self-propose).
        let propose = match &acts_b[0] {
            Action::Send { to, msg } => {
                assert_eq!(*to, NodeId(0));
                msg.clone()
            }
            other => panic!("unexpected {other:?}"),
        };
        let self_propose = SkeenMsg::Propose { mid, ts: (1, NodeId(0)) };
        let _ = a.handle(NodeId(0), self_propose);
        let acts_a = a.handle(NodeId(1), propose);
        // Hop 3: Finals (one reaches b, one loops to a).
        let mut delivered_b = 0;
        for act in acts_a {
            match act {
                Action::Send { to, msg } => {
                    if to == NodeId(1) {
                        for x in b.handle(NodeId(0), msg) {
                            if matches!(x, Action::Deliver { .. }) {
                                delivered_b += 1;
                            }
                        }
                    } else {
                        let _ = a.handle(NodeId(0), msg);
                    }
                }
                Action::Deliver { .. } => {}
            }
        }
        assert_eq!(delivered_b, 1);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_group_rejected() {
        let mut s = Skeen::<u8>::new(NodeId(0));
        let _ = s.multicast(vec![], 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::tests_support::pop_pick;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under arbitrary message interleavings, every group member
        /// delivers the same sequence (total order + agreement), containing
        /// every multicast exactly once (validity, integrity).
        #[test]
        fn total_order_under_random_interleaving(
            n in 2u32..6,
            msgs in 1usize..12,
            picks in proptest::collection::vec(0usize..1000, 0..600),
        ) {
            let group: Vec<NodeId> = (0..n).map(NodeId).collect();
            let mut nodes: std::collections::HashMap<NodeId, Skeen<usize>> =
                group.iter().map(|&i| (i, Skeen::new(i))).collect();
            let mut net = std::collections::VecDeque::new();
            let mut mids = Vec::new();
            for i in 0..msgs {
                let initiator = NodeId((i as u32) % n);
                let (mid, actions) = nodes
                    .get_mut(&initiator)
                    .expect("initiator")
                    .multicast(group.clone(), i);
                mids.push(mid);
                for a in actions {
                    if let Action::Send { to, msg } = a {
                        net.push_back((initiator, to, msg));
                    }
                }
            }
            let mut logs: std::collections::HashMap<NodeId, Vec<Mid>> =
                std::collections::HashMap::new();
            let mut k = 0usize;
            while let Some((from, to, msg)) = pop_pick(&mut net, picks.get(k).copied()) {
                k += 1;
                for a in nodes.get_mut(&to).expect("node").handle(from, msg) {
                    match a {
                        Action::Send { to: t, msg: m } => net.push_back((to, t, m)),
                        Action::Deliver { mid, .. } => logs.entry(to).or_default().push(mid),
                    }
                }
            }
            let reference = logs.get(&NodeId(0)).cloned().unwrap_or_default();
            prop_assert_eq!(reference.len(), msgs, "all messages delivered");
            let mut sorted = reference.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), msgs, "no duplicates");
            for m in &group {
                prop_assert_eq!(logs.get(m).cloned().unwrap_or_default(), reference.clone());
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use std::collections::VecDeque;

    /// Removes an element chosen by `pick % len` (front if `None`).
    pub fn pop_pick<T>(q: &mut VecDeque<T>, pick: Option<usize>) -> Option<T> {
        if q.is_empty() {
            return None;
        }
        let idx = pick.unwrap_or(0) % q.len();
        q.remove(idx)
    }
}
