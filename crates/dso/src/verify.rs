//! History-based verification helpers: checking the DSO layer's headline
//! guarantee — *"objects are wait-free and linearizable"* (§3.1) —
//! against recorded concurrent histories.
//!
//! The general linearizability problem is NP-complete, but the paper's
//! workhorse object (an `AtomicLong` advanced by unit
//! `increment_and_get`s) admits an exact linear-time check:
//!
//! * every returned value must be distinct and form `1..=n`
//!   (each increment takes effect exactly once), and
//! * real-time order must be respected: if operation A *completed* before
//!   operation B *started*, A's linearization point precedes B's, so A's
//!   returned value must be smaller.
//!
//! The same reasoning verifies compare-and-set-based claims (each value
//! claimed exactly once).
//!
//! The weaker modes of the consistency spectrum get their own checkers:
//! [`check_causal`] validates the *session guarantees* (monotonic reads,
//! read-your-writes) that [`crate::ConsistencyMode::Causal`] promises,
//! and [`check_staleness_bound`] validates the virtual-time staleness
//! bound of [`crate::ConsistencyMode::BoundedStaleness`].

use std::time::Duration;

use simcore::SimTime;

/// One completed operation in a concurrent history.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Op {
    /// Invocation time.
    pub start: SimTime,
    /// Response time.
    pub end: SimTime,
    /// The value the operation returned.
    pub value: i64,
}

/// Why a history is not linearizable.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// An operation responded before it was invoked (malformed record).
    Malformed,
    /// Returned values are not exactly `1..=n`: a lost or duplicated
    /// increment.
    NotABijection,
    /// Two non-overlapping operations returned values against their
    /// real-time order.
    RealTimeOrder {
        /// The earlier (completed-first) operation.
        earlier: Op,
        /// The later (started-after) operation.
        later: Op,
    },
    /// A read returned a counter value outside `0..=n` — a state the
    /// object can never have been in.
    ReadOutOfRange(Op),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Malformed => write!(f, "operation responded before it was invoked"),
            Violation::NotABijection => {
                write!(f, "returned values are not a permutation of 1..=n")
            }
            Violation::RealTimeOrder { earlier, later } => write!(
                f,
                "real-time order violated: op ending at {} returned {} but op starting at {} returned {}",
                earlier.end, earlier.value, later.start, later.value
            ),
            Violation::ReadOutOfRange(op) => write!(
                f,
                "read returned {} — a value the counter never held",
                op.value
            ),
        }
    }
}

/// Checks a history of unit `increment_and_get` operations on a counter
/// that started at zero.
///
/// # Errors
///
/// Returns the first [`Violation`] found; `Ok(())` means the history is
/// linearizable.
///
/// # Examples
///
/// ```
/// use dso::verify::{check_unit_counter, Op};
/// use simcore::SimTime;
///
/// let t = SimTime::from_millis;
/// // Two sequential increments in order: fine.
/// let h = vec![
///     Op { start: t(0), end: t(1), value: 1 },
///     Op { start: t(2), end: t(3), value: 2 },
/// ];
/// assert!(check_unit_counter(&h).is_ok());
///
/// // Sequential but values inverted: a real-time violation.
/// let h = vec![
///     Op { start: t(0), end: t(1), value: 2 },
///     Op { start: t(2), end: t(3), value: 1 },
/// ];
/// assert!(check_unit_counter(&h).is_err());
/// ```
pub fn check_unit_counter(history: &[Op]) -> Result<(), Violation> {
    let n = history.len();
    for op in history {
        if op.end < op.start {
            return Err(Violation::Malformed);
        }
    }
    // Values must be exactly 1..=n.
    let mut seen = vec![false; n];
    for op in history {
        if op.value < 1 || op.value > n as i64 || seen[(op.value - 1) as usize] {
            return Err(Violation::NotABijection);
        }
        seen[(op.value - 1) as usize] = true;
    }
    // Real-time order: sort by returned value; each op must not *end*
    // after a later-valued op *starts*... precisely: if a.end < b.start
    // then a.value < b.value. Checking all pairs is O(n²); instead sort
    // by value and verify the running maximum of start times never
    // exceeds the next op's end time the wrong way:
    // for ops ordered by value v1 < v2: require NOT (op2.end < op1.start),
    // i.e. op(v2) must not complete before op(v1) begins.
    let mut by_value: Vec<&Op> = history.iter().collect();
    by_value.sort_by_key(|o| o.value);
    // min over suffix of end times must not precede max over prefix of
    // start times.
    let mut max_start_so_far: Option<&Op> = None;
    for op in &by_value {
        if let Some(prev) = max_start_so_far {
            if op.end < prev.start {
                return Err(Violation::RealTimeOrder { earlier: **op, later: *prev });
            }
        }
        match max_start_so_far {
            Some(p) if p.start >= op.start => {}
            _ => max_start_so_far = Some(op),
        }
    }
    Ok(())
}

/// Checks a history mixing unit increments and plain reads (`get`) on a
/// counter that started at zero — the read-fast-path analogue of
/// [`check_unit_counter`].
///
/// The increments alone must satisfy [`check_unit_counter`]. A read
/// returning `v` linearizes in the window where the counter held `v`:
/// after the increment that produced `v` (if `v > 0`) and before the one
/// producing `v + 1` (if any). Mapping an increment returning `v` to key
/// `2v` and a read returning `v` to key `2v + 1` makes the required
/// linearization order exactly the key order (ties — concurrent reads of
/// the same state — are unordered), so one real-time scan over the merged,
/// key-sorted history decides the whole thing.
///
/// # Errors
///
/// Returns the first [`Violation`] found; `Ok(())` means the combined
/// history is linearizable.
///
/// # Examples
///
/// ```
/// use dso::verify::{check_counter_with_reads, Op};
/// use simcore::SimTime;
///
/// let t = SimTime::from_millis;
/// let incs = vec![
///     Op { start: t(0), end: t(1), value: 1 },
///     Op { start: t(10), end: t(11), value: 2 },
/// ];
/// // A read strictly between the increments must see 1.
/// let reads = vec![Op { start: t(4), end: t(5), value: 1 }];
/// assert!(check_counter_with_reads(&incs, &reads).is_ok());
/// // Seeing 2 there is a real-time violation (stale-future read).
/// let reads = vec![Op { start: t(12), end: t(13), value: 1 }];
/// assert!(check_counter_with_reads(&incs, &reads).is_err());
/// ```
pub fn check_counter_with_reads(incs: &[Op], reads: &[Op]) -> Result<(), Violation> {
    check_unit_counter(incs)?;
    let n = incs.len() as i64;
    for r in reads {
        if r.end < r.start {
            return Err(Violation::Malformed);
        }
        if r.value < 0 || r.value > n {
            return Err(Violation::ReadOutOfRange(*r));
        }
    }
    // Merge, keyed by required linearization order.
    let mut keyed: Vec<(i64, &Op)> = incs
        .iter()
        .map(|o| (2 * o.value, o))
        .chain(reads.iter().map(|o| (2 * o.value + 1, o)))
        .collect();
    keyed.sort_by_key(|(k, _)| *k);
    // Same scan as `check_unit_counter`, except ops sharing a key (reads
    // of the same state) are mutually unordered: each op is compared only
    // against the latest-starting op among *strictly smaller* keys.
    let mut max_start_prev: Option<&Op> = None;
    let mut group_key = i64::MIN;
    let mut group_max: Option<&Op> = None;
    for (k, op) in keyed {
        if k != group_key {
            max_start_prev = match (max_start_prev, group_max) {
                (Some(a), Some(b)) => Some(if a.start >= b.start { a } else { b }),
                (a, None) => a,
                (None, b) => b,
            };
            group_key = k;
            group_max = None;
        }
        if let Some(prev) = max_start_prev {
            if op.end < prev.start {
                return Err(Violation::RealTimeOrder { earlier: *op, later: *prev });
            }
        }
        match group_max {
            Some(g) if g.start >= op.start => {}
            _ => group_max = Some(op),
        }
    }
    Ok(())
}

/// Whether a [`SessionOp`] was a mutation or a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionKind {
    /// A mutating operation; `value` is the counter value it produced.
    Write,
    /// A read; `value` is the counter value it observed.
    Read,
}

/// One completed operation in a *session* history: an [`Op`] attributed
/// to the client (session) that issued it, with its read/write kind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionOp {
    /// The issuing client (session) id.
    pub client: u32,
    /// Invocation time.
    pub start: SimTime,
    /// Response time.
    pub end: SimTime,
    /// Read or write.
    pub kind: SessionKind,
    /// The counter value produced (write) or observed (read).
    pub value: i64,
}

/// Why a session history violates the causal session guarantees.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionViolation {
    /// An operation responded before it was invoked (malformed record).
    Malformed,
    /// A session read a value, then later read an older one.
    MonotonicReads {
        /// The violating session.
        client: u32,
        /// The earlier read (higher value).
        earlier: SessionOp,
        /// The later read that travelled back in time.
        later: SessionOp,
    },
    /// A session failed to observe its own earlier write.
    ReadYourWrites {
        /// The violating session.
        client: u32,
        /// The session's write.
        write: SessionOp,
        /// The later read that missed it.
        read: SessionOp,
    },
}

impl std::fmt::Display for SessionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionViolation::Malformed => {
                write!(f, "operation responded before it was invoked")
            }
            SessionViolation::MonotonicReads { client, earlier, later } => write!(
                f,
                "monotonic reads violated: client {client} read {} then later read {}",
                earlier.value, later.value
            ),
            SessionViolation::ReadYourWrites { client, write, read } => write!(
                f,
                "read-your-writes violated: client {client} wrote {} then read {}",
                write.value, read.value
            ),
        }
    }
}

/// Checks the two *session guarantees* that
/// [`crate::ConsistencyMode::Causal`] promises, over a counter history
/// where values grow monotonically with real time (unit increments):
///
/// * **monotonic reads** — within one session, read values never
///   decrease, and
/// * **read-your-writes** — a session's read never returns a value below
///   its own latest write.
///
/// Operations within a session are sequential (a client issues one call
/// at a time), so ordering each session by invocation time recovers its
/// program order.
///
/// # Errors
///
/// Returns the first [`SessionViolation`] found, scanning sessions in
/// client-id order.
///
/// # Examples
///
/// ```
/// use dso::verify::{check_causal, SessionKind, SessionOp};
/// use simcore::SimTime;
///
/// let t = SimTime::from_millis;
/// let h = vec![
///     SessionOp { client: 0, start: t(0), end: t(1), kind: SessionKind::Write, value: 1 },
///     SessionOp { client: 0, start: t(2), end: t(3), kind: SessionKind::Read, value: 1 },
/// ];
/// assert!(check_causal(&h).is_ok());
///
/// // The same session reading 0 after writing 1 misses its own write.
/// let h = vec![
///     SessionOp { client: 0, start: t(0), end: t(1), kind: SessionKind::Write, value: 1 },
///     SessionOp { client: 0, start: t(2), end: t(3), kind: SessionKind::Read, value: 0 },
/// ];
/// assert!(check_causal(&h).is_err());
/// ```
pub fn check_causal(history: &[SessionOp]) -> Result<(), SessionViolation> {
    let mut sessions: std::collections::BTreeMap<u32, Vec<&SessionOp>> =
        std::collections::BTreeMap::new();
    for op in history {
        if op.end < op.start {
            return Err(SessionViolation::Malformed);
        }
        sessions.entry(op.client).or_default().push(op);
    }
    for (client, mut ops) in sessions {
        ops.sort_by_key(|o| o.start);
        // Highest-valued read/write seen so far in this session; counter
        // values grow with time, so any dip below either is a violation.
        let mut max_read: Option<&SessionOp> = None;
        let mut max_write: Option<&SessionOp> = None;
        for op in ops {
            match op.kind {
                SessionKind::Read => {
                    if let Some(w) = max_write {
                        if op.value < w.value {
                            return Err(SessionViolation::ReadYourWrites {
                                client,
                                write: *w,
                                read: *op,
                            });
                        }
                    }
                    if let Some(r) = max_read {
                        if op.value < r.value {
                            return Err(SessionViolation::MonotonicReads {
                                client,
                                earlier: *r,
                                later: *op,
                            });
                        }
                    }
                    if max_read.is_none_or(|r| op.value > r.value) {
                        max_read = Some(op);
                    }
                }
                SessionKind::Write => {
                    if max_write.is_none_or(|w| op.value > w.value) {
                        max_write = Some(op);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Why a history violates a staleness bound.
#[derive(Clone, Debug, PartialEq)]
pub enum StalenessViolation {
    /// An operation responded before it was invoked (malformed record).
    Malformed,
    /// A read returned a counter value outside `0..=n`.
    ReadOutOfRange(Op),
    /// A read completed before the increment producing its value started.
    FutureRead {
        /// The increment that produced the read's value.
        inc: Op,
        /// The impossible read.
        read: Op,
    },
    /// A read returned a value the counter had moved past more than
    /// `bound` before the read started.
    StaleBeyondBound {
        /// The increment that superseded the read's value.
        superseded_by: Op,
        /// The too-stale read.
        read: Op,
        /// The configured bound.
        bound: Duration,
    },
}

impl std::fmt::Display for StalenessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StalenessViolation::Malformed => {
                write!(f, "operation responded before it was invoked")
            }
            StalenessViolation::ReadOutOfRange(op) => {
                write!(f, "read returned {} — a value the counter never held", op.value)
            }
            StalenessViolation::FutureRead { read, .. } => {
                write!(f, "read returned {} before the producing increment started", read.value)
            }
            StalenessViolation::StaleBeyondBound { read, bound, .. } => write!(
                f,
                "read of {} started more than {bound:?} after the value was superseded",
                read.value
            ),
        }
    }
}

/// Checks the contract of [`crate::ConsistencyMode::BoundedStaleness`]:
/// every read returns a value the counter held *within the last `bound`*
/// of virtual time.
///
/// The increments must themselves be linearizable
/// ([`check_unit_counter`] — writes still go through the primary). The
/// staleness rule is conservative (it only reports certain violations): a
/// read of value `v` is flagged iff the increment producing `v + 1`
/// *completed* more than `bound` before the read *started* — by then even
/// a lease granted at the last possible validation has expired. Reads are
/// also checked against the future: a read cannot return a value whose
/// producing increment had not started when the read completed.
///
/// # Errors
///
/// Returns the first violation found, reads scanned in input order;
/// failures of the increments-only check are reported through
/// [`StalenessViolation::Malformed`]/[`ReadOutOfRange`](StalenessViolation::ReadOutOfRange)
/// equivalents of the underlying [`Violation`].
pub fn check_staleness_bound(
    incs: &[Op],
    reads: &[Op],
    bound: Duration,
) -> Result<(), StalenessViolation> {
    if check_unit_counter(incs).is_err() {
        return Err(StalenessViolation::Malformed);
    }
    let n = incs.len() as i64;
    // Bijection holds, so value v (1-based) indexes its increment.
    let mut by_value: Vec<&Op> = incs.iter().collect();
    by_value.sort_by_key(|o| o.value);
    for r in reads {
        if r.end < r.start {
            return Err(StalenessViolation::Malformed);
        }
        if r.value < 0 || r.value > n {
            return Err(StalenessViolation::ReadOutOfRange(*r));
        }
        if r.value > 0 {
            let inc = by_value[(r.value - 1) as usize];
            if r.end < inc.start {
                return Err(StalenessViolation::FutureRead { inc: *inc, read: *r });
            }
        }
        if r.value < n {
            let next = by_value[r.value as usize];
            if next.end + bound < r.start {
                return Err(StalenessViolation::StaleBeyondBound {
                    superseded_by: *next,
                    read: *r,
                    bound,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(start_ms: u64, end_ms: u64, value: i64) -> Op {
        Op { start: SimTime::from_millis(start_ms), end: SimTime::from_millis(end_ms), value }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_unit_counter(&[]).is_ok());
    }

    #[test]
    fn overlapping_ops_may_return_any_order() {
        // Both ops overlap in [0, 10]: either may linearize first.
        let h = vec![op(0, 10, 2), op(1, 9, 1)];
        assert!(check_unit_counter(&h).is_ok());
        let h = vec![op(0, 10, 1), op(1, 9, 2)];
        assert!(check_unit_counter(&h).is_ok());
    }

    #[test]
    fn sequential_inversion_is_caught() {
        let h = vec![op(0, 1, 2), op(5, 6, 1)];
        let err = check_unit_counter(&h).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }));
    }

    #[test]
    fn duplicate_value_is_caught() {
        let h = vec![op(0, 1, 1), op(2, 3, 1)];
        assert_eq!(check_unit_counter(&h).unwrap_err(), Violation::NotABijection);
    }

    #[test]
    fn lost_increment_is_caught() {
        let h = vec![op(0, 1, 1), op(2, 3, 3)];
        assert_eq!(check_unit_counter(&h).unwrap_err(), Violation::NotABijection);
    }

    #[test]
    fn malformed_op_is_caught() {
        let h = vec![op(5, 1, 1)];
        assert_eq!(check_unit_counter(&h).unwrap_err(), Violation::Malformed);
    }

    #[test]
    fn chain_of_overlaps_is_fine() {
        // 1 overlaps 2, 2 overlaps 3, but 1 and 3 are disjoint with
        // increasing values: linearizable.
        let h = vec![op(0, 4, 1), op(3, 8, 2), op(7, 12, 3)];
        assert!(check_unit_counter(&h).is_ok());
    }

    #[test]
    fn transitive_real_time_violation_is_caught() {
        // op(3) completes entirely before op(2) starts: impossible.
        let h = vec![op(0, 20, 1), op(10, 11, 3), op(15, 16, 2)];
        let err = check_unit_counter(&h).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }), "{err}");
    }

    #[test]
    fn violation_display() {
        let err = check_unit_counter(&[op(0, 1, 2), op(5, 6, 1)]).unwrap_err();
        assert!(err.to_string().contains("real-time order"));
        assert!(Violation::NotABijection.to_string().contains("permutation"));
        assert!(Violation::ReadOutOfRange(op(0, 1, 9)).to_string().contains("never held"));
    }

    #[test]
    fn reads_between_increments_are_fine() {
        let incs = vec![op(0, 1, 1), op(10, 11, 2)];
        let reads = vec![op(2, 3, 1), op(4, 5, 1), op(12, 13, 2)];
        assert!(check_counter_with_reads(&incs, &reads).is_ok());
    }

    #[test]
    fn read_before_any_increment_sees_zero() {
        let incs = vec![op(10, 11, 1)];
        assert!(check_counter_with_reads(&incs, &[op(0, 1, 0)]).is_ok());
        // Seeing 0 *after* the increment completed is a violation.
        let err = check_counter_with_reads(&incs, &[op(20, 21, 0)]).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }), "{err}");
    }

    #[test]
    fn stale_read_after_later_increment_is_caught() {
        let incs = vec![op(0, 1, 1), op(10, 11, 2)];
        // Read starting after inc(2) completed must not return 1.
        let err = check_counter_with_reads(&incs, &[op(15, 16, 1)]).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }), "{err}");
    }

    #[test]
    fn future_read_before_increment_is_caught() {
        let incs = vec![op(10, 11, 1)];
        // Read completing before inc(1) even started cannot return 1.
        let err = check_counter_with_reads(&incs, &[op(0, 1, 1)]).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }), "{err}");
    }

    #[test]
    fn read_out_of_range_is_caught() {
        let incs = vec![op(0, 1, 1)];
        assert_eq!(
            check_counter_with_reads(&incs, &[op(2, 3, 7)]).unwrap_err(),
            Violation::ReadOutOfRange(op(2, 3, 7))
        );
        assert_eq!(
            check_counter_with_reads(&incs, &[op(2, 3, -1)]).unwrap_err(),
            Violation::ReadOutOfRange(op(2, 3, -1))
        );
    }

    #[test]
    fn concurrent_reads_of_same_state_are_unordered() {
        // Two disjoint reads returning the same value: both observe the
        // state between the increments — fine in either order.
        let incs = vec![op(0, 1, 1), op(100, 101, 2)];
        let reads = vec![op(10, 11, 1), op(20, 21, 1)];
        assert!(check_counter_with_reads(&incs, &reads).is_ok());
    }

    #[test]
    fn overlapping_read_may_see_either_side() {
        let incs = vec![op(10, 20, 1)];
        // Read overlapping the increment can return 0 or 1.
        assert!(check_counter_with_reads(&incs, &[op(5, 15, 0)]).is_ok());
        assert!(check_counter_with_reads(&incs, &[op(5, 15, 1)]).is_ok());
    }

    #[test]
    fn bad_increments_fail_regardless_of_reads() {
        let incs = vec![op(0, 1, 1), op(2, 3, 1)];
        assert_eq!(check_counter_with_reads(&incs, &[]).unwrap_err(), Violation::NotABijection);
    }

    fn sop(client: u32, start_ms: u64, kind: SessionKind, value: i64) -> SessionOp {
        SessionOp {
            client,
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(start_ms + 1),
            kind,
            value,
        }
    }

    #[test]
    fn causal_sessions_are_independent() {
        use SessionKind::{Read, Write};
        // Client 0 advances; client 1 reads older values — fine, the
        // guarantees are per-session.
        let h = vec![
            sop(0, 0, Write, 1),
            sop(0, 10, Write, 2),
            sop(0, 20, Read, 2),
            sop(1, 25, Read, 1),
            sop(1, 30, Read, 1),
            sop(1, 40, Read, 2),
        ];
        assert!(check_causal(&h).is_ok());
        assert!(check_causal(&[]).is_ok());
    }

    #[test]
    fn causal_catches_non_monotonic_reads() {
        use SessionKind::Read;
        let h = vec![sop(3, 0, Read, 5), sop(3, 10, Read, 4)];
        let err = check_causal(&h).unwrap_err();
        assert!(matches!(err, SessionViolation::MonotonicReads { client: 3, .. }), "{err}");
        assert!(err.to_string().contains("monotonic reads"));
        // Record order must not matter: sessions are re-sorted by start.
        let h = vec![sop(3, 10, Read, 4), sop(3, 0, Read, 5)];
        assert!(check_causal(&h).is_err());
    }

    #[test]
    fn causal_catches_missed_own_write() {
        use SessionKind::{Read, Write};
        let h = vec![sop(7, 0, Write, 3), sop(7, 10, Read, 2)];
        let err = check_causal(&h).unwrap_err();
        assert!(matches!(err, SessionViolation::ReadYourWrites { client: 7, .. }), "{err}");
        assert!(err.to_string().contains("read-your-writes"));
    }

    #[test]
    fn causal_catches_malformed_records() {
        let bad = SessionOp {
            client: 0,
            start: SimTime::from_millis(5),
            end: SimTime::from_millis(1),
            kind: SessionKind::Read,
            value: 0,
        };
        assert_eq!(check_causal(&[bad]).unwrap_err(), SessionViolation::Malformed);
    }

    #[test]
    fn staleness_bound_accepts_reads_within_the_lease() {
        let bound = Duration::from_millis(10);
        let incs = vec![op(0, 1, 1), op(100, 101, 2)];
        // Reading 1 up to 101ms + 10ms after it was superseded is fine...
        assert!(check_staleness_bound(&incs, &[op(105, 106, 1)], bound).is_ok());
        // ...but starting a read of 1 well past the bound is not.
        let err = check_staleness_bound(&incs, &[op(150, 151, 1)], bound).unwrap_err();
        assert!(matches!(err, StalenessViolation::StaleBeyondBound { .. }), "{err}");
        assert!(err.to_string().contains("superseded"));
        // The newest value is never stale.
        assert!(check_staleness_bound(&incs, &[op(10_000, 10_001, 2)], bound).is_ok());
    }

    #[test]
    fn staleness_bound_still_rejects_impossible_reads() {
        let bound = Duration::from_millis(10);
        let incs = vec![op(100, 101, 1)];
        // Value from the future: inc(1) had not started when the read
        // completed.
        let err = check_staleness_bound(&incs, &[op(0, 1, 1)], bound).unwrap_err();
        assert!(matches!(err, StalenessViolation::FutureRead { .. }), "{err}");
        assert_eq!(
            check_staleness_bound(&incs, &[op(0, 1, 9)], bound).unwrap_err(),
            StalenessViolation::ReadOutOfRange(op(0, 1, 9))
        );
        assert_eq!(
            check_staleness_bound(&incs, &[op(5, 1, 0)], bound).unwrap_err(),
            StalenessViolation::Malformed
        );
        // Broken increments surface as malformed regardless of reads.
        assert_eq!(
            check_staleness_bound(&[op(0, 1, 1), op(2, 3, 1)], &[], bound).unwrap_err(),
            StalenessViolation::Malformed
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Generates a linearizable history by construction: pick linearization
    /// points in order, then wrap each in an interval containing it.
    fn linearizable_history(n: usize, widths: &[u64]) -> Vec<Op> {
        (0..n)
            .map(|i| {
                let point = (i as u64 + 1) * 1000;
                let w = widths.get(i).copied().unwrap_or(0) % 900;
                Op {
                    start: SimTime::from_nanos(point - w),
                    end: SimTime::from_nanos(point + w),
                    value: i as i64 + 1,
                }
            })
            .collect()
    }

    proptest! {
        #[test]
        fn constructed_linearizable_histories_pass(
            n in 0usize..40,
            widths in proptest::collection::vec(0u64..100_000, 0..40),
            shuffle_seed in 0u64..1000,
        ) {
            let mut h = linearizable_history(n, &widths);
            // Record order must not matter: rotate deterministically.
            if !h.is_empty() {
                let k = (shuffle_seed as usize) % h.len();
                h.rotate_left(k);
            }
            prop_assert!(check_unit_counter(&h).is_ok());
        }

        #[test]
        fn linearizable_histories_with_reads_pass(
            n in 1usize..30,
            read_slots in proptest::collection::vec((0usize..30, 0u64..900), 0..60),
        ) {
            let incs = linearizable_history(n, &[]);
            // A read in slot i (after the i-th increment) returns i; the
            // i-th increment linearizes at (i+1)*1000, so place the read
            // strictly inside (i*1000, (i+1)*1000).
            let reads: Vec<Op> = read_slots
                .iter()
                .map(|&(slot, jitter)| {
                    let v = slot % (n + 1);
                    let base = v as u64 * 1000;
                    Op {
                        start: SimTime::from_nanos(base + 10 + jitter.min(880)),
                        end: SimTime::from_nanos(base + 20 + jitter.min(880)),
                        value: v as i64,
                    }
                })
                .collect();
            prop_assert!(check_counter_with_reads(&incs, &reads).is_ok());
        }

        #[test]
        fn displaced_disjoint_read_fails(
            n in 2usize..30,
            slot in 0usize..30,
            wrong in 0usize..30,
        ) {
            let incs = linearizable_history(n, &[]);
            let v = slot % (n + 1);
            let wrong_v = wrong % (n + 1);
            prop_assume!(wrong_v != v);
            // A zero-jitter read inside slot v that *returns* a different
            // value is disjoint from every op of the other slot: always a
            // violation.
            let read = Op {
                start: SimTime::from_nanos(v as u64 * 1000 + 100),
                end: SimTime::from_nanos(v as u64 * 1000 + 200),
                value: wrong_v as i64,
            };
            prop_assert!(check_counter_with_reads(&incs, &[read]).is_err());
        }

        #[test]
        fn lagged_session_reads_satisfy_causal_when_frontiers_are_respected(
            // Each event: (client, is_write, lag) over a global counter.
            events in proptest::collection::vec((0u32..4, any::<bool>(), 0i64..5), 1..120),
        ) {
            // Model of the causal policy: a session may read any lagged
            // value of the global counter, clamped to its own frontier
            // (max of everything it has read or written) — which is
            // exactly what the Lamport-frontier admission enforces.
            let mut global = 0i64;
            let mut frontier = [0i64; 4];
            let mut t = 0u64;
            let mut h = Vec::new();
            for (client, is_write, lag) in events {
                t += 10;
                let c = client as usize;
                if is_write {
                    global += 1;
                    frontier[c] = frontier[c].max(global);
                    h.push(SessionOp {
                        client,
                        start: SimTime::from_millis(t),
                        end: SimTime::from_millis(t + 1),
                        kind: SessionKind::Write,
                        value: global,
                    });
                } else {
                    let v = (global - lag).max(frontier[c]);
                    frontier[c] = frontier[c].max(v);
                    h.push(SessionOp {
                        client,
                        start: SimTime::from_millis(t),
                        end: SimTime::from_millis(t + 1),
                        kind: SessionKind::Read,
                        value: v,
                    });
                }
            }
            prop_assert!(check_causal(&h).is_ok());
        }

        #[test]
        fn bounded_lag_reads_satisfy_the_matching_staleness_bound(
            n in 1usize..30,
            read_slots in proptest::collection::vec((1usize..30, 0u64..2000), 0..40),
        ) {
            // Increments at 1000ns, 2000ns, ...; a read at time T of the
            // value current at T - lag (lag ≤ bound) must pass the check
            // with that bound.
            let bound_ns = 1500u64;
            let incs = linearizable_history(n, &[]);
            let reads: Vec<Op> = read_slots
                .iter()
                .map(|&(slot, jitter)| {
                    let at = (slot % n + 1) as u64 * 1000 + 500;
                    let lag = jitter.min(bound_ns);
                    let effective = at.saturating_sub(lag);
                    // Value current at `effective`: increments linearize at
                    // multiples of 1000.
                    let v = (effective / 1000).min(n as u64) as i64;
                    Op {
                        start: SimTime::from_nanos(at),
                        end: SimTime::from_nanos(at + 10),
                        value: v,
                    }
                })
                .collect();
            prop_assert!(check_staleness_bound(
                &incs,
                &reads,
                Duration::from_nanos(bound_ns)
            ).is_ok());
        }

        #[test]
        fn swapping_values_of_disjoint_ops_fails(
            n in 2usize..40,
            i in 0usize..40,
            j in 0usize..40,
        ) {
            let mut h = linearizable_history(n, &[]);
            let (i, j) = (i % n, j % n);
            prop_assume!(i != j);
            let vi = h[i].value;
            let vj = h[j].value;
            h[i].value = vj;
            h[j].value = vi;
            // Zero-width intervals at distinct points are all disjoint, so
            // any swap breaks real-time order.
            prop_assert!(check_unit_counter(&h).is_err());
        }
    }
}
