//! History-based verification helpers: checking the DSO layer's headline
//! guarantee — *"objects are wait-free and linearizable"* (§3.1) —
//! against recorded concurrent histories.
//!
//! The general linearizability problem is NP-complete, but the paper's
//! workhorse object (an `AtomicLong` advanced by unit
//! `increment_and_get`s) admits an exact linear-time check:
//!
//! * every returned value must be distinct and form `1..=n`
//!   (each increment takes effect exactly once), and
//! * real-time order must be respected: if operation A *completed* before
//!   operation B *started*, A's linearization point precedes B's, so A's
//!   returned value must be smaller.
//!
//! The same reasoning verifies compare-and-set-based claims (each value
//! claimed exactly once).

use simcore::SimTime;

/// One completed operation in a concurrent history.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Op {
    /// Invocation time.
    pub start: SimTime,
    /// Response time.
    pub end: SimTime,
    /// The value the operation returned.
    pub value: i64,
}

/// Why a history is not linearizable.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// An operation responded before it was invoked (malformed record).
    Malformed,
    /// Returned values are not exactly `1..=n`: a lost or duplicated
    /// increment.
    NotABijection,
    /// Two non-overlapping operations returned values against their
    /// real-time order.
    RealTimeOrder {
        /// The earlier (completed-first) operation.
        earlier: Op,
        /// The later (started-after) operation.
        later: Op,
    },
    /// A read returned a counter value outside `0..=n` — a state the
    /// object can never have been in.
    ReadOutOfRange(Op),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Malformed => write!(f, "operation responded before it was invoked"),
            Violation::NotABijection => {
                write!(f, "returned values are not a permutation of 1..=n")
            }
            Violation::RealTimeOrder { earlier, later } => write!(
                f,
                "real-time order violated: op ending at {} returned {} but op starting at {} returned {}",
                earlier.end, earlier.value, later.start, later.value
            ),
            Violation::ReadOutOfRange(op) => write!(
                f,
                "read returned {} — a value the counter never held",
                op.value
            ),
        }
    }
}

/// Checks a history of unit `increment_and_get` operations on a counter
/// that started at zero.
///
/// # Errors
///
/// Returns the first [`Violation`] found; `Ok(())` means the history is
/// linearizable.
///
/// # Examples
///
/// ```
/// use dso::verify::{check_unit_counter, Op};
/// use simcore::SimTime;
///
/// let t = SimTime::from_millis;
/// // Two sequential increments in order: fine.
/// let h = vec![
///     Op { start: t(0), end: t(1), value: 1 },
///     Op { start: t(2), end: t(3), value: 2 },
/// ];
/// assert!(check_unit_counter(&h).is_ok());
///
/// // Sequential but values inverted: a real-time violation.
/// let h = vec![
///     Op { start: t(0), end: t(1), value: 2 },
///     Op { start: t(2), end: t(3), value: 1 },
/// ];
/// assert!(check_unit_counter(&h).is_err());
/// ```
pub fn check_unit_counter(history: &[Op]) -> Result<(), Violation> {
    let n = history.len();
    for op in history {
        if op.end < op.start {
            return Err(Violation::Malformed);
        }
    }
    // Values must be exactly 1..=n.
    let mut seen = vec![false; n];
    for op in history {
        if op.value < 1 || op.value > n as i64 || seen[(op.value - 1) as usize] {
            return Err(Violation::NotABijection);
        }
        seen[(op.value - 1) as usize] = true;
    }
    // Real-time order: sort by returned value; each op must not *end*
    // after a later-valued op *starts*... precisely: if a.end < b.start
    // then a.value < b.value. Checking all pairs is O(n²); instead sort
    // by value and verify the running maximum of start times never
    // exceeds the next op's end time the wrong way:
    // for ops ordered by value v1 < v2: require NOT (op2.end < op1.start),
    // i.e. op(v2) must not complete before op(v1) begins.
    let mut by_value: Vec<&Op> = history.iter().collect();
    by_value.sort_by_key(|o| o.value);
    // min over suffix of end times must not precede max over prefix of
    // start times.
    let mut max_start_so_far: Option<&Op> = None;
    for op in &by_value {
        if let Some(prev) = max_start_so_far {
            if op.end < prev.start {
                return Err(Violation::RealTimeOrder { earlier: **op, later: *prev });
            }
        }
        match max_start_so_far {
            Some(p) if p.start >= op.start => {}
            _ => max_start_so_far = Some(op),
        }
    }
    Ok(())
}

/// Checks a history mixing unit increments and plain reads (`get`) on a
/// counter that started at zero — the read-fast-path analogue of
/// [`check_unit_counter`].
///
/// The increments alone must satisfy [`check_unit_counter`]. A read
/// returning `v` linearizes in the window where the counter held `v`:
/// after the increment that produced `v` (if `v > 0`) and before the one
/// producing `v + 1` (if any). Mapping an increment returning `v` to key
/// `2v` and a read returning `v` to key `2v + 1` makes the required
/// linearization order exactly the key order (ties — concurrent reads of
/// the same state — are unordered), so one real-time scan over the merged,
/// key-sorted history decides the whole thing.
///
/// # Errors
///
/// Returns the first [`Violation`] found; `Ok(())` means the combined
/// history is linearizable.
///
/// # Examples
///
/// ```
/// use dso::verify::{check_counter_with_reads, Op};
/// use simcore::SimTime;
///
/// let t = SimTime::from_millis;
/// let incs = vec![
///     Op { start: t(0), end: t(1), value: 1 },
///     Op { start: t(10), end: t(11), value: 2 },
/// ];
/// // A read strictly between the increments must see 1.
/// let reads = vec![Op { start: t(4), end: t(5), value: 1 }];
/// assert!(check_counter_with_reads(&incs, &reads).is_ok());
/// // Seeing 2 there is a real-time violation (stale-future read).
/// let reads = vec![Op { start: t(12), end: t(13), value: 1 }];
/// assert!(check_counter_with_reads(&incs, &reads).is_err());
/// ```
pub fn check_counter_with_reads(incs: &[Op], reads: &[Op]) -> Result<(), Violation> {
    check_unit_counter(incs)?;
    let n = incs.len() as i64;
    for r in reads {
        if r.end < r.start {
            return Err(Violation::Malformed);
        }
        if r.value < 0 || r.value > n {
            return Err(Violation::ReadOutOfRange(*r));
        }
    }
    // Merge, keyed by required linearization order.
    let mut keyed: Vec<(i64, &Op)> = incs
        .iter()
        .map(|o| (2 * o.value, o))
        .chain(reads.iter().map(|o| (2 * o.value + 1, o)))
        .collect();
    keyed.sort_by_key(|(k, _)| *k);
    // Same scan as `check_unit_counter`, except ops sharing a key (reads
    // of the same state) are mutually unordered: each op is compared only
    // against the latest-starting op among *strictly smaller* keys.
    let mut max_start_prev: Option<&Op> = None;
    let mut group_key = i64::MIN;
    let mut group_max: Option<&Op> = None;
    for (k, op) in keyed {
        if k != group_key {
            max_start_prev = match (max_start_prev, group_max) {
                (Some(a), Some(b)) => Some(if a.start >= b.start { a } else { b }),
                (a, None) => a,
                (None, b) => b,
            };
            group_key = k;
            group_max = None;
        }
        if let Some(prev) = max_start_prev {
            if op.end < prev.start {
                return Err(Violation::RealTimeOrder { earlier: *op, later: *prev });
            }
        }
        match group_max {
            Some(g) if g.start >= op.start => {}
            _ => group_max = Some(op),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(start_ms: u64, end_ms: u64, value: i64) -> Op {
        Op { start: SimTime::from_millis(start_ms), end: SimTime::from_millis(end_ms), value }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_unit_counter(&[]).is_ok());
    }

    #[test]
    fn overlapping_ops_may_return_any_order() {
        // Both ops overlap in [0, 10]: either may linearize first.
        let h = vec![op(0, 10, 2), op(1, 9, 1)];
        assert!(check_unit_counter(&h).is_ok());
        let h = vec![op(0, 10, 1), op(1, 9, 2)];
        assert!(check_unit_counter(&h).is_ok());
    }

    #[test]
    fn sequential_inversion_is_caught() {
        let h = vec![op(0, 1, 2), op(5, 6, 1)];
        let err = check_unit_counter(&h).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }));
    }

    #[test]
    fn duplicate_value_is_caught() {
        let h = vec![op(0, 1, 1), op(2, 3, 1)];
        assert_eq!(check_unit_counter(&h).unwrap_err(), Violation::NotABijection);
    }

    #[test]
    fn lost_increment_is_caught() {
        let h = vec![op(0, 1, 1), op(2, 3, 3)];
        assert_eq!(check_unit_counter(&h).unwrap_err(), Violation::NotABijection);
    }

    #[test]
    fn malformed_op_is_caught() {
        let h = vec![op(5, 1, 1)];
        assert_eq!(check_unit_counter(&h).unwrap_err(), Violation::Malformed);
    }

    #[test]
    fn chain_of_overlaps_is_fine() {
        // 1 overlaps 2, 2 overlaps 3, but 1 and 3 are disjoint with
        // increasing values: linearizable.
        let h = vec![op(0, 4, 1), op(3, 8, 2), op(7, 12, 3)];
        assert!(check_unit_counter(&h).is_ok());
    }

    #[test]
    fn transitive_real_time_violation_is_caught() {
        // op(3) completes entirely before op(2) starts: impossible.
        let h = vec![op(0, 20, 1), op(10, 11, 3), op(15, 16, 2)];
        let err = check_unit_counter(&h).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }), "{err}");
    }

    #[test]
    fn violation_display() {
        let err = check_unit_counter(&[op(0, 1, 2), op(5, 6, 1)]).unwrap_err();
        assert!(err.to_string().contains("real-time order"));
        assert!(Violation::NotABijection.to_string().contains("permutation"));
        assert!(Violation::ReadOutOfRange(op(0, 1, 9)).to_string().contains("never held"));
    }

    #[test]
    fn reads_between_increments_are_fine() {
        let incs = vec![op(0, 1, 1), op(10, 11, 2)];
        let reads = vec![op(2, 3, 1), op(4, 5, 1), op(12, 13, 2)];
        assert!(check_counter_with_reads(&incs, &reads).is_ok());
    }

    #[test]
    fn read_before_any_increment_sees_zero() {
        let incs = vec![op(10, 11, 1)];
        assert!(check_counter_with_reads(&incs, &[op(0, 1, 0)]).is_ok());
        // Seeing 0 *after* the increment completed is a violation.
        let err = check_counter_with_reads(&incs, &[op(20, 21, 0)]).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }), "{err}");
    }

    #[test]
    fn stale_read_after_later_increment_is_caught() {
        let incs = vec![op(0, 1, 1), op(10, 11, 2)];
        // Read starting after inc(2) completed must not return 1.
        let err = check_counter_with_reads(&incs, &[op(15, 16, 1)]).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }), "{err}");
    }

    #[test]
    fn future_read_before_increment_is_caught() {
        let incs = vec![op(10, 11, 1)];
        // Read completing before inc(1) even started cannot return 1.
        let err = check_counter_with_reads(&incs, &[op(0, 1, 1)]).unwrap_err();
        assert!(matches!(err, Violation::RealTimeOrder { .. }), "{err}");
    }

    #[test]
    fn read_out_of_range_is_caught() {
        let incs = vec![op(0, 1, 1)];
        assert_eq!(
            check_counter_with_reads(&incs, &[op(2, 3, 7)]).unwrap_err(),
            Violation::ReadOutOfRange(op(2, 3, 7))
        );
        assert_eq!(
            check_counter_with_reads(&incs, &[op(2, 3, -1)]).unwrap_err(),
            Violation::ReadOutOfRange(op(2, 3, -1))
        );
    }

    #[test]
    fn concurrent_reads_of_same_state_are_unordered() {
        // Two disjoint reads returning the same value: both observe the
        // state between the increments — fine in either order.
        let incs = vec![op(0, 1, 1), op(100, 101, 2)];
        let reads = vec![op(10, 11, 1), op(20, 21, 1)];
        assert!(check_counter_with_reads(&incs, &reads).is_ok());
    }

    #[test]
    fn overlapping_read_may_see_either_side() {
        let incs = vec![op(10, 20, 1)];
        // Read overlapping the increment can return 0 or 1.
        assert!(check_counter_with_reads(&incs, &[op(5, 15, 0)]).is_ok());
        assert!(check_counter_with_reads(&incs, &[op(5, 15, 1)]).is_ok());
    }

    #[test]
    fn bad_increments_fail_regardless_of_reads() {
        let incs = vec![op(0, 1, 1), op(2, 3, 1)];
        assert_eq!(check_counter_with_reads(&incs, &[]).unwrap_err(), Violation::NotABijection);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Generates a linearizable history by construction: pick linearization
    /// points in order, then wrap each in an interval containing it.
    fn linearizable_history(n: usize, widths: &[u64]) -> Vec<Op> {
        (0..n)
            .map(|i| {
                let point = (i as u64 + 1) * 1000;
                let w = widths.get(i).copied().unwrap_or(0) % 900;
                Op {
                    start: SimTime::from_nanos(point - w),
                    end: SimTime::from_nanos(point + w),
                    value: i as i64 + 1,
                }
            })
            .collect()
    }

    proptest! {
        #[test]
        fn constructed_linearizable_histories_pass(
            n in 0usize..40,
            widths in proptest::collection::vec(0u64..100_000, 0..40),
            shuffle_seed in 0u64..1000,
        ) {
            let mut h = linearizable_history(n, &widths);
            // Record order must not matter: rotate deterministically.
            if !h.is_empty() {
                let k = (shuffle_seed as usize) % h.len();
                h.rotate_left(k);
            }
            prop_assert!(check_unit_counter(&h).is_ok());
        }

        #[test]
        fn linearizable_histories_with_reads_pass(
            n in 1usize..30,
            read_slots in proptest::collection::vec((0usize..30, 0u64..900), 0..60),
        ) {
            let incs = linearizable_history(n, &[]);
            // A read in slot i (after the i-th increment) returns i; the
            // i-th increment linearizes at (i+1)*1000, so place the read
            // strictly inside (i*1000, (i+1)*1000).
            let reads: Vec<Op> = read_slots
                .iter()
                .map(|&(slot, jitter)| {
                    let v = slot % (n + 1);
                    let base = v as u64 * 1000;
                    Op {
                        start: SimTime::from_nanos(base + 10 + jitter.min(880)),
                        end: SimTime::from_nanos(base + 20 + jitter.min(880)),
                        value: v as i64,
                    }
                })
                .collect();
            prop_assert!(check_counter_with_reads(&incs, &reads).is_ok());
        }

        #[test]
        fn displaced_disjoint_read_fails(
            n in 2usize..30,
            slot in 0usize..30,
            wrong in 0usize..30,
        ) {
            let incs = linearizable_history(n, &[]);
            let v = slot % (n + 1);
            let wrong_v = wrong % (n + 1);
            prop_assume!(wrong_v != v);
            // A zero-jitter read inside slot v that *returns* a different
            // value is disjoint from every op of the other slot: always a
            // violation.
            let read = Op {
                start: SimTime::from_nanos(v as u64 * 1000 + 100),
                end: SimTime::from_nanos(v as u64 * 1000 + 200),
                value: wrong_v as i64,
            };
            prop_assert!(check_counter_with_reads(&incs, &[read]).is_err());
        }

        #[test]
        fn swapping_values_of_disjoint_ops_fails(
            n in 2usize..40,
            i in 0usize..40,
            j in 0usize..40,
        ) {
            let mut h = linearizable_history(n, &[]);
            let (i, j) = (i % n, j % n);
            prop_assume!(i != j);
            let vi = h[i].value;
            let vj = h[j].value;
            h[i].value = vj;
            h[j].value = vi;
            // Zero-width intervals at distinct points are all disjoint, so
            // any swap breaks real-time order.
            prop_assert!(check_unit_counter(&h).is_err());
        }
    }
}
