//! End-to-end tests of the DSO layer: clients, servers, SMR, membership
//! changes and crash-failover.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::{Sim, SimTime};

use dso::api;
use dso::{DsoCluster, DsoConfig, ObjectRegistry};

fn start(sim: &Sim, nodes: u32) -> DsoCluster {
    DsoCluster::start(sim, nodes, DsoConfig::default(), ObjectRegistry::with_builtins())
}

#[test]
fn concurrent_counter_updates_are_atomic() {
    let mut sim = Sim::new(11);
    let cluster = start(&sim, 2);
    let handle = cluster.client_handle();
    const THREADS: usize = 20;
    const OPS: i64 = 25;
    for t in 0..THREADS {
        let handle = handle.clone();
        sim.spawn(&format!("t{t}"), move |ctx| {
            let mut cli = handle.connect();
            let counter = api::AtomicLong::new("shared-counter");
            for _ in 0..OPS {
                counter.add_and_get(ctx, &mut cli, 1).expect("reachable");
            }
        });
    }
    let total = Arc::new(Mutex::new(0i64));
    let total2 = total.clone();
    let handle2 = handle.clone();
    sim.spawn("checker", move |ctx| {
        // Run after the writers by sleeping past their work.
        ctx.sleep(Duration::from_secs(30));
        let mut cli = handle2.connect();
        let counter = api::AtomicLong::new("shared-counter");
        *total2.lock() = counter.get(ctx, &mut cli).expect("reachable");
    });
    sim.run_until_idle().expect_quiescent();
    assert_eq!(*total.lock(), (THREADS as i64) * OPS);
}

#[test]
fn barrier_releases_all_parties_together() {
    let mut sim = Sim::new(12);
    let cluster = start(&sim, 2);
    let handle = cluster.client_handle();
    const PARTIES: u32 = 8;
    let releases: Arc<Mutex<Vec<(u64, SimTime)>>> = Arc::new(Mutex::new(Vec::new()));
    for t in 0..PARTIES {
        let handle = handle.clone();
        let releases = releases.clone();
        sim.spawn(&format!("t{t}"), move |ctx| {
            let mut cli = handle.connect();
            let barrier = api::CyclicBarrier::new("b", PARTIES);
            // Stagger arrivals.
            ctx.sleep(Duration::from_millis(t as u64 * 10));
            let generation = barrier.wait(ctx, &mut cli).expect("reachable");
            releases.lock().push((generation, ctx.now()));
            // Second round to prove the barrier is cyclic.
            let generation = barrier.wait(ctx, &mut cli).expect("reachable");
            releases.lock().push((generation, ctx.now()));
        });
    }
    sim.run_until_idle().expect_quiescent();
    let rel = releases.lock();
    assert_eq!(rel.len(), PARTIES as usize * 2);
    let g0: Vec<_> = rel.iter().filter(|(g, _)| *g == 0).collect();
    let g1: Vec<_> = rel.iter().filter(|(g, _)| *g == 1).collect();
    assert_eq!(g0.len(), PARTIES as usize);
    assert_eq!(g1.len(), PARTIES as usize);
    // All of generation 0 released within ~a network RTT of each other.
    let tmin = g0.iter().map(|(_, t)| *t).min().expect("nonempty");
    let tmax = g0.iter().map(|(_, t)| *t).max().expect("nonempty");
    assert!(tmax - tmin < Duration::from_millis(2), "release spread {:?}", tmax - tmin);
    // Nobody passed before the last arrival (t=70ms stagger).
    assert!(tmin >= SimTime::from_millis(70));
}

#[test]
fn semaphore_bounds_critical_section_occupancy() {
    let mut sim = Sim::new(13);
    let cluster = start(&sim, 1);
    let handle = cluster.client_handle();
    let in_cs = Arc::new(Mutex::new((0i32, 0i32))); // (current, max)
    for t in 0..10 {
        let handle = handle.clone();
        let in_cs = in_cs.clone();
        sim.spawn(&format!("t{t}"), move |ctx| {
            let mut cli = handle.connect();
            let sem = api::Semaphore::new("sem", 3);
            sem.acquire(ctx, &mut cli, 1).expect("reachable");
            {
                let mut g = in_cs.lock();
                g.0 += 1;
                g.1 = g.1.max(g.0);
            }
            ctx.sleep(Duration::from_millis(5));
            {
                in_cs.lock().0 -= 1;
            }
            sem.release(ctx, &mut cli, 1).expect("reachable");
        });
    }
    sim.run_until_idle().expect_quiescent();
    let (cur, max) = *in_cs.lock();
    assert_eq!(cur, 0);
    assert!(max <= 3, "semaphore admitted {max} > 3");
    assert!(max >= 2, "semaphore should admit more than one");
}

#[test]
fn future_transfers_a_value_between_threads() {
    let mut sim = Sim::new(14);
    let cluster = start(&sim, 2);
    let handle = cluster.client_handle();
    let got = Arc::new(Mutex::new(None::<String>));
    {
        let handle = handle.clone();
        let got = got.clone();
        sim.spawn("consumer", move |ctx| {
            let mut cli = handle.connect();
            let f: api::SharedFuture<String> = api::SharedFuture::new("f1");
            let v = f.get(ctx, &mut cli).expect("reachable");
            *got.lock() = Some(v);
        });
    }
    sim.spawn("producer", move |ctx| {
        ctx.sleep(Duration::from_millis(20));
        let mut cli = handle.connect();
        let f: api::SharedFuture<String> = api::SharedFuture::new("f1");
        assert!(f.set(ctx, &mut cli, &"result".to_string()).expect("reachable"));
    });
    sim.run_until_idle().expect_quiescent();
    assert_eq!(got.lock().clone(), Some("result".to_string()));
}

#[test]
fn persistent_object_survives_primary_crash() {
    let mut sim = Sim::new(15);
    let cluster = start(&sim, 3);
    let handle = cluster.client_handle();
    let observed = Arc::new(Mutex::new(Vec::<i64>::new()));

    // Writer: set the replicated counter to 100 early on.
    {
        let handle = handle.clone();
        sim.spawn("writer", move |ctx| {
            let mut cli = handle.connect();
            let counter = api::AtomicLong::persistent("model", 0, 2);
            counter.set(ctx, &mut cli, 100).expect("reachable");
        });
    }
    // Fault injector: crash every node in turn except one; rf=2 tolerates
    // one joint failure, so crash exactly one (the others keep quorum).
    let servers: Vec<_> = cluster.servers().to_vec();
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(Duration::from_secs(5));
        servers[0].crash_from(ctx);
    });
    // Reader: after the crash is detected and rebalancing ran, the value
    // must still be 100 regardless of which node held it.
    {
        let handle = handle.clone();
        let observed = observed.clone();
        sim.spawn("reader", move |ctx| {
            let mut cli = handle.connect();
            let counter = api::AtomicLong::persistent("model", 0, 2);
            ctx.sleep(Duration::from_secs(15));
            for _ in 0..5 {
                let v = counter.get(ctx, &mut cli).expect("readable after crash");
                observed.lock().push(v);
                ctx.sleep(Duration::from_millis(100));
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    let obs = observed.lock();
    assert_eq!(obs.len(), 5);
    assert!(obs.iter().all(|v| *v == 100), "lost the replicated value: {obs:?}");
}

#[test]
fn ephemeral_object_resets_after_crash_but_stays_usable() {
    let mut sim = Sim::new(16);
    let cluster = start(&sim, 2);
    let handle = cluster.client_handle();
    let results = Arc::new(Mutex::new(Vec::<i64>::new()));
    let servers: Vec<_> = cluster.servers().to_vec();
    {
        let handle = handle.clone();
        let results = results.clone();
        sim.spawn("app", move |ctx| {
            let mut cli = handle.connect();
            let counter = api::AtomicLong::new("eph");
            counter.set(ctx, &mut cli, 42).expect("reachable");
            results.lock().push(counter.get(ctx, &mut cli).expect("reachable"));
            // Crash both nodes; restart-equivalent: spawn happens below.
            servers[0].crash_from(ctx);
            // Wait for failure detection and the view change.
            ctx.sleep(Duration::from_secs(10));
            // The object may have been lost (if it lived on the dead node);
            // either way it is usable and holds a well-defined value.
            let v = counter.get(ctx, &mut cli).expect("reachable after crash");
            results.lock().push(v);
        });
    }
    sim.run_until_idle().expect_quiescent();
    let r = results.lock();
    assert_eq!(r[0], 42);
    assert!(r[1] == 42 || r[1] == 0, "unexpected value {}", r[1]);
}

#[test]
fn new_node_joins_and_serves() {
    let mut sim = Sim::new(17);
    let mut cluster = start(&sim, 1);
    let handle = cluster.client_handle();
    // Seed some objects.
    {
        let handle = handle.clone();
        sim.spawn("seed", move |ctx| {
            let mut cli = handle.connect();
            for i in 0..20 {
                let c = api::AtomicLong::new(&format!("c{i}"));
                c.set(ctx, &mut cli, i as i64).expect("reachable");
            }
        });
    }
    sim.run_until(SimTime::from_secs(2));
    // Grow the cluster; placement changes move some objects to node 1.
    cluster.add_node(&sim);
    let handle = cluster.client_handle();
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    sim.spawn("verify", move |ctx| {
        ctx.sleep(Duration::from_secs(5));
        let mut cli = handle.connect();
        for i in 0..20 {
            let c = api::AtomicLong::new(&format!("c{i}"));
            let v = c.get(ctx, &mut cli).expect("reachable after join");
            assert_eq!(v, i as i64, "object c{i} lost its value after rebalancing");
        }
        *ok2.lock() = true;
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*ok.lock());
}

#[test]
fn shared_list_and_map_round_trip() {
    let mut sim = Sim::new(18);
    let cluster = start(&sim, 2);
    let handle = cluster.client_handle();
    sim.spawn("app", move |ctx| {
        let mut cli = handle.connect();
        let list: api::SharedList<(u32, f64)> = api::SharedList::new("pairs");
        assert_eq!(list.add(ctx, &mut cli, &(1, 0.5)).expect("dso"), 1);
        assert_eq!(list.add(ctx, &mut cli, &(2, 1.5)).expect("dso"), 2);
        assert_eq!(list.get(ctx, &mut cli, 0).expect("dso"), Some((1, 0.5)));
        assert_eq!(list.to_vec(ctx, &mut cli).expect("dso"), vec![(1, 0.5), (2, 1.5)]);

        let map: api::SharedMap<Vec<f64>> = api::SharedMap::new("weights");
        assert!(map.put(ctx, &mut cli, "w0", &vec![1.0, 2.0]).expect("dso").is_none());
        assert_eq!(map.get(ctx, &mut cli, "w0").expect("dso"), Some(vec![1.0, 2.0]));
        assert_eq!(map.size(ctx, &mut cli).expect("dso"), 1);
        assert_eq!(map.keys(ctx, &mut cli).expect("dso"), vec!["w0".to_string()]);
        assert_eq!(map.remove(ctx, &mut cli, "w0").expect("dso"), Some(vec![1.0, 2.0]));
    });
    sim.run_until_idle().expect_quiescent();
}

#[test]
fn smr_latency_is_roughly_double_the_unreplicated_latency() {
    let mut sim = Sim::new(19);
    let cluster = start(&sim, 3);
    let handle = cluster.client_handle();
    let out = Arc::new(Mutex::new((Duration::ZERO, Duration::ZERO)));
    let out2 = out.clone();
    sim.spawn("probe", move |ctx| {
        let mut cli = handle.connect();
        let plain = api::AtomicLong::new("plain");
        let repl = api::AtomicLong::persistent("repl", 0, 2);
        // Warm both (creation, view fetch).
        plain.get(ctx, &mut cli).expect("dso");
        repl.get(ctx, &mut cli).expect("dso");
        const N: u32 = 200;
        let t0 = ctx.now();
        for _ in 0..N {
            plain.add_and_get(ctx, &mut cli, 1).expect("dso");
        }
        let plain_total = ctx.now() - t0;
        let t0 = ctx.now();
        for _ in 0..N {
            repl.add_and_get(ctx, &mut cli, 1).expect("dso");
        }
        let repl_total = ctx.now() - t0;
        *out2.lock() = (plain_total / N, repl_total / N);
    });
    sim.run_until_idle().expect_quiescent();
    let (plain, repl) = *out.lock();
    // Table 2: ~230 µs unreplicated, ~505 µs with rf=2.
    assert!(
        plain > Duration::from_micros(150) && plain < Duration::from_micros(350),
        "unreplicated latency {plain:?}"
    );
    let ratio = repl.as_secs_f64() / plain.as_secs_f64();
    assert!(ratio > 1.6 && ratio < 3.0, "rf=2 latency ratio {ratio}");
}

#[test]
fn deterministic_across_runs() {
    fn run() -> (i64, u64) {
        let mut sim = Sim::new(42);
        let cluster = start(&sim, 2);
        let handle = cluster.client_handle();
        let result = Arc::new(Mutex::new(0i64));
        for t in 0..5 {
            let handle = handle.clone();
            let result = result.clone();
            sim.spawn(&format!("t{t}"), move |ctx| {
                let mut cli = handle.connect();
                let c = api::AtomicLong::new("det");
                let v = c.add_and_get(ctx, &mut cli, t as i64).expect("dso");
                let mut g = result.lock();
                *g = g.wrapping_add(v * (t as i64 + 1));
            });
        }
        let out = sim.run_until_idle();
        let total = *result.lock();
        (total, out.time.as_nanos())
    }
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce byte-identical outcomes");
}

// ---------------------------------------------------------------------------
// Read fast path: replica reads, client cache, batched invocation
// ---------------------------------------------------------------------------

#[test]
fn replica_reads_observe_monotonic_versions_and_values() {
    use dso::ConsistencyMode;
    let mut sim = Sim::new(71);
    let cfg = DsoConfig { consistency: ConsistencyMode::ReplicaReads, ..DsoConfig::default() };
    let cluster = DsoCluster::start(&sim, 3, cfg, ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let writer = handle.clone();
    sim.spawn("writer", move |ctx| {
        let mut cli = writer.connect();
        let c = api::AtomicLong::persistent("rr", 0, 3);
        for _ in 0..60 {
            c.increment_and_get(ctx, &mut cli).expect("write");
            ctx.sleep(Duration::from_micros(300));
        }
    });
    let observations: Arc<Mutex<Vec<(i64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let obs2 = observations.clone();
    sim.spawn("reader", move |ctx| {
        let mut cli = handle.connect();
        let c = api::AtomicLong::persistent("rr", 0, 3);
        for _ in 0..120 {
            let v = c.get(ctx, &mut cli).expect("read");
            let version = cli.observed_version(c.raw().object_ref());
            obs2.lock().push((v, version));
            ctx.sleep(Duration::from_micros(150));
        }
    });
    sim.run_until_idle().expect_quiescent();
    let obs = observations.lock();
    assert_eq!(obs.len(), 120);
    // Reads rotate over all three replicas, yet the session never moves
    // backwards: values and versions are non-decreasing.
    assert!(
        obs.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1),
        "monotonic reads violated: {obs:?}"
    );
    assert!(obs.last().expect("nonempty").0 > 0, "reader saw progress");
}

#[test]
fn read_cache_with_lease_skips_round_trips_and_writes_invalidate() {
    let mut sim = Sim::new(72);
    let cfg = DsoConfig {
        read_cache: true,
        cache_lease: Some(Duration::from_millis(5)),
        ..DsoConfig::default()
    };
    let cluster = DsoCluster::start(&sim, 2, cfg, ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = checked.clone();
    sim.spawn("client", move |ctx| {
        let mut cli = handle.connect();
        let c = api::AtomicLong::new("cached");
        c.set(ctx, &mut cli, 7).expect("write");
        let first = c.get(ctx, &mut cli).expect("read");
        assert_eq!(first, 7);
        // Within the lease the cached read costs only local work — far
        // below a network round-trip.
        let t0 = ctx.now();
        let second = c.get(ctx, &mut cli).expect("read");
        assert_eq!(second, 7);
        assert!(
            ctx.now() - t0 < Duration::from_micros(5),
            "leased cache hit must skip the network: {:?}",
            ctx.now() - t0
        );
        // A write through the same client invalidates the entry.
        c.set(ctx, &mut cli, 8).expect("write");
        assert_eq!(c.get(ctx, &mut cli).expect("read"), 8);
        *checked2.lock() = true;
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*checked.lock());
}

#[test]
fn read_cache_validation_catches_other_clients_writes() {
    let mut sim = Sim::new(73);
    let cfg = DsoConfig {
        read_cache: true,
        cache_lease: None, // validate every hit against the object version
        ..DsoConfig::default()
    };
    let cluster = DsoCluster::start(&sim, 2, cfg, ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let handle2 = handle.clone();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = checked.clone();
    sim.spawn("reader", move |ctx| {
        let mut cli = handle.connect();
        let c = api::AtomicLong::new("xwrite");
        c.set(ctx, &mut cli, 1).expect("write");
        assert_eq!(c.get(ctx, &mut cli).expect("read"), 1);
        // Let the other client write.
        ctx.sleep(Duration::from_millis(50));
        // Version validation must reject the cached 1 and refetch.
        assert_eq!(c.get(ctx, &mut cli).expect("read"), 2);
        *checked2.lock() = true;
    });
    sim.spawn("writer", move |ctx| {
        ctx.sleep(Duration::from_millis(20));
        let mut cli = handle2.connect();
        let c = api::AtomicLong::new("xwrite");
        c.set(ctx, &mut cli, 2).expect("write");
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*checked.lock());
}

/// The two cache tiers report under distinct counter families:
/// `dso.read_cache.*` for the per-client cache and `dso.node_cache.*` for
/// the host-shared tier — so a dashboard can tell client-local warmth from
/// co-location wins. Exact counts are pinned; the retired pre-refactor
/// name (`dso.cache_hits`) must stay dead.
#[test]
fn cache_tiers_report_under_distinct_counters() {
    let mut sim = Sim::new(75);
    let metrics = simcore::MetricsRegistry::new();
    sim.set_metrics(&metrics);
    let cfg = DsoConfig::builder()
        .read_cache(true)
        .cache_lease(Duration::from_millis(5))
        .node_cache(true)
        .build()
        .expect("valid two-tier cache config");
    let cluster = DsoCluster::start(&sim, 2, cfg, ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    sim.spawn("host", move |ctx| {
        // Two clients on one host share one node cache — the co-located
        // container pair of the deployment layer, inlined.
        let host_cache = std::sync::Arc::new(dso::NodeCache::new());
        let mut a = handle.connect_with_node_cache(host_cache.clone());
        let mut b = handle.connect_with_node_cache(host_cache);
        let c = api::AtomicLong::new("tiers");
        c.set(ctx, &mut a, 5).expect("write");
        // a: both tiers cold — one miss each, then the fetch warms both.
        assert_eq!(c.get(ctx, &mut a).expect("read"), 5);
        // a again: leased hit in a's own client cache.
        assert_eq!(c.get(ctx, &mut a).expect("read"), 5);
        // b: client cache cold, but the shared node cache is warm.
        assert_eq!(c.get(ctx, &mut b).expect("read"), 5);
        // a writes: the shared entry is torn down…
        c.set(ctx, &mut a, 6).expect("write");
        // …so b refetches and sees the new value (miss on both tiers).
        assert_eq!(c.get(ctx, &mut b).expect("read"), 6);
    });
    sim.run_until_idle().expect_quiescent();
    assert_eq!(metrics.counter_value("dso.read_cache.hit"), 1, "a's leased re-read");
    assert_eq!(metrics.counter_value("dso.read_cache.miss"), 3, "first reads + post-write");
    assert_eq!(metrics.counter_value("dso.node_cache.hit"), 1, "b rides a's warmth");
    assert_eq!(metrics.counter_value("dso.node_cache.miss"), 2, "cold start + post-write");
    assert_eq!(metrics.counter_value("dso.node_cache.invalidate"), 1, "a's second write");
    assert_eq!(metrics.counter_value("dso.cache_hits"), 0, "pre-refactor name retired");
}

#[test]
fn batched_invocation_matches_singles_and_is_faster() {
    let mut sim = Sim::new(74);
    let cluster = start(&sim, 3);
    let handle = cluster.client_handle();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = checked.clone();
    sim.spawn("client", move |ctx| {
        let mut cli = handle.connect();
        const N: usize = 32;
        let counters: Vec<api::AtomicLong> =
            (0..N).map(|i| api::AtomicLong::new(&format!("b{i}"))).collect();
        for (i, c) in counters.iter().enumerate() {
            c.set(ctx, &mut cli, i as i64).expect("write");
        }
        // Sequential reads: N round-trips.
        let t0 = ctx.now();
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.get(ctx, &mut cli).expect("read"), i as i64);
        }
        let sequential = ctx.now() - t0;
        // One batch: grouped into (at most) 3 node-level messages.
        let ops: Vec<dso::BatchOp> = counters.iter().map(|c| c.raw().read_op("get", &())).collect();
        let t0 = ctx.now();
        let results = cli.invoke_batch(ctx, &ops);
        let batched = ctx.now() - t0;
        for (i, r) in results.iter().enumerate() {
            let bytes = r.as_ref().expect("batch read");
            let v: i64 = simcore::codec::from_bytes(bytes).expect("decode");
            assert_eq!(v, i as i64);
        }
        assert!(
            batched * 4 < sequential,
            "batching must collapse round-trips: sequential={sequential:?} batched={batched:?}"
        );
        *checked2.lock() = true;
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*checked.lock());
}

#[test]
fn batch_rejects_blocking_methods() {
    let mut sim = Sim::new(75);
    let cluster = start(&sim, 2);
    let handle = cluster.client_handle();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = checked.clone();
    sim.spawn("client", move |ctx| {
        let mut cli = handle.connect();
        let b = api::CyclicBarrier::new("bb", 2);
        let ops = vec![b.raw().op("await", &())];
        let res = cli.invoke_batch(ctx, &ops);
        assert!(
            matches!(res[0], Err(dso::DsoError::Object(_))),
            "parking inside a batch must be rejected: {:?}",
            res[0]
        );
        *checked2.lock() = true;
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*checked.lock());
}

#[test]
fn declared_readonly_mismatch_is_rejected() {
    let mut sim = Sim::new(76);
    let cluster = start(&sim, 2);
    let handle = cluster.client_handle();
    let checked = Arc::new(Mutex::new(false));
    let checked2 = checked.clone();
    sim.spawn("client", move |ctx| {
        let mut cli = handle.connect();
        let c = api::AtomicLong::new("strict");
        c.set(ctx, &mut cli, 1).expect("write");
        // Claiming a mutating method is read-only must fail loudly rather
        // than silently skipping replication.
        let err = c.raw().call_read::<i64, i64>(ctx, &mut cli, "addAndGet", &1).unwrap_err();
        assert!(matches!(err, dso::DsoError::Object(_)), "{err}");
        *checked2.lock() = true;
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*checked.lock());
}
