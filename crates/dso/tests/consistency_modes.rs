//! The consistency spectrum under schedule exploration: every mode must
//! pass its machine checker from [`dso::verify`] across perturbed
//! schedules, including runs that crash a storage node mid-flight and
//! force a view change + rebalance.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::explore::{explore_seeds, Check};
use simcore::Sim;

use dso::verify::{check_causal, check_staleness_bound, Op, SessionKind, SessionOp};
use dso::{api, ConsistencyMode, DsoCluster, DsoConfig, NodeCache, ObjectRegistry};

/// `Causal` across schedules and a crash: three sessions mix increments
/// and round-robin replica reads on one rf=2 counter; a chaos process
/// kills a node at 5 s. Whatever the schedule, each session must read
/// monotonically and never miss its own writes ([`check_causal`]) — the
/// Lamport frontier piggybacked on every reply is what enforces this when
/// a read lands on a replica that has not applied the session's write yet.
#[test]
fn causal_sessions_hold_across_schedules_and_a_crash() {
    let scenario = |sim: &mut Sim| -> Check {
        let cfg = DsoConfig::builder()
            .consistency(ConsistencyMode::Causal)
            .build()
            .expect("valid causal config");
        let cluster = DsoCluster::start(sim, 3, cfg, ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let history: Arc<Mutex<Vec<SessionOp>>> = Arc::new(Mutex::new(Vec::new()));
        for client in 0..3u32 {
            let handle = handle.clone();
            let history = history.clone();
            sim.spawn(&format!("session-{client}"), move |ctx| {
                let mut cli = handle.connect();
                let counter = api::AtomicLong::persistent("causal", 0, 2);
                let record = |start, end, kind, value| {
                    history.lock().push(SessionOp { client, start, end, kind, value });
                };
                // Before the crash: interleaved write/read pairs.
                for _ in 0..3 {
                    let start = ctx.now();
                    let v = counter.increment_and_get(ctx, &mut cli).expect("reachable");
                    record(start, ctx.now(), SessionKind::Write, v);
                    let start = ctx.now();
                    let v = counter.get(ctx, &mut cli).expect("reachable");
                    record(start, ctx.now(), SessionKind::Read, v);
                    ctx.sleep(Duration::from_micros(200));
                }
                // After failure detection and rebalance: the session
                // guarantees must survive the view change.
                ctx.sleep(Duration::from_secs(25));
                let start = ctx.now();
                let v = counter.increment_and_get(ctx, &mut cli).expect("reachable after crash");
                record(start, ctx.now(), SessionKind::Write, v);
                for _ in 0..2 {
                    let start = ctx.now();
                    let v = counter.get(ctx, &mut cli).expect("reachable after crash");
                    record(start, ctx.now(), SessionKind::Read, v);
                }
            });
        }
        let servers: Vec<_> = cluster.servers().to_vec();
        sim.spawn("chaos", move |ctx| {
            ctx.sleep(Duration::from_secs(5));
            servers[0].crash_from(ctx);
        });
        Box::new(move || {
            let _keep = cluster;
            let history = history.lock();
            assert!(history.len() >= 3 * 8, "sessions under-recorded: {}", history.len());
            check_causal(&history).map_err(|v| format!("causal sessions violated: {v}"))
        })
    };
    explore_seeds(200, 25, scenario).expect_clean();
}

/// `BoundedStaleness` across schedules and a crash: leased cached reads
/// may lag the primary, but never by more than the configured bound of
/// virtual time ([`check_staleness_bound`]). The writer's unit increments
/// still go through SMR, so they stay linearizable — the checker verifies
/// that precondition too.
#[test]
fn bounded_staleness_reads_stay_within_the_bound_across_schedules() {
    const BOUND: Duration = Duration::from_millis(100);
    let scenario = |sim: &mut Sim| -> Check {
        let cfg = DsoConfig::builder()
            .consistency(ConsistencyMode::BoundedStaleness)
            .staleness_bound(BOUND)
            .read_cache(true)
            .build()
            .expect("valid bounded-staleness config");
        let cluster = DsoCluster::start(sim, 3, cfg, ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let incs: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
        let reads: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let handle = handle.clone();
            let incs = incs.clone();
            sim.spawn("writer", move |ctx| {
                let mut cli = handle.connect();
                let counter = api::AtomicLong::persistent("bounded", 0, 2);
                for _ in 0..6 {
                    let start = ctx.now();
                    let value = counter.increment_and_get(ctx, &mut cli).expect("reachable");
                    incs.lock().push(Op { start, end: ctx.now(), value });
                    ctx.sleep(Duration::from_millis(80));
                }
            });
        }
        for r in 0..2 {
            let handle = handle.clone();
            let reads = reads.clone();
            sim.spawn(&format!("reader-{r}"), move |ctx| {
                let mut cli = handle.connect();
                let counter = api::AtomicLong::persistent("bounded", 0, 2);
                // Dense reads while the counter moves: most are served
                // from the lease and genuinely stale — within the bound.
                for _ in 0..12 {
                    let start = ctx.now();
                    let value = counter.get(ctx, &mut cli).expect("reachable");
                    reads.lock().push(Op { start, end: ctx.now(), value });
                    ctx.sleep(Duration::from_millis(40));
                }
                // After the crash settles, leases from before the view
                // change have long expired; reads refetch and stay bounded.
                ctx.sleep(Duration::from_secs(25));
                for _ in 0..2 {
                    let start = ctx.now();
                    let value = counter.get(ctx, &mut cli).expect("reachable after crash");
                    reads.lock().push(Op { start, end: ctx.now(), value });
                }
            });
        }
        let servers: Vec<_> = cluster.servers().to_vec();
        sim.spawn("chaos", move |ctx| {
            ctx.sleep(Duration::from_secs(5));
            servers[0].crash_from(ctx);
        });
        Box::new(move || {
            let _keep = cluster;
            let incs = incs.lock();
            let reads = reads.lock();
            assert_eq!(incs.len(), 6, "writer under-recorded");
            check_staleness_bound(&incs, &reads, BOUND)
                .map_err(|v| format!("staleness bound violated: {v}"))
        })
    };
    explore_seeds(300, 25, scenario).expect_clean();
}

/// `CrdtMerge` across schedules and a crash: increments of a replicated
/// [`api::GCounter`] go to *any* replica without SMR; anti-entropy rounds
/// reconcile the diverged states by entrywise max. After the writers
/// finish, a grace period of many anti-entropy intervals, a crash, and a
/// rebalance, every replica must have converged on the full total — no
/// increment lost, none double-counted.
#[test]
fn crdt_merge_converges_across_schedules_and_a_crash() {
    const WRITERS: u64 = 3;
    const INCS: u64 = 5;
    let scenario = |sim: &mut Sim| -> Check {
        let cfg = DsoConfig::builder()
            .consistency(ConsistencyMode::CrdtMerge)
            .build()
            .expect("valid crdt config");
        let cluster = DsoCluster::start(sim, 3, cfg, ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let finals: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for w in 0..WRITERS {
            let handle = handle.clone();
            sim.spawn(&format!("writer-{w}"), move |ctx| {
                let mut cli = handle.connect();
                let counter = api::GCounter::persistent("grows", 3);
                for _ in 0..INCS {
                    counter.inc(ctx, &mut cli, 1).expect("reachable");
                    ctx.sleep(Duration::from_millis(2));
                }
            });
        }
        for r in 0..2 {
            let handle = handle.clone();
            let finals = finals.clone();
            sim.spawn(&format!("reader-{r}"), move |ctx| {
                let mut cli = handle.connect();
                let counter = api::GCounter::persistent("grows", 3);
                // Past the write phase, hundreds of anti-entropy rounds,
                // the 5 s crash, and the rebalance.
                ctx.sleep(Duration::from_secs(25));
                for _ in 0..3 {
                    let v = counter.get(ctx, &mut cli).expect("reachable after crash");
                    finals.lock().push(v);
                    ctx.sleep(Duration::from_millis(50));
                }
            });
        }
        let servers: Vec<_> = cluster.servers().to_vec();
        sim.spawn("chaos", move |ctx| {
            // Writers are done by ~10 ms; by 5 s the doomed node has pushed
            // its entries through hundreds of anti-entropy rounds.
            ctx.sleep(Duration::from_secs(5));
            servers[0].crash_from(ctx);
        });
        Box::new(move || {
            let _keep = cluster;
            let finals = finals.lock();
            if finals.len() != 6 {
                return Err(format!("readers under-recorded: {finals:?}"));
            }
            if finals.iter().any(|&v| v != WRITERS * INCS) {
                return Err(format!("replicas did not converge on {}: {finals:?}", WRITERS * INCS));
            }
            Ok(())
        })
    };
    explore_seeds(400, 25, scenario).expect_clean();
}

/// The host-shared [`NodeCache`] must never break a session guarantee:
/// three readers sharing one cache (as co-located containers do) still
/// read monotonically, because every lease hit re-passes the client's own
/// read policy before being served.
#[test]
fn shared_node_cache_preserves_per_session_monotonic_reads() {
    let scenario = |sim: &mut Sim| -> Check {
        let cfg = DsoConfig::builder()
            .consistency(ConsistencyMode::ReplicaReads)
            .read_cache(true)
            .cache_lease(Duration::from_millis(2))
            .node_cache(true)
            .build()
            .expect("valid node-cache config");
        let cluster = DsoCluster::start(sim, 3, cfg, ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let host_cache = Arc::new(NodeCache::new());
        let history: Arc<Mutex<Vec<SessionOp>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let handle = handle.clone();
            let history = history.clone();
            sim.spawn("writer", move |ctx| {
                let mut cli = handle.connect();
                let counter = api::AtomicLong::persistent("hosted", 0, 2);
                for _ in 0..6 {
                    let start = ctx.now();
                    let v = counter.increment_and_get(ctx, &mut cli).expect("reachable");
                    history.lock().push(SessionOp {
                        client: 0,
                        start,
                        end: ctx.now(),
                        kind: SessionKind::Write,
                        value: v,
                    });
                    ctx.sleep(Duration::from_millis(1));
                }
            });
        }
        for r in 1..4u32 {
            let handle = handle.clone();
            let history = history.clone();
            let host_cache = host_cache.clone();
            sim.spawn(&format!("reader-{r}"), move |ctx| {
                let mut cli = handle.connect_with_node_cache(host_cache);
                let counter = api::AtomicLong::persistent("hosted", 0, 2);
                for _ in 0..8 {
                    let start = ctx.now();
                    let v = counter.get(ctx, &mut cli).expect("reachable");
                    history.lock().push(SessionOp {
                        client: r,
                        start,
                        end: ctx.now(),
                        kind: SessionKind::Read,
                        value: v,
                    });
                    ctx.sleep(Duration::from_micros(500));
                }
            });
        }
        Box::new(move || {
            let _keep = cluster;
            let history = history.lock();
            check_causal(&history).map_err(|v| format!("node cache broke a session: {v}"))
        })
    };
    explore_seeds(500, 25, scenario).expect_clean();
}
