//! Durability subsystem end-to-end: WAL + checkpoints to the cloud store,
//! full-cluster crash-restart recovery, read repair against LIST
//! visibility lag, and conservation of acknowledged writes across
//! explored schedules.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::explore::{explore_seeds, Check};
use simcore::{LatencyModel, Sim, Tracer};

use cloudstore::{spawn_s3, S3Config};
use dso::{
    api, checkpoint, DsoCluster, DsoConfig, DurabilityConfig, DurabilityLevel, DurabilityStore,
    ObjectRegistry, RecoveryReport,
};

/// A Sync-durability config over a fresh store on `s3`.
fn sync_durability(s3: &cloudstore::S3Handle, prefix: &str) -> DurabilityConfig {
    let mut d = DurabilityConfig::new(DurabilityStore::new(s3.clone(), prefix));
    d.level = DurabilityLevel::Sync;
    d
}

/// FNV-1a over bytes: stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One full crash-restart scenario: write 10 counters under Sync
/// durability on a 3-node cluster, crash every node, recover into a
/// 2-node cluster, read everything back. Returns the observation log and
/// a fingerprint of the full trace (spans in allocation order).
fn crash_restart_run(seed: u64) -> (String, u64) {
    let mut sim = Sim::new(seed);
    let tracer = Tracer::new();
    sim.set_tracer(&tracer);
    let s3 = spawn_s3(&sim, S3Config::default());
    let d = sync_durability(&s3, "dur");
    let cfg = DsoConfig { durability: Some(d), ..DsoConfig::default() };
    let mut cluster = DsoCluster::start(&sim, 3, cfg.clone(), ObjectRegistry::with_builtins());
    let log: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let log2 = log.clone();
    let handle = cluster.client_handle();
    sim.spawn("operator", move |ctx| {
        let mut cli = handle.connect();
        for i in 0..10 {
            let c = if i % 2 == 0 {
                api::AtomicLong::new(&format!("c{i}"))
            } else {
                api::AtomicLong::persistent(&format!("c{i}"), 0, 2)
            };
            c.set(ctx, &mut cli, 100 + i as i64).expect("write");
            c.increment_and_get(ctx, &mut cli).expect("bump");
        }
        for idx in 0..3 {
            cluster.crash_node_from(ctx, idx);
        }
        ctx.sleep(Duration::from_millis(50));
        let (recovered, report) =
            DsoCluster::recover_from(ctx, 2, cfg, ObjectRegistry::with_builtins())
                .expect("recovery succeeds");
        let mut cli = recovered.client_handle().connect();
        let mut g = log2.lock();
        g.push_str(&format!(
            "gen {} ckpt {:?} objects {} segs {} relist {}\n",
            report.generation,
            report.checkpoint,
            report.objects,
            report.wal_segments,
            report.relist_rounds
        ));
        for i in 0..10 {
            let c = if i % 2 == 0 {
                api::AtomicLong::new(&format!("c{i}"))
            } else {
                api::AtomicLong::persistent(&format!("c{i}"), 0, 2)
            };
            let v = c.get(ctx, &mut cli).expect("read after recovery");
            g.push_str(&format!("c{i} {v}\n"));
        }
    });
    sim.run_until_idle().expect_quiescent();
    let log = log.lock().clone();
    (log, fnv1a(tracer.export_jsonl().as_bytes()))
}

#[test]
fn full_cluster_crash_recovers_every_acknowledged_write() {
    let (log, _) = crash_restart_run(11);
    // Every counter comes back at its acknowledged value (set + 1 bump),
    // into a cluster of a *different* size, under a bumped generation.
    assert!(log.starts_with("gen 1 "), "{log}");
    assert!(log.contains("objects 10"), "{log}");
    for i in 0..10 {
        assert!(log.contains(&format!("c{i} {}", 101 + i)), "counter c{i} lost:\n{log}");
    }
}

#[test]
fn recovery_trace_is_byte_identical_per_seed() {
    let (log_a, trace_a) = crash_restart_run(23);
    let (log_b, trace_b) = crash_restart_run(23);
    assert_eq!(log_a, log_b, "observation log must be deterministic");
    assert_eq!(trace_a, trace_b, "recovery trace must be byte-identical per seed");
}

#[test]
fn recovery_replays_wal_past_the_latest_checkpoint() {
    let mut sim = Sim::new(31);
    let s3 = spawn_s3(&sim, S3Config::default());
    let d = sync_durability(&s3, "dur");
    let cfg = DsoConfig { durability: Some(d.clone()), ..DsoConfig::default() };
    let mut cluster = DsoCluster::start(&sim, 3, cfg.clone(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    sim.spawn("operator", move |ctx| {
        let mut cli = handle.connect();
        // Phase A, then a checkpoint, then phase B (including overwrites
        // of phase-A objects) that lives only in the WAL.
        for i in 0..6 {
            api::AtomicLong::new(&format!("a{i}")).set(ctx, &mut cli, i as i64).expect("write");
        }
        let report = checkpoint(ctx, &mut cli, &d).expect("checkpoint");
        assert_eq!(report.objects, 6);
        assert_eq!((report.gen, report.seq), (0, 1));
        for i in 0..6 {
            api::AtomicLong::new(&format!("b{i}"))
                .set(ctx, &mut cli, 50 + i as i64)
                .expect("write");
        }
        api::AtomicLong::new("a0").set(ctx, &mut cli, 999).expect("overwrite");
        for idx in 0..3 {
            cluster.crash_node_from(ctx, idx);
        }
        ctx.sleep(Duration::from_millis(50));
        let (recovered, report) =
            DsoCluster::recover_from(ctx, 3, cfg, ObjectRegistry::with_builtins())
                .expect("recovery succeeds");
        assert_eq!(report.checkpoint, Some((0, 1)), "recovers from the checkpoint");
        assert_eq!(report.objects, 12);
        assert!(report.wal_records > 0, "phase B must come from the WAL");
        let mut cli = recovered.client_handle().connect();
        assert_eq!(api::AtomicLong::new("a0").get(ctx, &mut cli).expect("read"), 999);
        for i in 1..6 {
            let c = api::AtomicLong::new(&format!("a{i}"));
            assert_eq!(c.get(ctx, &mut cli).expect("read"), i as i64);
        }
        for i in 0..6 {
            let c = api::AtomicLong::new(&format!("b{i}"));
            assert_eq!(c.get(ctx, &mut cli).expect("read"), 50 + i as i64);
        }
        *ok2.lock() = true;
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*ok.lock());
}

#[test]
fn checkpoint_gc_retires_blobs_and_subsumed_wal_segments() {
    let mut sim = Sim::new(47);
    let s3 = spawn_s3(
        &sim,
        S3Config { visibility_delay: LatencyModel::fixed(Duration::ZERO), ..S3Config::default() },
    );
    let d = sync_durability(&s3, "dur");
    let cfg = DsoConfig { durability: Some(d.clone()), ..DsoConfig::default() };
    let mut cluster = DsoCluster::start(&sim, 2, cfg.clone(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    sim.spawn("operator", move |ctx| {
        let mut cli = handle.connect();
        let mut cp = dso::Checkpointer::new(d.clone());
        let c = api::AtomicLong::new("hot");
        let mut last = dso::CheckpointReport {
            gen: 0,
            seq: 0,
            objects: 0,
            bytes: 0,
            nodes: 0,
            ckpts_deleted: 0,
            wal_deleted: 0,
        };
        for round in 0..3 {
            for _ in 0..4 {
                c.increment_and_get(ctx, &mut cli).expect("bump");
            }
            last = cp.run_once(ctx, &mut cli).expect("checkpoint");
            assert_eq!(last.seq, round + 1);
        }
        // checkpoint_keep = 2: the third blob evicts the first, and the
        // WAL segments the oldest *kept* blob floors go with it.
        assert_eq!(last.ckpts_deleted, 1, "third checkpoint evicts the first blob");
        assert!(last.wal_deleted > 0, "floored WAL segments are collected");
        assert_eq!(d.store.list_ckpts(ctx).len(), 2);
        let stats = d.store.stats(ctx.now());
        assert!(stats.deletes as usize > last.wal_deleted, "ledger counts per-key deletes");
        assert!(stats.stored_gb_seconds > 0.0);
        // GC must never delete data recovery still needs.
        for idx in 0..2 {
            cluster.crash_node_from(ctx, idx);
        }
        ctx.sleep(Duration::from_millis(50));
        let (recovered, _) = DsoCluster::recover_from(ctx, 2, cfg, ObjectRegistry::with_builtins())
            .expect("recovery succeeds");
        let mut cli = recovered.client_handle().connect();
        assert_eq!(c.get(ctx, &mut cli).expect("read"), 12);
        *ok2.lock() = true;
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*ok.lock());
}

/// Satellite: S3 LIST visibility lag hides the newest WAL segment at
/// recovery time; the scan's read repair (re-LIST until stable) must find
/// it, and the acknowledged write it carries must survive.
#[test]
fn recovery_read_repairs_wal_segments_hidden_by_list_visibility() {
    let mut sim = Sim::new(59);
    // Every key takes 150 ms to become visible to GET/LIST after its PUT
    // completes — well inside the scan's 250 ms settle window.
    let s3 = spawn_s3(
        &sim,
        S3Config {
            visibility_delay: LatencyModel::fixed(Duration::from_millis(150)),
            ..S3Config::default()
        },
    );
    let d = sync_durability(&s3, "dur");
    let cfg = DsoConfig { durability: Some(d), ..DsoConfig::default() };
    let mut cluster = DsoCluster::start(&sim, 2, cfg.clone(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let ok = Arc::new(Mutex::new(false));
    let ok2 = ok.clone();
    sim.spawn("operator", move |ctx| {
        let mut cli = handle.connect();
        let c = api::AtomicLong::new("hidden");
        for _ in 0..5 {
            c.increment_and_get(ctx, &mut cli).expect("bump");
        }
        // Crash immediately after the last Sync ack: the segment carrying
        // it is durable (PUT completed) but not yet LISTable.
        for idx in 0..2 {
            cluster.crash_node_from(ctx, idx);
        }
        let (recovered, report) =
            DsoCluster::recover_from(ctx, 2, cfg, ObjectRegistry::with_builtins())
                .expect("recovery succeeds");
        assert!(
            report.relist_rounds >= 1,
            "the scan must observe an incomplete or changing listing, got {report:?}"
        );
        let mut cli = recovered.client_handle().connect();
        assert_eq!(c.get(ctx, &mut cli).expect("read"), 5, "zero acknowledged-write loss");
        *ok2.lock() = true;
    });
    sim.run_until_idle().expect_quiescent();
    assert!(*ok.lock());
}

/// Satellite: conservation under schedule exploration. Writers bump a
/// replicated counter under Sync durability; a fault injector crashes the
/// whole cluster mid-workload — between group-commit batches — and then
/// recovers it. On every schedule, the recovered counter must hold at
/// least the highest acknowledged value (an ack = the covering WAL PUT
/// returned) and the acknowledged values themselves must be distinct.
#[test]
fn acknowledged_writes_are_conserved_across_explored_crash_schedules() {
    let scenario = |sim: &mut Sim| -> Check {
        let s3 = spawn_s3(sim, S3Config::default());
        let mut d = DurabilityConfig::new(DurabilityStore::new(s3.clone(), "dur"));
        d.level = DurabilityLevel::Sync;
        d.group_commit = Duration::from_millis(10);
        let cfg = DsoConfig { durability: Some(d), ..DsoConfig::default() };
        let mut cluster = DsoCluster::start(sim, 3, cfg.clone(), ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let acked: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        for w in 0..2 {
            let handle = handle.clone();
            let acked = acked.clone();
            sim.spawn(&format!("writer-{w}"), move |ctx| {
                let mut cli = handle.connect();
                let c = api::AtomicLong::persistent("conserved", 0, 2);
                for _ in 0..30 {
                    match c.increment_and_get(ctx, &mut cli) {
                        Ok(v) => acked.lock().push(v),
                        Err(_) => break, // cluster crashed under us
                    }
                }
            });
        }
        let outcome: Arc<Mutex<Option<(i64, RecoveryReport)>>> = Arc::new(Mutex::new(None));
        let outcome2 = outcome.clone();
        sim.spawn("injector", move |ctx| {
            // 137 ms is deliberately not a multiple of the 10 ms group
            // commit: the crash lands between batches, with acked records
            // flushed and some applied-but-unflushed ones in the buffer.
            ctx.sleep(Duration::from_millis(137));
            for idx in 0..3 {
                cluster.crash_node_from(ctx, idx);
            }
            ctx.sleep(Duration::from_millis(50));
            let (recovered, report) =
                DsoCluster::recover_from(ctx, 2, cfg, ObjectRegistry::with_builtins())
                    .expect("recovery succeeds");
            let mut cli = recovered.client_handle().connect();
            let v = api::AtomicLong::persistent("conserved", 0, 2)
                .get(ctx, &mut cli)
                .expect("read after recovery");
            *outcome2.lock() = Some((v, report));
        });
        Box::new(move || {
            let acked = acked.lock().clone();
            let Some((recovered, report)) = outcome.lock().clone() else {
                return Err("recovery never completed".to_string());
            };
            let mut sorted = acked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != acked.len() {
                return Err(format!("duplicated acknowledged increments: {acked:?}"));
            }
            let high = acked.iter().copied().max().unwrap_or(0);
            if recovered < high {
                return Err(format!(
                    "acknowledged write lost: recovered {recovered} < acked {high} ({report:?})"
                ));
            }
            if recovered > 60 {
                return Err(format!("recovered {recovered} exceeds total attempts"));
            }
            Ok(())
        })
    };
    explore_seeds(0, 25, scenario).expect_clean();
}
