//! Schedule exploration over a live DSO cluster: the explorer must catch
//! distributed misuse bugs (crossed barriers, check-then-acquire races) and
//! must hold the replica-read guarantees across perturbed schedules.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::explore::{explore_seeds, replay_seed, Check, ScheduleFailure};
use simcore::Sim;

use dso::verify::{check_counter_with_reads, Op};
use dso::{api, ConsistencyMode, DsoCluster, DsoConfig, ObjectRegistry};

/// Two clients crossing two 2-party DSO barriers: alpha parks on `a`
/// while beta parks on `b`, and each is the other's missing party. No
/// schedule can finish this — a distributed deadlock the detector must
/// name as a wait-for cycle.
fn crossed_dso_barriers(sim: &mut Sim) -> Check {
    let cluster = DsoCluster::start(sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    for (name, first, second) in [("alpha", "bar-a", "bar-b"), ("beta", "bar-b", "bar-a")] {
        let handle = handle.clone();
        sim.spawn(name, move |ctx| {
            let mut cli = handle.connect();
            api::CyclicBarrier::new(first, 2).wait(ctx, &mut cli).expect("barrier");
            api::CyclicBarrier::new(second, 2).wait(ctx, &mut cli).expect("barrier");
        });
    }
    Box::new(move || {
        let _keep = cluster;
        Ok(())
    })
}

#[test]
fn crossed_dso_barriers_always_deadlock_with_cycle() {
    let report = explore_seeds(0, 4, crossed_dso_barriers);
    assert_eq!(report.failures.len(), report.explored);
    for fs in &report.failures {
        let ScheduleFailure::Deadlock(dl) = &fs.failure else {
            panic!("expected deadlock, got {:?}", fs.failure);
        };
        assert!(!dl.cycles.is_empty(), "wait-for cycle expected:\n{dl}");
        let rendered = dl.to_string();
        // The ring names both clients, the barrier objects they park on,
        // and the reproduction recipe.
        assert!(rendered.contains("alpha") && rendered.contains("beta"), "{rendered}");
        assert!(rendered.contains("barrier"), "{rendered}");
        assert!(rendered.contains(&format!("seed {}", fs.seed)), "{rendered}");
    }
    // A reported seed reproduces the identical postmortem on replay.
    let first = &report.failures[0];
    let again = replay_seed(first.seed, crossed_dso_barriers).expect("still deadlocks");
    let (ScheduleFailure::Deadlock(a), ScheduleFailure::Deadlock(b)) = (&first.failure, &again)
    else {
        panic!("expected deadlocks");
    };
    assert_eq!(a.to_string(), b.to_string());
}

/// Check-then-acquire on a DSO semaphore: three workers each poll
/// `availablePermits` and acquire only if it looked positive — but with
/// two permits and no releases, a schedule where all three *check* before
/// the first two *acquire* strands the third forever. Other schedules let
/// the third see 0 and pass. Exactly the kind of bug one FIFO run hides.
fn semaphore_toctou(sim: &mut Sim) -> Check {
    let cluster = DsoCluster::start(sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    for w in 0..3 {
        let handle = handle.clone();
        sim.spawn(&format!("worker-{w}"), move |ctx| {
            let mut cli = handle.connect();
            let sem = api::Semaphore::new("permits", 2);
            if sem.available_permits(ctx, &mut cli).expect("reachable") > 0 {
                sem.acquire(ctx, &mut cli, 1).expect("reachable");
            }
        });
    }
    Box::new(move || {
        let _keep = cluster;
        Ok(())
    })
}

#[test]
fn semaphore_check_then_acquire_loses_wakeup_on_some_schedules() {
    let report = explore_seeds(0, 16, semaphore_toctou);
    assert!(
        !report.failures.is_empty(),
        "exploration should find a schedule that strands a worker"
    );
    assert!(
        report.failures.len() < report.explored,
        "some schedules must be clean (third worker sees 0 permits)"
    );
    let ScheduleFailure::Deadlock(dl) = &report.failures[0].failure else {
        panic!("expected deadlock, got {:?}", report.failures[0].failure);
    };
    // One worker parked on the semaphore with nobody left to release it.
    assert!(!dl.lost_wakeups.is_empty(), "lost wakeup expected:\n{dl}");
    let rendered = dl.to_string();
    assert!(rendered.contains("semaphore") && rendered.contains("worker"), "{rendered}");
}

/// PR 1's replica-read guarantee, re-checked across schedules: under
/// `ReplicaReads` a client may read any replica, but each client's view of
/// the counter must stay monotonic and every read must fit *some*
/// linearization of the unit increments.
#[test]
fn replica_reads_stay_monotonic_across_schedules() {
    let scenario = |sim: &mut Sim| -> Check {
        let cfg = DsoConfig { consistency: ConsistencyMode::ReplicaReads, ..DsoConfig::default() };
        let cluster = DsoCluster::start(sim, 3, cfg, ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let incs: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
        let reads: Arc<Mutex<Vec<Vec<Op>>>> = Arc::new(Mutex::new(vec![Vec::new(); 2]));
        for w in 0..2 {
            let handle = handle.clone();
            let incs = incs.clone();
            sim.spawn(&format!("writer-{w}"), move |ctx| {
                let mut cli = handle.connect();
                let counter = api::AtomicLong::persistent("mono", 0, 2);
                for _ in 0..4 {
                    let start = ctx.now();
                    let value = counter.increment_and_get(ctx, &mut cli).expect("reachable");
                    incs.lock().push(Op { start, end: ctx.now(), value });
                }
            });
        }
        for r in 0..2usize {
            let handle = handle.clone();
            let reads = reads.clone();
            sim.spawn(&format!("reader-{r}"), move |ctx| {
                let mut cli = handle.connect();
                let counter = api::AtomicLong::persistent("mono", 0, 2);
                for _ in 0..5 {
                    let start = ctx.now();
                    let value = counter.get(ctx, &mut cli).expect("reachable");
                    reads.lock()[r].push(Op { start, end: ctx.now(), value });
                    ctx.sleep(Duration::from_micros(150));
                }
            });
        }
        Box::new(move || {
            let _keep = cluster;
            let incs = incs.lock();
            let reads = reads.lock();
            for (r, per_reader) in reads.iter().enumerate() {
                let values: Vec<i64> = per_reader.iter().map(|o| o.value).collect();
                if values.windows(2).any(|w| w[1] < w[0]) {
                    return Err(format!("reader-{r} went backwards: {values:?}"));
                }
            }
            let all_reads: Vec<Op> = reads.iter().flatten().cloned().collect();
            check_counter_with_reads(&incs, &all_reads)
                .map_err(|v| format!("not linearizable: {v}"))
        })
    };
    explore_seeds(100, 10, scenario).expect_clean();
}
