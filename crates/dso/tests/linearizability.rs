//! Linearizability of the shared counter under heavy concurrency, random
//! latencies, and mixed workloads — verified with the exact checker from
//! `dso::verify`.

use std::sync::Arc;

use parking_lot::Mutex;
use simcore::Sim;

use dso::api::AtomicLong;
use dso::verify::{check_unit_counter, Op};
use dso::{DsoCluster, DsoConfig, ObjectRegistry};

fn record_history(seed: u64, nodes: u32, threads: u32, ops_per_thread: u32, rf: u8) -> Vec<Op> {
    let mut sim = Sim::new(seed);
    let cluster =
        DsoCluster::start(&sim, nodes, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let history: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
    for t in 0..threads {
        let handle = handle.clone();
        let history = history.clone();
        sim.spawn(&format!("t{t}"), move |ctx| {
            use rand::RngExt;
            let mut cli = handle.connect();
            let counter = if rf > 1 {
                AtomicLong::persistent("lin-counter", 0, rf)
            } else {
                AtomicLong::new("lin-counter")
            };
            for _ in 0..ops_per_thread {
                // Random think time interleaves the operations.
                let think: u64 = ctx.rng().random_range(0..2_000_000);
                ctx.sleep(std::time::Duration::from_nanos(think));
                let start = ctx.now();
                let value = counter.increment_and_get(ctx, &mut cli).expect("dso");
                let end = ctx.now();
                history.lock().push(Op { start, end, value });
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    let h = history.lock().clone();
    h
}

#[test]
fn unreplicated_counter_is_linearizable() {
    for seed in [1, 2, 3, 4, 5] {
        let h = record_history(seed, 2, 16, 20, 1);
        assert_eq!(h.len(), 16 * 20);
        check_unit_counter(&h).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn replicated_counter_is_linearizable() {
    for seed in [11, 12, 13] {
        let h = record_history(seed, 3, 12, 15, 2);
        assert_eq!(h.len(), 12 * 15);
        check_unit_counter(&h).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn single_client_history_is_strictly_sequential() {
    let h = record_history(21, 2, 1, 50, 1);
    // One client: values must be exactly 1..=50 in record order.
    for (i, op) in h.iter().enumerate() {
        assert_eq!(op.value, i as i64 + 1);
    }
    check_unit_counter(&h).expect("sequential history is linearizable");
}

// ---------------------------------------------------------------------------
// Histories with reads: the read fast path must stay linearizable in the
// default (primary-reads) mode.
// ---------------------------------------------------------------------------

fn record_mixed_history(
    seed: u64,
    nodes: u32,
    writers: u32,
    readers: u32,
    ops_per_thread: u32,
    rf: u8,
) -> (Vec<Op>, Vec<Op>) {
    let mut sim = Sim::new(seed);
    let cluster =
        DsoCluster::start(&sim, nodes, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let incs: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
    let reads: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
    let counter_for = move |rf: u8| {
        if rf > 1 {
            AtomicLong::persistent("mixed-counter", 0, rf)
        } else {
            AtomicLong::new("mixed-counter")
        }
    };
    for t in 0..writers {
        let handle = handle.clone();
        let incs = incs.clone();
        sim.spawn(&format!("w{t}"), move |ctx| {
            use rand::RngExt;
            let mut cli = handle.connect();
            let counter = counter_for(rf);
            for _ in 0..ops_per_thread {
                let think: u64 = ctx.rng().random_range(0..2_000_000);
                ctx.sleep(std::time::Duration::from_nanos(think));
                let start = ctx.now();
                let value = counter.increment_and_get(ctx, &mut cli).expect("dso");
                let end = ctx.now();
                incs.lock().push(Op { start, end, value });
            }
        });
    }
    for t in 0..readers {
        let handle = handle.clone();
        let reads = reads.clone();
        sim.spawn(&format!("r{t}"), move |ctx| {
            use rand::RngExt;
            let mut cli = handle.connect();
            let counter = counter_for(rf);
            for _ in 0..ops_per_thread {
                let think: u64 = ctx.rng().random_range(0..2_000_000);
                ctx.sleep(std::time::Duration::from_nanos(think));
                let start = ctx.now();
                let value = counter.get(ctx, &mut cli).expect("dso");
                let end = ctx.now();
                reads.lock().push(Op { start, end, value });
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    let i = incs.lock().clone();
    let r = reads.lock().clone();
    (i, r)
}

#[test]
fn mixed_increments_and_reads_are_linearizable() {
    use dso::verify::check_counter_with_reads;
    for seed in [31, 32, 33] {
        let (incs, reads) = record_mixed_history(seed, 2, 10, 10, 15, 1);
        assert_eq!(incs.len(), 10 * 15);
        assert_eq!(reads.len(), 10 * 15);
        check_counter_with_reads(&incs, &reads).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn replicated_mixed_history_is_linearizable() {
    use dso::verify::check_counter_with_reads;
    for seed in [41, 42] {
        let (incs, reads) = record_mixed_history(seed, 3, 8, 8, 12, 2);
        assert_eq!(incs.len(), 8 * 12);
        assert_eq!(reads.len(), 8 * 12);
        check_counter_with_reads(&incs, &reads).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}
