//! Linearizability of the shared counter under heavy concurrency, random
//! latencies, and mixed workloads — verified with the exact checker from
//! `dso::verify`.

use std::sync::Arc;

use parking_lot::Mutex;
use simcore::Sim;

use dso::api::AtomicLong;
use dso::verify::{check_unit_counter, Op};
use dso::{DsoCluster, DsoConfig, ObjectRegistry};

fn record_history(seed: u64, nodes: u32, threads: u32, ops_per_thread: u32, rf: u8) -> Vec<Op> {
    let mut sim = Sim::new(seed);
    let cluster =
        DsoCluster::start(&sim, nodes, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let history: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
    for t in 0..threads {
        let handle = handle.clone();
        let history = history.clone();
        sim.spawn(&format!("t{t}"), move |ctx| {
            use rand::RngExt;
            let mut cli = handle.connect();
            let counter = if rf > 1 {
                AtomicLong::persistent("lin-counter", 0, rf)
            } else {
                AtomicLong::new("lin-counter")
            };
            for _ in 0..ops_per_thread {
                // Random think time interleaves the operations.
                let think: u64 = ctx.rng().random_range(0..2_000_000);
                ctx.sleep(std::time::Duration::from_nanos(think));
                let start = ctx.now();
                let value = counter.increment_and_get(ctx, &mut cli).expect("dso");
                let end = ctx.now();
                history.lock().push(Op { start, end, value });
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    let h = history.lock().clone();
    h
}

#[test]
fn unreplicated_counter_is_linearizable() {
    for seed in [1, 2, 3, 4, 5] {
        let h = record_history(seed, 2, 16, 20, 1);
        assert_eq!(h.len(), 16 * 20);
        check_unit_counter(&h).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn replicated_counter_is_linearizable() {
    for seed in [11, 12, 13] {
        let h = record_history(seed, 3, 12, 15, 2);
        assert_eq!(h.len(), 12 * 15);
        check_unit_counter(&h).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn single_client_history_is_strictly_sequential() {
    let h = record_history(21, 2, 1, 50, 1);
    // One client: values must be exactly 1..=50 in record order.
    for (i, op) in h.iter().enumerate() {
        assert_eq!(op.value, i as i64 + 1);
    }
    check_unit_counter(&h).expect("sequential history is linearizable");
}
