//! Property tests for the [`Mergeable`] contract that
//! `ConsistencyMode::CrdtMerge` leans on: anti-entropy applies `merge` in
//! whatever pairwise order the schedule produces, so convergence requires
//! the merge to be commutative, associative, and idempotent. [`GCounter`]
//! is the built-in witness.
//!
//! [`Mergeable`]: dso::Mergeable
//! [`GCounter`]: dso::api::GCounter

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use proptest::prelude::*;
use simcore::explore::{explore_seeds, Check};
use simcore::Sim;

use dso::objects::GCounter;
use dso::{
    api, CallCtx, ConsistencyMode, DsoCluster, DsoConfig, ObjectRegistry, SharedObject, Ticket,
};

/// Builds a counter holding exactly `entries` (via the registry factory's
/// creation-args path — the same bytes a client's `__create` would ship).
fn counter(entries: &BTreeMap<u32, u64>) -> Box<dyn SharedObject> {
    let args = simcore::codec::to_bytes(entries).expect("map encodes");
    GCounter::factory(&args).expect("factory accepts an entry map")
}

/// Merges `other`'s saved state into `obj` and returns `obj`'s new state.
fn merged(obj: &mut dyn SharedObject, other: &dyn SharedObject) -> Vec<u8> {
    let state = other.save();
    obj.as_mergeable().expect("GCounter is mergeable").merge(&state).expect("states merge");
    obj.save()
}

/// Reads the total through the public method surface.
fn total(obj: &mut dyn SharedObject) -> u64 {
    let call = CallCtx { ticket: Ticket(0), replicated: false, node: 0 };
    let args = simcore::codec::to_bytes(&()).expect("unit encodes");
    match obj.invoke(&call, "get", &args).expect("get").reply {
        dso::Reply::Value(v) => simcore::codec::from_bytes(&v).expect("u64 decodes"),
        other => panic!("get must answer immediately, got {other:?}"),
    }
}

fn entries() -> impl Strategy<Value = BTreeMap<u32, u64>> {
    proptest::collection::btree_map(0u32..6, 0u64..1_000, 0..6)
}

proptest! {
    /// a ⊔ b = b ⊔ a.
    #[test]
    fn merge_is_commutative(a in entries(), b in entries()) {
        let mut ab = counter(&a);
        let mut ba = counter(&b);
        let left = merged(ab.as_mut(), counter(&b).as_ref());
        let right = merged(ba.as_mut(), counter(&a).as_ref());
        prop_assert_eq!(left, right);
    }

    /// (a ⊔ b) ⊔ c = a ⊔ (b ⊔ c).
    #[test]
    fn merge_is_associative(a in entries(), b in entries(), c in entries()) {
        let mut left = counter(&a);
        merged(left.as_mut(), counter(&b).as_ref());
        let left = merged(left.as_mut(), counter(&c).as_ref());
        let mut bc = counter(&b);
        merged(bc.as_mut(), counter(&c).as_ref());
        let mut right = counter(&a);
        let right = merged(right.as_mut(), bc.as_ref());
        prop_assert_eq!(left, right);
    }

    /// a ⊔ a = a — re-delivered anti-entropy batches are free.
    #[test]
    fn merge_is_idempotent(a in entries()) {
        let mut obj = counter(&a);
        let before = obj.save();
        let after = merged(obj.as_mut(), counter(&a).as_ref());
        prop_assert_eq!(before, after);
    }

    /// Merging never loses an increment: the merged total dominates both
    /// inputs (the join is an upper bound).
    #[test]
    fn merge_is_inflationary(a in entries(), b in entries()) {
        let mut obj = counter(&a);
        let total_a = total(obj.as_mut());
        let mut other = counter(&b);
        let total_b = total(other.as_mut());
        merged(obj.as_mut(), other.as_ref());
        let joined = total(obj.as_mut());
        prop_assert!(joined >= total_a.max(total_b));
    }
}

/// The algebra holds end to end: divergent replicas driven through a live
/// `CrdtMerge` cluster converge on the exact sum across 25 perturbed
/// schedules, whatever pairwise anti-entropy order each schedule yields.
#[test]
fn divergent_replicas_converge_across_schedules() {
    const WRITERS: u64 = 4;
    const INCS: u64 = 6;
    let scenario = |sim: &mut Sim| -> Check {
        let cfg = DsoConfig::builder()
            .consistency(ConsistencyMode::CrdtMerge)
            .anti_entropy_interval(Duration::from_millis(5))
            .build()
            .expect("valid crdt config");
        let cluster = DsoCluster::start(sim, 3, cfg, ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let finals: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for w in 0..WRITERS {
            let handle = handle.clone();
            sim.spawn(&format!("writer-{w}"), move |ctx| {
                let mut cli = handle.connect();
                let counter = api::GCounter::persistent("props", 3);
                for _ in 0..INCS {
                    counter.inc(ctx, &mut cli, 1).expect("reachable");
                }
            });
        }
        {
            let handle = handle.clone();
            let finals = finals.clone();
            sim.spawn("auditor", move |ctx| {
                let mut cli = handle.connect();
                let counter = api::GCounter::persistent("props", 3);
                // Far past the last write and many anti-entropy rounds.
                ctx.sleep(Duration::from_secs(2));
                for _ in 0..4 {
                    let v = counter.get(ctx, &mut cli).expect("reachable");
                    finals.lock().push(v);
                    ctx.sleep(Duration::from_millis(20));
                }
            });
        }
        Box::new(move || {
            let _keep = cluster;
            let finals = finals.lock();
            if finals.iter().any(|&v| v != WRITERS * INCS) {
                return Err(format!("not converged on {}: {finals:?}", WRITERS * INCS));
            }
            Ok(())
        })
    };
    explore_seeds(600, 25, scenario).expect_clean();
}
