//! Runtime enforcement of `is_readonly` declarations: a method that lies
//! about being read-only would silently skip SMR and fork replicas. The
//! server snapshots the state around declared-readonly calls
//! (`DsoConfig::verify_readonly`) and rejects the call when it mutated.

use simcore::Sim;

use dso::{
    api, CallCtx, DsoCluster, DsoConfig, DsoError, Effects, ObjectError, ObjectRegistry,
    SharedObject,
};

/// A counter whose `peek` claims to be read-only but bumps the count —
/// exactly the misdeclaration the simlint `readonly-mutation` rule catches
/// statically; this test pins the runtime backstop for objects the linter
/// cannot see (e.g. uploaded from outside the workspace).
#[derive(Default)]
struct Sneaky {
    count: i64,
}

impl SharedObject for Sneaky {
    fn invoke(
        &mut self,
        _call: &CallCtx,
        method: &str,
        _args: &[u8],
    ) -> Result<Effects, ObjectError> {
        match method {
            "bump" => {
                self.count += 1;
                Effects::value(&self.count)
            }
            // Deliberate misdeclaration under test; integration tests are
            // exempt from the readonly-mutation lint for exactly this.
            "peek" => {
                self.count += 1; // the lie: declared read-only below
                Effects::value(&self.count)
            }
            other => Err(ObjectError::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        method == "peek"
    }

    fn save(&self) -> Vec<u8> {
        // invariant: an i64 always encodes.
        simcore::codec::to_bytes(&self.count).expect("i64 encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjectError> {
        self.count =
            simcore::codec::from_bytes(state).map_err(|e| ObjectError::BadState(e.to_string()))?;
        Ok(())
    }
}

fn registry() -> ObjectRegistry {
    let mut registry = ObjectRegistry::with_builtins();
    registry.register("Sneaky", |_args| Ok(Box::new(Sneaky::default())));
    registry
}

/// Outcome of the peek-then-bump client: one declared-readonly call, one
/// honest mutator.
type PeekBump = (Result<i64, DsoError>, Result<i64, DsoError>);

fn run(cfg: DsoConfig) -> PeekBump {
    run_metered(cfg).0
}

/// Like [`run`], but also reports how many `verify_readonly` snapshots the
/// servers actually took (the `dso.readonly_snapshots` counter).
fn run_metered(cfg: DsoConfig) -> (PeekBump, u64) {
    let metrics = simcore::MetricsRegistry::new();
    let mut sim = Sim::new(5);
    sim.set_metrics(&metrics);
    let cluster = DsoCluster::start(&sim, 2, cfg, registry());
    let handle = cluster.client_handle();
    let results = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let results2 = results.clone();
    sim.spawn("client", move |ctx| {
        let mut cli = handle.connect();
        let h = api::RawHandle::new("Sneaky", "liar", 1, &());
        let read: Result<i64, DsoError> = h.call_read(ctx, &mut cli, "peek", &());
        let write: Result<i64, DsoError> = h.call(ctx, &mut cli, "bump", &());
        *results2.lock() = Some((read, write));
    });
    sim.run_until_idle().expect_quiescent();
    let out = results.lock().take().expect("client ran");
    drop(cluster);
    (out, metrics.counter_value("dso.readonly_snapshots"))
}

#[test]
fn misdeclared_readonly_method_is_rejected_at_runtime() {
    let (read, write) = run(DsoConfig::default());
    match read {
        Err(DsoError::Object(ObjectError::ReadonlyViolation(m))) => {
            assert!(m.contains("peek"), "violation names the method: {m}");
        }
        other => panic!("expected ReadonlyViolation, got {other:?}"),
    }
    // The rejection restored the pre-call state: the honest mutator sees
    // a counter untouched by the rejected peek.
    assert_eq!(write.expect("bump succeeds"), 1);
}

#[test]
fn verification_can_be_disabled() {
    let cfg = DsoConfig { verify_readonly: false, ..DsoConfig::default() };
    let (read, write) = run(cfg);
    // Unverified, the lie goes through — and the mutation with it.
    assert_eq!(read.expect("peek succeeds unverified"), 1);
    assert_eq!(write.expect("bump succeeds"), 2);
}

#[test]
fn unproven_readonly_methods_are_snapshotted() {
    let ((read, _), snapshots) = run_metered(DsoConfig::default());
    assert!(read.is_err(), "the lying peek is rejected");
    // Sneaky is not in any proven-pure report, so the server paid for a
    // snapshot around the declared-readonly call.
    assert!(snapshots >= 1, "expected at least one verify snapshot, saw {snapshots}");
}

#[test]
fn proven_pure_methods_skip_snapshotting() {
    // Pretend the static purity pass proved Sneaky::peek pure (it is a
    // deliberate false certificate — exactly what this test needs to
    // observe that the snapshot is skipped on the proof's say-so).
    let mut pure = dso::PureMethods::default();
    pure.insert("Sneaky", "peek");
    let cfg = DsoConfig { pure_methods: pure, ..DsoConfig::default() };
    let ((read, write), snapshots) = run_metered(cfg);
    // No snapshot was taken, so the lie goes through undetected: trusting
    // a wrong proof trades the runtime net away. simanalyze only certifies
    // methods it can see the full source of, which Sneaky is not.
    assert_eq!(snapshots, 0, "proven-pure call must not snapshot");
    assert_eq!(read.expect("peek unverified under the certificate"), 1);
    assert_eq!(write.expect("bump succeeds"), 2);
}
