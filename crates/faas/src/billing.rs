//! Invocation billing: duration × memory accounting at AWS Lambda prices
//! (Table 3 of the paper).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Prices used by the cost experiments (us-east-1, 2019).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pricing {
    /// Dollars per GB-second of function duration.
    pub per_gb_second: f64,
    /// Dollars per invocation request.
    pub per_request: f64,
}

impl Default for Pricing {
    fn default() -> Self {
        Pricing { per_gb_second: 0.000_016_666_7, per_request: 0.000_000_2 }
    }
}

/// One billed invocation.
#[derive(Clone, Debug)]
pub struct InvocationRecord {
    /// Function name.
    pub function: String,
    /// Billed duration (excludes the provider-side cold start, as AWS does).
    pub duration: Duration,
    /// Configured memory.
    pub memory_mb: u32,
    /// Whether this invocation paid a cold start.
    pub cold_start: bool,
    /// Whether the invocation failed.
    pub failed: bool,
}

/// One reclaimed warm container: the pool held it idle for `idle` before
/// retiring it. The idle tail is what a provisioned pool *costs* — compute
/// paid for but not serving requests — so it is part of the ledger, not a
/// silent `Vec::retain`.
#[derive(Clone, Debug)]
pub struct RetirementRecord {
    /// Function whose pool the container belonged to.
    pub function: String,
    /// Configured memory of the function.
    pub memory_mb: u32,
    /// How long the container sat unused before reclamation.
    pub idle: Duration,
}

/// Shared, thread-safe ledger of invocations.
#[derive(Clone, Default)]
pub struct Billing {
    records: Arc<Mutex<Vec<InvocationRecord>>>,
    retired: Arc<Mutex<Vec<RetirementRecord>>>,
}

impl Billing {
    /// Creates an empty ledger.
    pub fn new() -> Billing {
        Billing::default()
    }

    /// Appends a record.
    pub fn record(&self, rec: InvocationRecord) {
        self.records.lock().push(rec);
    }

    /// Number of recorded invocations.
    pub fn invocations(&self) -> usize {
        self.records.lock().len()
    }

    /// Number of cold starts.
    pub fn cold_starts(&self) -> usize {
        self.records.lock().iter().filter(|r| r.cold_start).count()
    }

    /// Total GB-seconds across all invocations.
    pub fn gb_seconds(&self) -> f64 {
        self.records
            .lock()
            .iter()
            .map(|r| r.duration.as_secs_f64() * (r.memory_mb as f64 / 1024.0))
            .sum()
    }

    /// Total compute time across all invocations.
    pub fn total_duration(&self) -> Duration {
        self.records.lock().iter().map(|r| r.duration).sum()
    }

    /// Dollar cost under `pricing`.
    pub fn cost(&self, pricing: Pricing) -> f64 {
        self.gb_seconds() * pricing.per_gb_second + self.invocations() as f64 * pricing.per_request
    }

    /// Appends a container-retirement record.
    pub fn record_retirement(&self, rec: RetirementRecord) {
        self.retired.lock().push(rec);
    }

    /// Number of retired (idle-reclaimed) containers.
    pub fn retirements(&self) -> usize {
        self.retired.lock().len()
    }

    /// GB-seconds containers sat idle before retirement — the cost of
    /// keeping pools warm, reported next to the execution GB-seconds.
    pub fn idle_gb_seconds(&self) -> f64 {
        self.retired
            .lock()
            .iter()
            .map(|r| r.idle.as_secs_f64() * (r.memory_mb as f64 / 1024.0))
            .sum()
    }

    /// Forgets all records (e.g. to exclude a warm-up phase from Table 3).
    pub fn reset(&self) {
        self.records.lock().clear();
        self.retired.lock().clear();
    }
}

impl fmt::Debug for Billing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Billing")
            .field("invocations", &self.invocations())
            .field("gb_seconds", &self.gb_seconds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: u64, mem: u32) -> InvocationRecord {
        InvocationRecord {
            function: "f".into(),
            duration: Duration::from_millis(ms),
            memory_mb: mem,
            cold_start: false,
            failed: false,
        }
    }

    #[test]
    fn gb_seconds_and_cost() {
        let b = Billing::new();
        b.record(rec(1000, 1024)); // 1 GB-s
        b.record(rec(500, 2048)); // 1 GB-s
        assert!((b.gb_seconds() - 2.0).abs() < 1e-9);
        let p = Pricing::default();
        let expected = 2.0 * p.per_gb_second + 2.0 * p.per_request;
        assert!((b.cost(p) - expected).abs() < 1e-12);
        assert_eq!(b.invocations(), 2);
        assert_eq!(b.total_duration(), Duration::from_millis(1500));
    }

    #[test]
    fn reset_clears() {
        let b = Billing::new();
        b.record(rec(100, 128));
        b.reset();
        assert_eq!(b.invocations(), 0);
        assert_eq!(b.gb_seconds(), 0.0);
    }

    #[test]
    fn lambda_pricing_magnitude_matches_paper() {
        // §6.2.3: 80 functions at 1792 MB ≈ 0.25 cents per second.
        let b = Billing::new();
        for _ in 0..80 {
            b.record(rec(1000, 1792));
        }
        let per_second = b.cost(Pricing::default());
        assert!(
            per_second > 0.0022 && per_second < 0.0027,
            "80x1792MB costs ${per_second}/s, expected ~$0.0024/s"
        );
    }
}
