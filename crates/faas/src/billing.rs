//! Invocation billing: duration × memory accounting at AWS Lambda prices
//! (Table 3 of the paper).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::SimTime;

/// Prices used by the cost experiments (us-east-1, 2019).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pricing {
    /// Dollars per GB-second of function duration.
    pub per_gb_second: f64,
    /// Dollars per invocation request.
    pub per_request: f64,
    /// Dollars per GB-second of *stored* function snapshot (S3-like
    /// storage: ~$0.08/GB-month).
    pub per_snapshot_gb_second: f64,
    /// Dollars per object-store request (PUT/GET/LIST/DELETE), the line
    /// the DSO durability tier pays for WAL segments and checkpoints
    /// (S3 PUT: ~$0.005 per 1 000 requests).
    pub per_s3_request: f64,
    /// Dollars per GB-second of object-store *data* held (S3 standard:
    /// ~$0.023/GB-month) — WAL segments and checkpoint blobs between
    /// their PUT and garbage collection.
    pub per_storage_gb_second: f64,
}

impl Default for Pricing {
    fn default() -> Self {
        Pricing {
            per_gb_second: 0.000_016_666_7,
            per_request: 0.000_000_2,
            per_snapshot_gb_second: 0.08 / (30.0 * 24.0 * 3600.0),
            per_s3_request: 0.000_005,
            per_storage_gb_second: 0.023 / (30.0 * 24.0 * 3600.0),
        }
    }
}

impl Pricing {
    /// Dollar cost of object-store durability traffic: `requests` store
    /// calls plus `stored_gb_seconds` of data held. The inputs match
    /// `dso::DurabilityStats::requests()` and
    /// `dso::DurabilityStats::stored_gb_seconds`, kept as scalars so the
    /// billing crate stays decoupled from the DSO tier.
    pub fn storage_cost(&self, requests: u64, stored_gb_seconds: f64) -> f64 {
        requests as f64 * self.per_s3_request + stored_gb_seconds * self.per_storage_gb_second
    }
}

/// How an invocation's container came to be running.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum StartKind {
    /// Served by a container already in the warm pool — no start paid.
    #[default]
    Warm,
    /// Full classic provisioning (§6.3.3's 1–2 s cold start).
    Classic,
    /// Restored from a cached memory snapshot (base + dirtied pages).
    Restore,
    /// A copy-on-write branch forked off a warm parent container.
    Fork,
}

/// One billed invocation.
#[derive(Clone, Debug)]
pub struct InvocationRecord {
    /// Function name.
    pub function: String,
    /// Billed duration (excludes the provider-side cold start, as AWS does).
    pub duration: Duration,
    /// Configured memory.
    pub memory_mb: u32,
    /// Whether this invocation paid a cold start.
    pub cold_start: bool,
    /// How the serving container started ([`StartKind::Warm`] when it was
    /// already in the pool). `cold_start` stays the classic-only flag for
    /// back-compat: `kind == Classic` implies `cold_start` on the
    /// invocation that paid it.
    pub kind: StartKind,
    /// Whether the invocation failed.
    pub failed: bool,
}

/// One stored function snapshot: created when a snapshot-tier function
/// first boots classically, open-ended until the cache evicts or
/// replaces it. Storage is billed by GB-seconds held
/// ([`Billing::snapshot_gb_seconds`]).
#[derive(Clone, Debug)]
pub struct SnapshotRecord {
    /// Function the snapshot belongs to.
    pub function: String,
    /// Snapshot size: the function's configured memory, in GB.
    pub size_gb: f64,
    /// When the snapshot was captured.
    pub created: SimTime,
    /// When the cache evicted (or replaced) it; `None` while stored.
    pub evicted: Option<SimTime>,
}

/// One reclaimed warm container: the pool held it idle for `idle` before
/// retiring it. The idle tail is what a provisioned pool *costs* — compute
/// paid for but not serving requests — so it is part of the ledger, not a
/// silent `Vec::retain`.
#[derive(Clone, Debug)]
pub struct RetirementRecord {
    /// Function whose pool the container belonged to.
    pub function: String,
    /// Configured memory of the function.
    pub memory_mb: u32,
    /// How long the container sat unused before reclamation.
    pub idle: Duration,
}

/// Shared, thread-safe ledger of invocations.
#[derive(Clone, Default)]
pub struct Billing {
    records: Arc<Mutex<Vec<InvocationRecord>>>,
    retired: Arc<Mutex<Vec<RetirementRecord>>>,
    snapshots: Arc<Mutex<Vec<SnapshotRecord>>>,
}

impl Billing {
    /// Creates an empty ledger.
    pub fn new() -> Billing {
        Billing::default()
    }

    /// Appends a record.
    pub fn record(&self, rec: InvocationRecord) {
        self.records.lock().push(rec);
    }

    /// Number of recorded invocations.
    pub fn invocations(&self) -> usize {
        self.records.lock().len()
    }

    /// Number of cold starts.
    pub fn cold_starts(&self) -> usize {
        self.records.lock().iter().filter(|r| r.cold_start).count()
    }

    /// Number of invocations served after a snapshot restore.
    pub fn restores(&self) -> usize {
        self.records.lock().iter().filter(|r| r.kind == StartKind::Restore).count()
    }

    /// Number of invocations served by forked CoW branches.
    pub fn forks(&self) -> usize {
        self.records.lock().iter().filter(|r| r.kind == StartKind::Fork).count()
    }

    /// Total GB-seconds across all invocations.
    pub fn gb_seconds(&self) -> f64 {
        // fsum, not Iterator::sum: an empty ledger must report +0.0
        // (f64's empty sum is -0.0, which leaks a "-0.00" into rendered
        // cost tables).
        simcore::fsum(
            self.records
                .lock()
                .iter()
                .map(|r| r.duration.as_secs_f64() * (r.memory_mb as f64 / 1024.0)),
        )
    }

    /// Total compute time across all invocations.
    pub fn total_duration(&self) -> Duration {
        self.records.lock().iter().map(|r| r.duration).sum()
    }

    /// Dollar cost under `pricing`.
    pub fn cost(&self, pricing: Pricing) -> f64 {
        self.gb_seconds() * pricing.per_gb_second + self.invocations() as f64 * pricing.per_request
    }

    /// Appends a container-retirement record.
    pub fn record_retirement(&self, rec: RetirementRecord) {
        self.retired.lock().push(rec);
    }

    /// Number of retired (idle-reclaimed) containers.
    pub fn retirements(&self) -> usize {
        self.retired.lock().len()
    }

    /// GB-seconds containers sat idle before retirement — the cost of
    /// keeping pools warm, reported next to the execution GB-seconds.
    pub fn idle_gb_seconds(&self) -> f64 {
        // fsum: +0.0 on an empty ledger, see gb_seconds.
        simcore::fsum(
            self.retired
                .lock()
                .iter()
                .map(|r| r.idle.as_secs_f64() * (r.memory_mb as f64 / 1024.0)),
        )
    }

    /// Opens a snapshot-storage record for `function` (the cache just
    /// captured or replaced its snapshot).
    pub fn record_snapshot_created(&self, function: &str, memory_mb: u32, at: SimTime) {
        self.snapshots.lock().push(SnapshotRecord {
            function: function.to_string(),
            size_gb: f64::from(memory_mb) / 1024.0,
            created: at,
            evicted: None,
        });
    }

    /// Closes the open snapshot-storage record for `function` (the cache
    /// evicted or replaced it). No-op if none is open.
    pub fn mark_snapshot_evicted(&self, function: &str, at: SimTime) {
        let mut g = self.snapshots.lock();
        if let Some(r) = g.iter_mut().rev().find(|r| r.function == function && r.evicted.is_none())
        {
            r.evicted = Some(at);
        }
    }

    /// Number of snapshots ever captured.
    pub fn snapshots_taken(&self) -> usize {
        self.snapshots.lock().len()
    }

    /// GB-seconds of snapshot storage held, counting open records up to
    /// `until` (typically the end of the run).
    pub fn snapshot_gb_seconds(&self, until: SimTime) -> f64 {
        // fsum: +0.0 on an empty ledger, see gb_seconds.
        simcore::fsum(self.snapshots.lock().iter().map(|r| {
            let end = r.evicted.unwrap_or(until);
            r.size_gb * end.saturating_duration_since(r.created).as_secs_f64()
        }))
    }

    /// Dollar cost of snapshot storage held up to `until`.
    pub fn snapshot_cost(&self, pricing: Pricing, until: SimTime) -> f64 {
        self.snapshot_gb_seconds(until) * pricing.per_snapshot_gb_second
    }

    /// Forgets all records (e.g. to exclude a warm-up phase from Table 3).
    pub fn reset(&self) {
        self.records.lock().clear();
        self.retired.lock().clear();
        self.snapshots.lock().clear();
    }
}

impl fmt::Debug for Billing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Billing")
            .field("invocations", &self.invocations())
            .field("gb_seconds", &self.gb_seconds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: u64, mem: u32) -> InvocationRecord {
        InvocationRecord {
            function: "f".into(),
            duration: Duration::from_millis(ms),
            memory_mb: mem,
            cold_start: false,
            kind: StartKind::Warm,
            failed: false,
        }
    }

    #[test]
    fn gb_seconds_and_cost() {
        let b = Billing::new();
        b.record(rec(1000, 1024)); // 1 GB-s
        b.record(rec(500, 2048)); // 1 GB-s
        assert!((b.gb_seconds() - 2.0).abs() < 1e-9);
        let p = Pricing::default();
        let expected = 2.0 * p.per_gb_second + 2.0 * p.per_request;
        assert!((b.cost(p) - expected).abs() < 1e-12);
        assert_eq!(b.invocations(), 2);
        assert_eq!(b.total_duration(), Duration::from_millis(1500));
    }

    #[test]
    fn reset_clears() {
        let b = Billing::new();
        b.record(rec(100, 128));
        b.reset();
        assert_eq!(b.invocations(), 0);
        assert_eq!(b.gb_seconds(), 0.0);
    }

    #[test]
    fn start_kinds_are_counted() {
        let b = Billing::new();
        b.record(InvocationRecord { kind: StartKind::Restore, ..rec(10, 1792) });
        b.record(InvocationRecord { kind: StartKind::Fork, ..rec(10, 1792) });
        b.record(InvocationRecord { kind: StartKind::Fork, ..rec(10, 1792) });
        b.record(rec(10, 1792));
        assert_eq!(b.restores(), 1);
        assert_eq!(b.forks(), 2);
        assert_eq!(b.cold_starts(), 0);
    }

    #[test]
    fn snapshot_storage_is_billed_by_gb_seconds_held() {
        let b = Billing::new();
        // 1024 MB = 1 GB, held from t=10s to t=40s → 30 GB-s.
        b.record_snapshot_created("f", 1024, SimTime::from_secs(10));
        b.mark_snapshot_evicted("f", SimTime::from_secs(40));
        // 2048 MB = 2 GB, open from t=50s; counted up to `until`.
        b.record_snapshot_created("g", 2048, SimTime::from_secs(50));
        let gbs = b.snapshot_gb_seconds(SimTime::from_secs(60));
        assert!((gbs - (30.0 + 20.0)).abs() < 1e-9, "{gbs}");
        assert_eq!(b.snapshots_taken(), 2);
        let cost = b.snapshot_cost(Pricing::default(), SimTime::from_secs(60));
        assert!((cost - gbs * Pricing::default().per_snapshot_gb_second).abs() < 1e-15);
        // Evicting a function with no open record is a no-op.
        b.mark_snapshot_evicted("f", SimTime::from_secs(99));
        assert!((b.snapshot_gb_seconds(SimTime::from_secs(60)) - gbs).abs() < 1e-9);
    }

    #[test]
    fn empty_ledgers_report_positive_zero() {
        let b = Billing::new();
        // -0.0 == 0.0 under IEEE comparison, so check the sign bit: a
        // negative zero would render as "-0.00" in cost tables.
        assert!(!b.gb_seconds().is_sign_negative());
        assert!(!b.idle_gb_seconds().is_sign_negative());
        assert!(!b.snapshot_gb_seconds(SimTime::from_secs(1)).is_sign_negative());
    }

    #[test]
    fn storage_cost_charges_requests_and_held_bytes() {
        let p = Pricing::default();
        assert_eq!(p.storage_cost(0, 0.0), 0.0);
        // 1000 requests at $0.005/1000 plus one GB-month of storage.
        let month = 30.0 * 24.0 * 3600.0;
        let cost = p.storage_cost(1000, month);
        assert!((cost - (0.005 + 0.023)).abs() < 1e-9, "{cost}");
    }

    #[test]
    fn lambda_pricing_magnitude_matches_paper() {
        // §6.2.3: 80 functions at 1792 MB ≈ 0.25 cents per second.
        let b = Billing::new();
        for _ in 0..80 {
            b.record(rec(1000, 1792));
        }
        let per_second = b.cost(Pricing::default());
        assert!(
            per_second > 0.0022 && per_second < 0.0027,
            "80x1792MB costs ${per_second}/s, expected ~$0.0024/s"
        );
    }
}
