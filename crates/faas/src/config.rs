//! Platform configuration: latency models, limits, pricing, and the
//! cold-start tier (snapshot/restore and CoW forking), with a validating
//! builder mirroring `DsoConfig::builder`.

use std::time::Duration;

use simcore::LatencyModel;

use crate::billing::Pricing;

/// Snapshot page size used by the dirty-page restore cost model (4 KiB,
/// the unit Firecracker/CRIU-style snapshotting restores lazily).
pub const SNAPSHOT_PAGE_BYTES: u64 = 4096;

/// Pages per MB of configured function memory.
const PAGES_PER_MB: u64 = 1024 * 1024 / SNAPSHOT_PAGE_BYTES;

/// How a function's containers come into existence when no warm one is
/// available (see DESIGN.md "Cold-start tiers").
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ColdStartPolicy {
    /// Full provisioning on every cold start (§6.3.3's 1–2 s), the
    /// pre-existing behavior and the default.
    #[default]
    Classic,
    /// First cold start provisions classically and captures a memory
    /// snapshot; later cold starts restore from it, paying
    /// [`SnapshotConfig::restore_base`] plus a per-dirtied-page cost
    /// (~150–250 ms at Lambda-like sizes) instead of full provisioning.
    SnapshotRestore,
    /// Everything `SnapshotRestore` does, plus the function may be
    /// invoked through [`crate::FaasHandle::invoke_forked`]: one warm
    /// container fans out into N copy-on-write branches at
    /// [`SnapshotConfig::fork`] each (~10–50 ms).
    Fork,
}

impl ColdStartPolicy {
    /// Whether this policy uses the snapshot machinery at all.
    pub fn uses_snapshots(self) -> bool {
        !matches!(self, ColdStartPolicy::Classic)
    }
}

/// Cost model of the snapshot tier.
///
/// Restoring a snapshot costs `restore_base` plus `restore_per_page` for
/// every dirtied page, where the number of dirtied pages is
/// `memory_mb × 256 × dirty_fraction` (4 KiB pages). At the defaults a
/// 1792 MB function restores in ≈ 120 ms + 92 ms ≈ 210 ms — an order of
/// magnitude under the classic 1.5 s provision, matching what
/// snapshot-restore systems (Faasm's Faaslets, Firecracker snapshots)
/// report.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotConfig {
    /// Base latency of mapping a snapshot back in (page-table setup,
    /// device reconnect) before any page is touched.
    pub restore_base: LatencyModel,
    /// Cost of faulting one dirtied page back in.
    pub restore_per_page: Duration,
    /// Fraction of the function's pages dirtied between snapshot and
    /// first use (the working set that must actually be restored).
    pub dirty_fraction: f64,
    /// Latency of forking one CoW branch off a warm container
    /// (§"Fork semantics" in DESIGN.md; 10–50 ms).
    pub fork: LatencyModel,
    /// Maximum number of function snapshots kept; the least recently
    /// used (by virtual time, name as the deterministic tie-break) is
    /// evicted when a new one would exceed it. A miss falls back to
    /// classic provisioning and repopulates the cache.
    pub snapshot_cache_capacity: usize,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            restore_base: LatencyModel::uniform(Duration::from_millis(120), 0.25),
            restore_per_page: Duration::from_micros(10),
            dirty_fraction: 0.02,
            fork: LatencyModel::uniform(Duration::from_millis(25), 0.6),
            snapshot_cache_capacity: 64,
        }
    }
}

impl SnapshotConfig {
    /// Pages that must be faulted back in when restoring a snapshot of a
    /// `memory_mb` function.
    pub fn dirty_pages(&self, memory_mb: u32) -> u64 {
        let total = u64::from(memory_mb) * PAGES_PER_MB;
        (total as f64 * self.dirty_fraction).round() as u64
    }

    /// The deterministic part of a restore: per-page fault cost for the
    /// dirtied working set (the base is sampled per restore).
    pub fn page_restore_cost(&self, memory_mb: u32) -> Duration {
        self.restore_per_page * self.dirty_pages(memory_mb) as u32
    }
}

/// Platform configuration, calibrated to AWS Lambda in 2019.
///
/// Construct it with [`FaasConfig::builder`] (validated) or
/// [`FaasConfig::default`]; the fields stay public for reading.
#[derive(Clone, Debug)]
pub struct FaasConfig {
    /// One-way latency of the invoke control path when a warm container is
    /// available (the "Invocation" segment of Fig. 7b).
    pub warm_dispatch: LatencyModel,
    /// Container provisioning delay (§6.3.3: "cold starts … add 1 to 2
    /// seconds of invocation delay").
    pub cold_start: LatencyModel,
    /// One-way latency of the response path.
    pub response: LatencyModel,
    /// Idle time after which a warm container is reclaimed.
    pub container_idle_timeout: Duration,
    /// Account-wide concurrent-execution limit.
    pub concurrency_limit: u32,
    /// Hard cap on function duration (15 min on Lambda).
    pub max_duration: Duration,
    /// Probability that an invocation crashes mid-run (failure injection).
    pub failure_rate: f64,
    /// How many containers share one physical host. Container `id` runs
    /// on host `id / containers_per_host` — a deterministic bin-packing
    /// stand-in for the provider's placement. Deployment layers use the
    /// host id ([`crate::FnCtx::host`]) to share per-host resources (e.g.
    /// the DSO node cache) between co-located containers.
    pub containers_per_host: u32,
    /// Platform-wide default cold-start policy; a function registered
    /// with [`crate::FunctionRegistry::register_with_policy`] overrides
    /// it. Non-classic policies require [`FaasConfig::snapshot`].
    pub cold_start_policy: ColdStartPolicy,
    /// Cost model of the snapshot tier; `None` (the default) disables it
    /// and every function starts classically.
    pub snapshot: Option<SnapshotConfig>,
    /// Billing prices.
    pub pricing: Pricing,
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            warm_dispatch: LatencyModel::uniform(Duration::from_millis(13), 0.3),
            cold_start: LatencyModel::uniform(Duration::from_millis(1500), 0.33),
            response: LatencyModel::uniform(Duration::from_millis(8), 0.3),
            container_idle_timeout: Duration::from_secs(600),
            concurrency_limit: 3000,
            max_duration: Duration::from_secs(900),
            failure_rate: 0.0,
            containers_per_host: 8,
            cold_start_policy: ColdStartPolicy::Classic,
            snapshot: None,
            pricing: Pricing::default(),
        }
    }
}

impl FaasConfig {
    /// Starts a validating builder from the defaults.
    ///
    /// ```
    /// use faas::{ColdStartPolicy, FaasConfig, SnapshotConfig};
    ///
    /// let cfg = FaasConfig::builder()
    ///     .cold_start_policy(ColdStartPolicy::SnapshotRestore)
    ///     .snapshot(SnapshotConfig::default())
    ///     .build()
    ///     .expect("valid");
    /// assert!(cfg.snapshot.is_some());
    /// ```
    pub fn builder() -> FaasConfigBuilder {
        FaasConfigBuilder { cfg: FaasConfig::default() }
    }

    /// The policy a function effectively runs under: its per-function
    /// override if set, else the platform default — clamped to `Classic`
    /// when no [`FaasConfig::snapshot`] model is configured.
    pub fn effective_policy(&self, function_override: Option<ColdStartPolicy>) -> ColdStartPolicy {
        let p = function_override.unwrap_or(self.cold_start_policy);
        if p.uses_snapshots() && self.snapshot.is_none() {
            ColdStartPolicy::Classic
        } else {
            p
        }
    }

    /// Expected start penalty an invoker pays when no warm container is
    /// available, for a function of `memory_mb` under the platform
    /// default policy: the classic provision under `Classic`, the mean
    /// snapshot restore under `SnapshotRestore`, one fork under `Fork`.
    /// The control plane compares this against its floor threshold to
    /// decide whether provisioned-concurrency floors are still worth
    /// their idle cost.
    pub fn expected_start_penalty(&self, memory_mb: u32) -> Duration {
        match (self.effective_policy(None), &self.snapshot) {
            (ColdStartPolicy::SnapshotRestore, Some(s)) => {
                s.restore_base.base + s.page_restore_cost(memory_mb)
            }
            (ColdStartPolicy::Fork, Some(s)) => s.fork.base,
            _ => self.cold_start.base,
        }
    }
}

/// An invalid [`FaasConfig`] combination, reported by
/// [`FaasConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaasConfigError(String);

impl std::fmt::Display for FaasConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid FaasConfig: {}", self.0)
    }
}

impl std::error::Error for FaasConfigError {}

/// Builder for [`FaasConfig`] that validates the combination on
/// [`build`](FaasConfigBuilder::build). Setters are named after the
/// fields they set and chain by value (the convention shared with
/// `DsoConfig::builder`).
#[derive(Clone, Debug)]
pub struct FaasConfigBuilder {
    cfg: FaasConfig,
}

impl FaasConfigBuilder {
    /// Sets the warm-path dispatch latency model.
    pub fn warm_dispatch(mut self, m: LatencyModel) -> Self {
        self.cfg.warm_dispatch = m;
        self
    }

    /// Sets the classic container-provisioning latency model.
    pub fn cold_start(mut self, m: LatencyModel) -> Self {
        self.cfg.cold_start = m;
        self
    }

    /// Sets the response-path latency model.
    pub fn response(mut self, m: LatencyModel) -> Self {
        self.cfg.response = m;
        self
    }

    /// Sets the idle timeout after which warm containers are reclaimed.
    pub fn container_idle_timeout(mut self, d: Duration) -> Self {
        self.cfg.container_idle_timeout = d;
        self
    }

    /// Sets the account-wide concurrency limit.
    pub fn concurrency_limit(mut self, n: u32) -> Self {
        self.cfg.concurrency_limit = n;
        self
    }

    /// Sets the hard cap on function duration.
    pub fn max_duration(mut self, d: Duration) -> Self {
        self.cfg.max_duration = d;
        self
    }

    /// Sets the failure-injection probability.
    pub fn failure_rate(mut self, p: f64) -> Self {
        self.cfg.failure_rate = p;
        self
    }

    /// Sets how many containers share one physical host.
    pub fn containers_per_host(mut self, n: u32) -> Self {
        self.cfg.containers_per_host = n;
        self
    }

    /// Sets the platform-wide default cold-start policy.
    pub fn cold_start_policy(mut self, p: ColdStartPolicy) -> Self {
        self.cfg.cold_start_policy = p;
        self
    }

    /// Installs the snapshot-tier cost model. Accepts a bare
    /// `SnapshotConfig` or an `Option`; required whenever a non-classic
    /// policy is selected anywhere.
    pub fn snapshot(mut self, s: impl Into<Option<SnapshotConfig>>) -> Self {
        self.cfg.snapshot = s.into();
        self
    }

    /// Sets the billing prices.
    pub fn pricing(mut self, p: Pricing) -> Self {
        self.cfg.pricing = p;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FaasConfigError`] when a field is out of range
    /// (`concurrency_limit == 0`, `containers_per_host == 0`, a zero
    /// `max_duration`, a `failure_rate` outside `[0, 1]`) or the
    /// snapshot tier is inconsistent (a non-classic
    /// `cold_start_policy` without a `snapshot` model, a zero snapshot
    /// cache capacity, a `dirty_fraction` outside `[0, 1]`, or a
    /// restore/fork model that is not actually cheaper than the classic
    /// cold start it replaces).
    pub fn build(self) -> Result<FaasConfig, FaasConfigError> {
        let c = self.cfg;
        if c.concurrency_limit == 0 {
            return Err(FaasConfigError("concurrency_limit must be >= 1".into()));
        }
        if c.containers_per_host == 0 {
            return Err(FaasConfigError("containers_per_host must be >= 1".into()));
        }
        if c.max_duration.is_zero() {
            return Err(FaasConfigError("max_duration must be positive".into()));
        }
        if !(0.0..=1.0).contains(&c.failure_rate) {
            return Err(FaasConfigError(format!(
                "failure_rate must be within [0, 1], got {}",
                c.failure_rate
            )));
        }
        if c.cold_start_policy.uses_snapshots() && c.snapshot.is_none() {
            return Err(FaasConfigError(format!(
                "cold_start_policy {:?} requires a snapshot cost model (set .snapshot(..))",
                c.cold_start_policy
            )));
        }
        if let Some(s) = &c.snapshot {
            if s.snapshot_cache_capacity == 0 {
                return Err(FaasConfigError(
                    "snapshot_cache_capacity must be >= 1 (a zero-entry cache can never hit)"
                        .into(),
                ));
            }
            if !(0.0..=1.0).contains(&s.dirty_fraction) {
                return Err(FaasConfigError(format!(
                    "snapshot dirty_fraction must be within [0, 1], got {}",
                    s.dirty_fraction
                )));
            }
            if s.restore_base.base >= c.cold_start.base {
                return Err(FaasConfigError(
                    "snapshot restore_base must be cheaper than the classic cold start \
                     it replaces"
                        .into(),
                ));
            }
            if s.fork.base >= s.restore_base.base {
                return Err(FaasConfigError(
                    "fork must be cheaper than a snapshot restore (CoW branches skip the \
                     page faults)"
                        .into(),
                ));
            }
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_build() {
        let cfg = FaasConfig::builder().build().expect("defaults are valid");
        assert_eq!(cfg.cold_start_policy, ColdStartPolicy::Classic);
        assert!(cfg.snapshot.is_none());
    }

    #[test]
    fn snapshot_policy_requires_snapshot_model() {
        let err = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::SnapshotRestore)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("requires a snapshot cost model"), "{err}");
        let err =
            FaasConfig::builder().cold_start_policy(ColdStartPolicy::Fork).build().unwrap_err();
        assert!(err.to_string().contains("requires a snapshot cost model"), "{err}");
    }

    #[test]
    fn zero_cache_capacity_is_rejected() {
        let err = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::SnapshotRestore)
            .snapshot(SnapshotConfig { snapshot_cache_capacity: 0, ..SnapshotConfig::default() })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("snapshot_cache_capacity must be >= 1"), "{err}");
    }

    #[test]
    fn restore_must_beat_classic_and_fork_must_beat_restore() {
        let slow_restore = SnapshotConfig {
            restore_base: LatencyModel::fixed(Duration::from_secs(2)),
            ..SnapshotConfig::default()
        };
        let err = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::SnapshotRestore)
            .snapshot(slow_restore)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cheaper than the classic cold start"), "{err}");

        let slow_fork = SnapshotConfig {
            fork: LatencyModel::fixed(Duration::from_millis(500)),
            ..SnapshotConfig::default()
        };
        let err = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::Fork)
            .snapshot(slow_fork)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("fork must be cheaper than a snapshot restore"), "{err}");
    }

    #[test]
    fn range_checks() {
        let err = FaasConfig::builder().concurrency_limit(0).build().unwrap_err();
        assert!(err.to_string().contains("concurrency_limit must be >= 1"), "{err}");
        let err = FaasConfig::builder().containers_per_host(0).build().unwrap_err();
        assert!(err.to_string().contains("containers_per_host must be >= 1"), "{err}");
        let err = FaasConfig::builder().max_duration(Duration::ZERO).build().unwrap_err();
        assert!(err.to_string().contains("max_duration must be positive"), "{err}");
        let err = FaasConfig::builder().failure_rate(1.5).build().unwrap_err();
        assert!(err.to_string().contains("failure_rate must be within [0, 1]"), "{err}");
        let err = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::SnapshotRestore)
            .snapshot(SnapshotConfig { dirty_fraction: 1.2, ..SnapshotConfig::default() })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("dirty_fraction must be within [0, 1]"), "{err}");
    }

    #[test]
    fn dirty_page_cost_model_lands_in_the_150_to_250ms_band() {
        let s = SnapshotConfig::default();
        // 1792 MB × 256 pages/MB × 2% ≈ 9175 pages ≈ 92 ms of faults.
        let pages = s.dirty_pages(1792);
        assert!((9000..9500).contains(&pages), "{pages}");
        let total = Duration::from_millis(120) + s.page_restore_cost(1792);
        assert!(
            total > Duration::from_millis(150) && total < Duration::from_millis(250),
            "expected mean restore in the 150–250 ms band, got {total:?}"
        );
    }

    #[test]
    fn effective_policy_clamps_without_snapshot_model() {
        let cfg = FaasConfig::default();
        assert_eq!(
            cfg.effective_policy(Some(ColdStartPolicy::SnapshotRestore)),
            ColdStartPolicy::Classic,
            "no snapshot model configured"
        );
        let cfg = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::SnapshotRestore)
            .snapshot(SnapshotConfig::default())
            .build()
            .unwrap();
        assert_eq!(cfg.effective_policy(None), ColdStartPolicy::SnapshotRestore);
        assert_eq!(
            cfg.effective_policy(Some(ColdStartPolicy::Fork)),
            ColdStartPolicy::Fork,
            "per-function override wins"
        );
        assert_eq!(cfg.effective_policy(Some(ColdStartPolicy::Classic)), ColdStartPolicy::Classic);
    }

    #[test]
    fn expected_start_penalty_tracks_the_policy() {
        let classic = FaasConfig::default();
        assert_eq!(classic.expected_start_penalty(1792), Duration::from_millis(1500));
        let snap = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::SnapshotRestore)
            .snapshot(SnapshotConfig::default())
            .build()
            .unwrap();
        let p = snap.expected_start_penalty(1792);
        assert!(p < Duration::from_millis(250), "restore penalty, got {p:?}");
        let fork = FaasConfig::builder()
            .cold_start_policy(ColdStartPolicy::Fork)
            .snapshot(SnapshotConfig::default())
            .build()
            .unwrap();
        assert_eq!(fork.expected_start_penalty(1792), Duration::from_millis(25));
    }
}
