//! Cloud functions: the handler trait, per-function configuration, and the
//! registry that containers resolve handlers from.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::Ctx;

use crate::config::ColdStartPolicy;

/// Memory that gives exactly one full vCPU on AWS Lambda (footnote 7 of
/// the paper).
pub const FULL_VCPU_MB: u32 = 1792;

/// Execution context handed to a function handler.
///
/// Wraps the raw simulation context with the container's CPU share:
/// Lambda scales CPU with configured memory, so a 896 MB function computes
/// at half speed ([`FnCtx::compute`] stretches virtual time accordingly).
pub struct FnCtx<'a> {
    /// Raw simulation context (network calls, sleeping, randomness).
    pub ctx: &'a mut Ctx,
    cpu_share: f64,
    memory_mb: u32,
    host: u64,
}

impl<'a> FnCtx<'a> {
    /// Creates a context for a container with the given memory (on the
    /// default host `0`; see [`FnCtx::with_host`]).
    pub fn new(ctx: &'a mut Ctx, memory_mb: u32) -> FnCtx<'a> {
        FnCtx::with_host(ctx, memory_mb, 0)
    }

    /// Creates a context for a container placed on physical host `host`.
    /// The platform packs [`crate::FaasConfig::containers_per_host`]
    /// containers per host; deployment layers use the host id to share
    /// per-host resources (e.g. a co-located read cache) between
    /// containers.
    pub fn with_host(ctx: &'a mut Ctx, memory_mb: u32, host: u64) -> FnCtx<'a> {
        FnCtx { ctx, cpu_share: cpu_share_for(memory_mb), memory_mb, host }
    }

    /// The physical host this container runs on.
    pub fn host(&self) -> u64 {
        self.host
    }

    /// Performs `work` of single-vCPU CPU time, stretched by this
    /// container's CPU share.
    pub fn compute(&mut self, work: Duration) {
        if work.is_zero() {
            return;
        }
        self.ctx.sleep(work.div_f64(self.cpu_share));
    }

    /// Fraction of a vCPU available to this container.
    pub fn cpu_share(&self) -> f64 {
        self.cpu_share
    }

    /// Configured memory.
    pub fn memory_mb(&self) -> u32 {
        self.memory_mb
    }
}

impl fmt::Debug for FnCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnCtx")
            .field("cpu_share", &self.cpu_share)
            .field("memory_mb", &self.memory_mb)
            .finish()
    }
}

/// CPU share for a memory setting: proportional, one full vCPU at
/// [`FULL_VCPU_MB`], capped at two (Lambda's 3 GB ceiling gives ~1.7 vCPU).
pub fn cpu_share_for(memory_mb: u32) -> f64 {
    (memory_mb as f64 / FULL_VCPU_MB as f64).min(2.0)
}

/// A deployable function body.
pub trait CloudFunction: Send + Sync + 'static {
    /// Runs the function on `payload`, returning the response payload.
    ///
    /// # Errors
    ///
    /// A `String` error is delivered to the caller as a failed invocation
    /// (and may be retried by the client, §4.4).
    fn invoke(&self, env: &mut FnCtx<'_>, payload: Vec<u8>) -> Result<Vec<u8>, String>;
}

impl<F> CloudFunction for F
where
    F: Fn(&mut FnCtx<'_>, Vec<u8>) -> Result<Vec<u8>, String> + Send + Sync + 'static,
{
    fn invoke(&self, env: &mut FnCtx<'_>, payload: Vec<u8>) -> Result<Vec<u8>, String> {
        self(env, payload)
    }
}

/// Deployment descriptor of one function.
#[derive(Clone)]
pub struct FunctionSpec {
    /// Handler body.
    pub handler: Arc<dyn CloudFunction>,
    /// Configured memory (drives CPU share and billing).
    pub memory_mb: u32,
    /// Per-function cold-start policy override; `None` uses the
    /// platform-wide [`crate::FaasConfig::cold_start_policy`].
    pub cold_start: Option<ColdStartPolicy>,
}

impl fmt::Debug for FunctionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionSpec")
            .field("memory_mb", &self.memory_mb)
            .field("cold_start", &self.cold_start)
            .finish()
    }
}

/// Shared registry of deployed functions.
///
/// Cloneable and internally synchronized, so functions may be registered
/// after the platform started (containers resolve handlers per job).
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    inner: Arc<Mutex<HashMap<String, FunctionSpec>>>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Deploys (or replaces) a function under the platform-wide
    /// cold-start policy.
    pub fn register<F: CloudFunction>(&self, name: &str, memory_mb: u32, handler: F) {
        self.inner.lock().insert(
            name.to_string(),
            FunctionSpec { handler: Arc::new(handler), memory_mb, cold_start: None },
        );
    }

    /// Deploys (or replaces) a function with an explicit per-function
    /// cold-start policy, overriding the platform-wide default. A
    /// non-classic policy is clamped back to classic if the platform has
    /// no snapshot cost model configured
    /// ([`crate::FaasConfig::effective_policy`]).
    pub fn register_with_policy<F: CloudFunction>(
        &self,
        name: &str,
        memory_mb: u32,
        policy: ColdStartPolicy,
        handler: F,
    ) {
        self.inner.lock().insert(
            name.to_string(),
            FunctionSpec { handler: Arc::new(handler), memory_mb, cold_start: Some(policy) },
        );
    }

    /// Resolves a function by name.
    pub fn get(&self, name: &str) -> Option<FunctionSpec> {
        self.inner.lock().get(name).cloned()
    }

    /// Deployed function names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionRegistry").field("functions", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Sim, SimTime};

    #[test]
    fn cpu_share_scales_with_memory() {
        assert!((cpu_share_for(1792) - 1.0).abs() < 1e-9);
        assert!((cpu_share_for(896) - 0.5).abs() < 1e-9);
        assert!((cpu_share_for(3584) - 2.0).abs() < 1e-9);
        assert!((cpu_share_for(10_000) - 2.0).abs() < 1e-9, "capped at 2 vCPU");
    }

    #[test]
    fn compute_stretches_by_share() {
        let mut sim = Sim::new(1);
        sim.spawn("f", |ctx| {
            let mut env = FnCtx::new(ctx, 896); // half a vCPU
            env.compute(Duration::from_secs(1));
            assert_eq!(env.ctx.now(), SimTime::from_secs(2));
            env.compute(Duration::ZERO);
            assert_eq!(env.ctx.now(), SimTime::from_secs(2));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn registry_register_and_resolve() {
        let reg = FunctionRegistry::new();
        assert!(reg.get("f").is_none());
        reg.register("f", 1792, |_env: &mut FnCtx<'_>, p: Vec<u8>| Ok(p));
        let spec = reg.get("f").expect("registered");
        assert_eq!(spec.memory_mb, 1792);
        assert_eq!(reg.names(), vec!["f".to_string()]);
        // A clone shares state.
        let reg2 = reg.clone();
        reg2.register("g", 512, |_env: &mut FnCtx<'_>, _p: Vec<u8>| Ok(Vec::new()));
        assert!(reg.get("g").is_some());
    }

    #[test]
    fn register_with_policy_sets_the_override() {
        let reg = FunctionRegistry::new();
        reg.register("plain", 1792, |_env: &mut FnCtx<'_>, p: Vec<u8>| Ok(p));
        reg.register_with_policy(
            "forky",
            1792,
            ColdStartPolicy::Fork,
            |_env: &mut FnCtx<'_>, p: Vec<u8>| Ok(p),
        );
        assert_eq!(reg.get("plain").unwrap().cold_start, None);
        assert_eq!(reg.get("forky").unwrap().cold_start, Some(ColdStartPolicy::Fork));
    }
}
